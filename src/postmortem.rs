//! Postmortem bundle support for the `lf` CLI: dumping self-contained
//! failure bundles at pipeline error sites, pretty-printing them, and
//! deterministically replaying them with a bit-exact verdict.
//!
//! A bundle (schema [`lf_flight::BUNDLE_SCHEMA`]) is a directory holding
//! `bundle.json` — the last-N flight events, a full metrics snapshot, the
//! effective configuration, and the recorded outcome — plus the raw input
//! matrix (`input.mtx`) when it fits under [`INPUT_DUMP_MAX_NNZ`].
//!
//! Replay reconstructs the device and factor configuration from the
//! recorded [`EffectiveConfig`], re-runs the recorded pipeline on the
//! embedded input, and compares three deterministic artifacts against the
//! recording: the outcome (error kind/message or forest fingerprint), the
//! model totals (launches, traffic, model time), and the deterministic
//! subset of the flight-event stream. Wall-clock fields are never
//! recorded, so equality here means the failure reproduced bit-exactly.

use std::path::{Path, PathBuf};

use lf_check::pipeline::{
    extract_linear_forest_checked, tridiagonal_from_matrix_checked, CheckError, CheckOptions,
    Fault,
};
use lf_core::parallel::{try_parallel_factor, FactorConfig};
use lf_core::prepare_undirected;
use lf_flight::{Bundle, EffectiveConfig, FlightEvent, ModelTotals, Outcome};
use lf_kernel::{backend, BackendKind, Device, DeviceConfig, DeviceStats};
use lf_sparse::gespmv::SpmvEngine;
use lf_sparse::{mm, Csr};

/// Largest input (by nonzero count) embedded raw into a bundle.
pub const INPUT_DUMP_MAX_NNZ: usize = 500_000;

/// Stable name for a fault kind (the `--inject-fault` vocabulary).
pub fn fault_name(f: Fault) -> &'static str {
    match f {
        Fault::BreakMutuality => "break-mutuality",
        Fault::CorruptWeight => "corrupt-weight",
        Fault::SwapPermutation => "swap-permutation",
    }
}

/// Parse a fault name produced by [`fault_name`].
pub fn parse_fault(s: &str) -> Option<Fault> {
    match s {
        "break-mutuality" => Some(Fault::BreakMutuality),
        "corrupt-weight" => Some(Fault::CorruptWeight),
        "swap-permutation" => Some(Fault::SwapPermutation),
        _ => None,
    }
}

/// Stable name for an SpMV engine, matching its `Debug` rendering.
pub fn engine_name(e: SpmvEngine) -> &'static str {
    match e {
        SpmvEngine::RowParallel => "RowParallel",
        SpmvEngine::SrCsr => "SrCsr",
    }
}

/// Parse an engine name produced by [`engine_name`].
pub fn parse_engine(s: &str) -> Option<SpmvEngine> {
    match s {
        "RowParallel" => Some(SpmvEngine::RowParallel),
        "SrCsr" => Some(SpmvEngine::SrCsr),
        _ => None,
    }
}

/// Stable error-kind tag for a [`CheckError`].
pub fn check_error_kind(e: &CheckError) -> &'static str {
    match e {
        CheckError::Pipeline(_) => "pipeline",
        CheckError::Audit { .. } => "audit",
    }
}

/// Normalized bundle message for a [`CheckError`].
///
/// Pipeline failures are rendered as the bare [`PipelineError`] (no
/// "pipeline error:" prefix) so that bundles from checked and unchecked
/// runs — and their replays, which always go through the checked wrapper —
/// agree byte-for-byte.
pub fn check_error_message(e: &CheckError) -> String {
    match e {
        CheckError::Pipeline(pe) => pe.to_string(),
        CheckError::Audit { .. } => e.to_string(),
    }
}

/// Build the [`EffectiveConfig`] recorded into bundles and the panic hook.
pub fn effective_config(
    pipeline: &str,
    dev: &Device,
    cfg: Option<&FactorConfig>,
    fault: Option<Fault>,
    input: Option<&str>,
) -> EffectiveConfig {
    let mut ec = EffectiveConfig {
        pipeline: pipeline.to_string(),
        backend: dev.backend().kind().as_str().to_string(),
        fusion: dev.fusion_enabled(),
        fault: fault.map(|f| fault_name(f).to_string()),
        input: input.map(str::to_string),
        ..EffectiveConfig::default()
    };
    if let Some(c) = cfg {
        ec.n = c.n as u64;
        ec.max_iters = c.max_iters as u64;
        ec.m = c.m as u64;
        ec.k_m = c.k_m as u64;
        ec.p = c.p;
        ec.frontier = c.frontier;
        ec.charge_salt = c.charge_salt;
        ec.engine = engine_name(c.engine).to_string();
    }
    ec
}

/// Deterministic model totals from device statistics.
pub fn model_totals(stats: &DeviceStats) -> ModelTotals {
    ModelTotals {
        launches: stats.launches,
        read: stats.traffic.read,
        written: stats.traffic.written,
        model_ns: (stats.model_time_s * 1e9).round() as u64,
    }
}

/// Capture and write a postmortem bundle for a failure, if a bundle
/// directory is configured (otherwise a no-op returning `None`).
///
/// `model` should be `Some` only for solo pipelines whose device totals
/// are reproducible by a solo replay; batched jobs pass `None` so replay
/// compares the outcome alone.
pub fn dump_error_bundle(
    kind: &str,
    message: &str,
    config: EffectiveConfig,
    a: Option<&Csr<f64>>,
    model: Option<ModelTotals>,
) -> Option<PathBuf> {
    dump_error_bundle_for(kind, message, config, a, model, None)
}

/// [`dump_error_bundle`] carrying the failing job's correlation identity
/// and assembled lifecycle timeline, so the bundle alone answers "which
/// request caused this, and where did its time go".
pub fn dump_error_bundle_for(
    kind: &str,
    message: &str,
    config: EffectiveConfig,
    a: Option<&Csr<f64>>,
    model: Option<ModelTotals>,
    job: Option<lf_flight::JobCorrelation>,
) -> Option<PathBuf> {
    let dir = lf_flight::bundle_dir()?;
    let mut b = Bundle::capture(kind, message, config);
    b.outcome = Some(Outcome::Error {
        kind: kind.to_string(),
        message: message.to_string(),
    });
    b.model = model;
    b.job = job;
    let embed = match a {
        Some(a) => {
            b.input_hash = Some(lf_batch::content_hash(a));
            if a.nnz() <= INPUT_DUMP_MAX_NNZ {
                b.input_file = Some(lf_flight::INPUT_FILE.to_string());
                true
            } else {
                false
            }
        }
        None => false,
    };
    match b.write_to(&dir) {
        Ok(bdir) => {
            if embed {
                if let Err(e) = mm::write_csr_path(bdir.join(lf_flight::INPUT_FILE), a.unwrap()) {
                    eprintln!("warning: failed to embed input in bundle: {e}");
                }
            }
            eprintln!("postmortem bundle written to {}", bdir.display());
            Some(bdir)
        }
        Err(e) => {
            eprintln!("warning: failed to write postmortem bundle: {e}");
            None
        }
    }
}

/// What a replay run produced, in the same shape the bundle records.
struct ReplayResult {
    outcome: Outcome,
    model: ModelTotals,
    events: Vec<FlightEvent>,
}

fn forest_outcome(f: &lf_core::LinearForest<f64>, max_iters: usize) -> Outcome {
    Outcome::Forest {
        hash: f.fingerprint(),
        num_paths: f.num_paths() as u64,
        iterations: f.factor_iterations as u64,
        // LinearForest does not surface the maximality flag; early return
        // is the observable proxy. Recorded and replayed outcomes derive
        // it identically, so the comparison stays consistent.
        maximal: f.factor_iterations < max_iters,
    }
}

fn replay_error(e: &CheckError) -> Outcome {
    Outcome::Error {
        kind: check_error_kind(e).to_string(),
        message: check_error_message(e),
    }
}

/// Re-run the recorded pipeline from a bundle directory.
fn replay(bundle: &Bundle, dir: &Path) -> Result<ReplayResult, String> {
    let cfg = &bundle.config;
    let input_file = bundle
        .input_file
        .as_deref()
        .ok_or("bundle has no embedded input (input exceeded the size cap); cannot replay")?;
    let a: Csr<f64> = mm::read_csr_path(dir.join(input_file))
        .map_err(|e| format!("cannot read {input_file}: {e}"))?;
    if let Some(h) = bundle.input_hash {
        let fresh = lf_batch::content_hash(&a);
        if fresh != h {
            return Err(format!(
                "embedded input hash mismatch: recorded 0x{h:016x}, file hashes 0x{fresh:016x}"
            ));
        }
    }
    let kind = BackendKind::parse(&cfg.backend)
        .ok_or_else(|| format!("unknown recorded backend '{}'", cfg.backend))?;
    let dev = Device::with_backend(DeviceConfig::default(), backend::make(kind));
    dev.set_fusion(cfg.fusion);
    let mut fc = FactorConfig::paper_default(cfg.n as usize);
    fc.max_iters = cfg.max_iters as usize;
    fc.m = cfg.m as usize;
    fc.k_m = cfg.k_m as usize;
    fc.p = cfg.p;
    fc.frontier = cfg.frontier;
    fc.charge_salt = cfg.charge_salt;
    fc.engine = parse_engine(&cfg.engine)
        .ok_or_else(|| format!("unknown recorded engine '{}'", cfg.engine))?;
    let fault = match cfg.fault.as_deref() {
        None => None,
        Some(f) => Some(
            parse_fault(f).ok_or_else(|| format!("unknown recorded fault '{f}'"))?,
        ),
    };
    let opts = CheckOptions { fault };

    // Replay records into the (cleared) global ring so the fresh event
    // stream can be compared against the recording.
    lf_flight::enable();
    lf_flight::recorder().clear();

    let outcome = match cfg.pipeline.as_str() {
        "forest" | "batch-solo" => {
            let ap = prepare_undirected(&a);
            match extract_linear_forest_checked(&dev, &ap, &fc, &opts) {
                Ok((forest, _, _)) => forest_outcome(&forest, fc.max_iters),
                Err(e) => replay_error(&e),
            }
        }
        "tridiag" | "check" | "solve" => {
            match tridiagonal_from_matrix_checked(&dev, &a, &fc, &opts) {
                Ok((_, forest, _, _)) => forest_outcome(&forest, fc.max_iters),
                Err(e) => replay_error(&e),
            }
        }
        "factor" => {
            let ap = prepare_undirected(&a);
            match try_parallel_factor(&dev, &ap, &fc) {
                Ok(out) => Outcome::Forest {
                    hash: out.factor.fingerprint(),
                    num_paths: 0,
                    iterations: out.iterations as u64,
                    maximal: out.maximal,
                },
                Err(e) => Outcome::Error {
                    kind: "pipeline".to_string(),
                    message: e.to_string(),
                },
            }
        }
        other => return Err(format!("unknown recorded pipeline '{other}'")),
    };

    let events = lf_flight::recorder()
        .snapshot()
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    Ok(ReplayResult {
        outcome,
        model: model_totals(&dev.stats()),
        events,
    })
}

/// Compare recorded vs replayed state; returns the list of mismatches
/// (empty = bit-exact).
fn compare(bundle: &Bundle, fresh: &ReplayResult) -> Vec<String> {
    let mut mismatches = Vec::new();
    // Batched jobs record no model totals: the recorded message crossed
    // the JobError layer and the recorded device ran a fused batch, so
    // only the error kind / forest hash is comparable.
    let solo = bundle.model.is_some();
    match (&bundle.outcome, &fresh.outcome) {
        (Some(rec), got) => {
            let equal = match (rec, got) {
                (
                    Outcome::Error { kind: k1, message: m1 },
                    Outcome::Error { kind: k2, message: m2 },
                ) => k1 == k2 && (!solo || m1 == m2),
                (a, b) => a == b,
            };
            if !equal {
                mismatches.push(format!(
                    "outcome differs:\n  recorded: {}\n  replayed: {}",
                    rec.to_json(),
                    got.to_json()
                ));
            }
        }
        (None, got) => mismatches.push(format!(
            "bundle recorded no outcome; replay produced {}",
            got.to_json()
        )),
    }
    if let Some(rec) = &bundle.model {
        if *rec != fresh.model {
            mismatches.push(format!(
                "model totals differ:\n  recorded: {}\n  replayed: {}",
                rec.to_json(),
                fresh.model.to_json()
            ));
        }
    }
    if solo {
        let recorded: Vec<&FlightEvent> = bundle
            .events
            .iter()
            .map(|(_, e)| e)
            .filter(|e| e.deterministic())
            .collect();
        let replayed: Vec<&FlightEvent> =
            fresh.events.iter().filter(|e| e.deterministic()).collect();
        // The recorded ring may have wrapped (events_recorded > capacity):
        // compare the common suffix.
        let k = recorded.len().min(replayed.len());
        let (rs, ps) = (&recorded[recorded.len() - k..], &replayed[replayed.len() - k..]);
        let diverged = rs.iter().zip(ps.iter()).position(|(r, p)| r != p);
        if let Some(i) = diverged {
            mismatches.push(format!(
                "event streams diverge at suffix position {i}:\n  recorded: {}\n  replayed: {}",
                rs[i].pretty(),
                ps[i].pretty()
            ));
        } else if bundle.events_recorded <= bundle.events.len() as u64
            && recorded.len() != replayed.len()
        {
            mismatches.push(format!(
                "deterministic event counts differ: recorded {}, replayed {}",
                recorded.len(),
                replayed.len()
            ));
        }
    }
    mismatches
}

fn print_bundle(bundle: &Bundle, dir: &Path) {
    println!("postmortem bundle: {}", dir.display());
    println!("  schema:       {}", lf_flight::BUNDLE_SCHEMA);
    println!("  reason:       [{}] {}", bundle.reason_kind, bundle.reason.lines().next().unwrap_or(""));
    let c = &bundle.config;
    println!(
        "  config:       pipeline={} backend={} fusion={} engine={} n={} max_iters={} m={} k_m={} p={} frontier={} charge_salt={}",
        c.pipeline, c.backend, c.fusion, c.engine, c.n, c.max_iters, c.m, c.k_m, c.p, c.frontier, c.charge_salt
    );
    if let Some(f) = &c.fault {
        println!("  fault:        {f} (injected)");
    }
    if let Some(i) = &c.input {
        println!("  input:        {i}");
    }
    match (&bundle.input_hash, &bundle.input_file) {
        (Some(h), Some(f)) => println!("  input data:   {f} (hash 0x{h:016x})"),
        (Some(h), None) => println!("  input data:   not embedded (hash 0x{h:016x}, over size cap)"),
        _ => println!("  input data:   none"),
    }
    if let Some(o) = &bundle.outcome {
        println!("  outcome:      {}", o.to_json());
    }
    if let Some(m) = &bundle.model {
        println!(
            "  model totals: launches={} read={} written={} model_ns={}",
            m.launches, m.read, m.written, m.model_ns
        );
    }
    if let Some(j) = &bundle.job {
        println!(
            "  job:          trace {:016x} id {} tenant \"{}\"",
            j.trace_id, j.job_id, j.tenant
        );
        let tl = j.timeline_json.trim();
        if !tl.is_empty() && tl != "null" {
            println!("  timeline:     {tl}");
        }
    }
    println!(
        "  events:       {} retained of {} recorded",
        bundle.events.len(),
        bundle.events_recorded
    );
    for (seq, e) in &bundle.events {
        println!("    [{seq:>6}] {}", e.pretty());
    }
    match lf_flight::value::Value::parse(&bundle.metrics_json) {
        Ok(v) => {
            let fams = v
                .get("families")
                .and_then(|f| f.as_arr())
                .map_or(0, |a| a.len());
            println!("  metrics:      snapshot with {fams} families (see bundle.json)");
        }
        Err(_) => println!("  metrics:      (unparseable snapshot)"),
    }
}

/// Entry point for `lf postmortem <bundle> [--replay]`.
///
/// Pretty-prints the bundle; with `replay` re-runs the recorded pipeline
/// and prints a `REPLAY VERDICT:` line. Returns the process exit code.
pub fn run_postmortem(path: &str, do_replay: bool) -> i32 {
    let (bundle, dir) = match Bundle::read(Path::new(path)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: cannot load bundle '{path}': {e}");
            return 2;
        }
    };
    print_bundle(&bundle, &dir);
    if !do_replay {
        return 0;
    }
    println!();
    println!(
        "replaying pipeline '{}' on {} ({} backend)...",
        bundle.config.pipeline,
        bundle.input_file.as_deref().unwrap_or("<missing input>"),
        bundle.config.backend
    );
    let fresh = match replay(&bundle, &dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            println!("REPLAY VERDICT: not reproducible ({e})");
            return 2;
        }
    };
    println!("replayed outcome: {}", fresh.outcome.to_json());
    let mismatches = compare(&bundle, &fresh);
    if mismatches.is_empty() {
        println!("REPLAY VERDICT: bit-exact (outcome, model totals, and event stream match)");
        0
    } else {
        for m in &mismatches {
            println!("mismatch: {m}");
        }
        println!("REPLAY VERDICT: MISMATCH ({} difference(s))", mismatches.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for f in [Fault::BreakMutuality, Fault::CorruptWeight, Fault::SwapPermutation] {
            assert_eq!(parse_fault(fault_name(f)), Some(f));
        }
        assert_eq!(parse_fault("nope"), None);
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            assert_eq!(parse_engine(engine_name(e)), Some(e));
        }
        assert_eq!(parse_engine(""), None);
    }

    #[test]
    fn effective_config_captures_factor_fields() {
        let dev = Device::new(DeviceConfig::default());
        let mut fc = FactorConfig::paper_default(2);
        fc.charge_salt = 7;
        fc.frontier = true;
        let ec = effective_config("forest", &dev, Some(&fc), Some(Fault::CorruptWeight), Some("gen:path:8"));
        assert_eq!(ec.pipeline, "forest");
        assert_eq!(ec.n, 2);
        assert_eq!(ec.charge_salt, 7);
        assert!(ec.frontier);
        assert_eq!(ec.fault.as_deref(), Some("corrupt-weight"));
        assert_eq!(ec.input.as_deref(), Some("gen:path:8"));
        assert_eq!(ec.engine, engine_name(fc.engine));
    }
}
