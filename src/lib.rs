//! # linear-forest
//!
//! A Rust reproduction of *"Highly Parallel Linear Forest Extraction from
//! a Weighted Graph on GPUs"* (Christoph Klein & Robert Strzodka,
//! ICPP '22, DOI 10.1145/3545008.3545035), built on a simulated GPU
//! device (kernel launches + memory-traffic model running data-parallel
//! on CPU threads).
//!
//! The library computes **[0,n]-factors** — spanning subgraphs of maximum
//! degree n — of large weighted graphs in parallel, turns [0,2]-factors
//! into **maximum linear forests** (unions of disjoint paths) via a novel
//! bidirectional scan that needs no random-access iterator, and applies
//! them to build **algebraic tridiagonal preconditioners** whose
//! coefficients cover far more matrix weight than the natural-order
//! tridiagonal part.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`kernel`] | simulated device, launches, traffic model, sort/scan/reduce |
//! | [`sparse`] | COO/CSR, MatrixMarket I/O, generators, generalized SpMV |
//! | [`core`] | [0,n]-factors, bidirectional scan, linear-forest pipeline |
//! | [`solver`] | BiCGStab/CG, tridiagonal & 2×2 block solves, preconditioners |
//! | [`check`] | stage invariant audits, checked pipeline, differential oracles |
//! | [`batch`] | block-diagonal multi-graph fusion, job scheduler, workspace/CSR pools |
//! | [`shard`] | BFS-band partitioning, per-block factor runs, boundary reconciliation |
//! | [`metrics`] | process-wide counters/gauges/histograms, Prometheus & JSON exposition |
//! | [`flight`] | always-on flight recorder, postmortem bundles, bit-exact replay |
//! | [`serve`] | multi-tenant HTTP extraction server: fair admission, worker shards, shedding |
//!
//! ## Quickstart
//!
//! ```
//! use linear_forest::prelude::*;
//!
//! // A weighted graph = a sparse symmetric matrix (here: the anisotropic
//! // ANISO1 model problem of the paper on a 32×32 grid).
//! let dev = Device::default();
//! let a: Csr<f64> = grid2d(32, 32, &ANISO1);
//!
//! // Extract a maximum linear forest through a parallel [0,2]-factor.
//! let (forest, timings) = extract_linear_forest(
//!     &dev,
//!     &prepare_undirected(&a),
//!     &FactorConfig::paper_default(2),
//! ).expect("valid [0,2]-factor configuration");
//! println!(
//!     "{} paths, coverage {:.2}, {} kernel launches",
//!     forest.num_paths(),
//!     weight_coverage(&forest.factor, &a),
//!     timings.factor.launches,
//! );
//!
//! // Use it to precondition BiCGStab.
//! let (b, xt) = manufactured_problem(&dev, &a);
//! let precond = AlgTriScalPrecond::new(&dev, &a, &FactorConfig::paper_default(2));
//! let (_, stats) = bicgstab(&dev, &a, &b, &precond, &SolveOpts::default(), Some(&xt));
//! assert!(stats.converged);
//! ```

pub use lf_batch as batch;
pub use lf_check as check;
pub use lf_core as core;
pub use lf_flight as flight;
pub use lf_kernel as kernel;
pub use lf_kernel::trace;
pub use lf_metrics as metrics;
pub use lf_serve as serve;
pub use lf_shard as shard;
pub use lf_solver as solver;
pub use lf_sparse as sparse;

pub mod postmortem;

/// One-stop prelude re-exporting the common API of all five crates.
pub mod prelude {
    pub use lf_check::prelude::*;
    pub use lf_core::prelude::*;
    pub use lf_kernel::prelude::*;
    pub use lf_solver::prelude::*;
    pub use lf_sparse::prelude::*;
}
