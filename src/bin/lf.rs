//! `lf` — command-line front end for the linear-forest library.
//!
//! ```text
//! lf stats      <input.mtx | gen:NAME[:N]> [--json]
//! lf factor     <input> [-n N] [-M ITERS] [--config 1|2|3]
//! lf forest     <input> [--perm out.txt] [--paths] [--shards K]
//! lf shard      <input> [--shards K] [--json]   # sharded vs whole-graph differential
//! lf tridiag    <input> [--out prefix]       # writes prefix.{dl,d,du}.txt
//! lf solve      <input> [--precond jacobi|triscal|algtriscal|algtriblock|amg|none]
//!               [--solver bicgstab|gmres|cg] [--tol T] [--max-iters K]
//! lf check      <input>                      # checked end-to-end extraction
//! lf check      --suite [--cases N] [--size N]   # differential oracle suite
//! lf batch      <dir | in1,in2,...> [--repeat R] [--nnz-budget B]
//!               [--max-jobs J] [--json]      # fused multi-graph extraction
//! lf serve      [--addr HOST:PORT] [--workers N] [--tenant-config FILE]
//!               [--deadline-ms MS] [--batch-jobs J] [--shed-watermark W]
//!               [--max-body BYTES]           # multi-tenant HTTP extraction server
//! lf postmortem <bundle-dir> [--replay]      # inspect / replay a bundle
//! ```
//!
//! Every subcommand additionally accepts these global flags:
//!
//! * `--backend <model|cpu>` — execution backend for every kernel launch:
//!   `model` (default) is the deterministic simulated device the perf
//!   figures are defined on; `cpu` is the tuned CPU backend (per-kernel
//!   parallel thresholds sized to the rayon pool, cache-blocked CSR
//!   traversal, lane-chunked reductions). Outputs are bit-identical;
//! * `--no-fuse` — disable the peephole kernel-fusion pass, splitting
//!   map→reduce, scan→scatter and confirm→count pairs into separate
//!   launches (a debugging/measurement aid; outputs are bit-identical);
//! * `--trace <out.json>` — the run is recorded through the device's
//!   tracer and exported as Chrome Trace Event JSON (load `out.json` in
//!   <https://ui.perfetto.dev>) plus a flat per-phase rollup next to it
//!   (`out.summary.json`);
//! * `--metrics <out.prom>` — enables the process-wide `lf-metrics`
//!   registry and writes its final snapshot on exit: Prometheus text
//!   exposition by default, or the JSON document when the path ends in
//!   `.json`;
//! * `--check` — installs the invariant auditors of `lf-check` between
//!   pipeline stages and fails (exit code 1, structured message, no
//!   backtrace) on the first violated invariant;
//! * `--flight-dir <DIR>` — arms the always-on `lf-flight` recorder and,
//!   on any failure (pipeline error, audit violation, failed batch job,
//!   or panic), writes a self-contained postmortem bundle into `DIR`:
//!   the last flight events, metrics snapshot, effective configuration,
//!   input hash, and (under a size cap) the raw input matrix. Inspect or
//!   deterministically re-run a bundle with `lf postmortem`;
//! * `--inject-fault <break-mutuality|corrupt-weight|swap-permutation>` —
//!   corrupts one stage output of checked pipelines (testing aid for the
//!   audit + postmortem path; requires `--check`).
//!
//! Inputs are MatrixMarket files, or `gen:NAME[:N]` for a collection
//! stand-in (e.g. `gen:atmosmodm:50000`).

use linear_forest::prelude::*;
use linear_forest::sparse::mm;
use linear_forest::trace::{chrome_trace, json, summary, RecordingSink};
use std::io::Write;
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: lf <stats|factor|forest|shard|tridiag|solve|check|batch|serve|postmortem> <input.mtx|gen:NAME[:N]> [options]\n\
         forest --shards K runs the partitioned pipeline (per-block factors + boundary reconciliation)\n\
         shard compares a sharded run against the whole-graph run (quality ratio, K=1 bit-equality)\n\
         batch input: a directory of .mtx files or a comma-separated input list\n\
         serve runs the multi-tenant HTTP server (POST /v1/forest, GET /v1/jobs/<id>[/trace], /metrics, /healthz)\n\
         serve-only flags: --log <out.jsonl> (JSONL access/lifecycle log), --trace <out.json> (all shards)\n\
         postmortem input: a bundle directory written by --flight-dir (add --replay to re-run it)\n\
         global flags: --backend <model|cpu>, --no-fuse, --trace <out.json>,\n\
                       --metrics <out.prom>, --check, --flight-dir <dir>, --inject-fault <fault>\n\
         run `lf help` for details"
    );
    exit(2);
}

/// Graceful failure: one structured message on stderr, exit code 1, no
/// panic and no backtrace.
fn fail(e: impl std::fmt::Display) -> ! {
    let msg = e.to_string();
    eprintln!("error: {}", msg.trim_end());
    exit(1);
}

/// [`fail`], but first dump a postmortem bundle when `--flight-dir` is
/// armed (a no-op otherwise). `bundle_msg` is the normalized message the
/// bundle records (what a replay must reproduce); `display` is what the
/// user sees on stderr.
#[allow(clippy::too_many_arguments)]
fn fail_dump(
    dev: &Device,
    pipeline: &str,
    input: &str,
    a: Option<&Csr<f64>>,
    cfg: Option<&FactorConfig>,
    fault: Option<linear_forest::check::Fault>,
    kind: &str,
    bundle_msg: &str,
    display: impl std::fmt::Display,
) -> ! {
    use linear_forest::postmortem as pm;
    pm::dump_error_bundle(
        kind,
        bundle_msg,
        pm::effective_config(pipeline, dev, cfg, fault, Some(input)),
        a,
        Some(pm::model_totals(&dev.stats())),
    );
    fail(display)
}

fn load(input: &str) -> Csr<f64> {
    if let Some(spec) = input.strip_prefix("gen:") {
        let mut it = spec.split(':');
        let name = it.next().unwrap_or_default();
        let n: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
        let m = Collection::from_name(name).unwrap_or_else(|| {
            eprintln!("unknown collection matrix '{name}'; available:");
            for c in Collection::ALL {
                eprintln!("  {}", c.name());
            }
            exit(2);
        });
        m.generate(n)
    } else {
        mm::read_csr_path(input).unwrap_or_else(|e| {
            eprintln!("failed to read {input}: {e}");
            exit(1);
        })
    }
}

fn flag_val<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_cfg(args: &[String], n: usize) -> FactorConfig {
    let mut cfg = match flag_val(args, "--config") {
        None | Some("2") => FactorConfig::config2(n),
        Some("1") => FactorConfig::config1(n),
        Some("3") => FactorConfig::config3(n),
        Some(other) => {
            eprintln!("unknown --config value '{other}' (valid values: 1, 2, 3)");
            exit(2);
        }
    };
    if let Some(m) = flag_val(args, "-M").and_then(|s| s.parse().ok()) {
        cfg = cfg.with_max_iters(m);
    }
    cfg
}

/// Path of the flat summary written next to a Chrome trace:
/// `out.json → out.summary.json`, anything else gets `.summary.json`
/// appended.
fn summary_path(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.summary.json"),
        None => format!("{trace_path}.summary.json"),
    }
}

/// Export the recorded trace: Chrome Trace Event JSON at `path`, the
/// per-phase rollup at [`summary_path`].
fn write_trace(path: &str, sink: &RecordingSink) {
    // lf-trace cannot depend on lf-metrics, so the exporter bridges the
    // sink's drop counter into the registry: a truncated trace is visible
    // in the same scrape that describes the run.
    let dropped = sink.dropped();
    if dropped > 0 {
        eprintln!(
            "warning: trace truncated — {dropped} event(s) dropped by the \
             recording sink (raise its capacity or shorten the run)"
        );
    }
    if linear_forest::metrics::enabled() {
        linear_forest::metrics::global()
            .gauge(
                "lf_trace_dropped_events",
                "Trace events dropped because the recording sink was full",
            )
            .set(dropped as f64);
    }
    let data = sink.snapshot();
    std::fs::write(path, chrome_trace(&data)).unwrap_or_else(|e| {
        eprintln!("failed to write trace {path}: {e}");
        exit(1);
    });
    let spath = summary_path(path);
    std::fs::write(&spath, summary(&data).with_dropped(dropped).to_json()).unwrap_or_else(|e| {
        eprintln!("failed to write trace summary {spath}: {e}");
        exit(1);
    });
    eprintln!("trace written to {path} (summary: {spath}); open the trace in https://ui.perfetto.dev");
}

/// Export the final snapshot of the process-wide metrics registry:
/// Prometheus text exposition, or the JSON document when `path` ends in
/// `.json`.
fn write_metrics(path: &str) {
    let snap = linear_forest::metrics::global().snapshot();
    let body = if path.ends_with(".json") {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("failed to write metrics {path}: {e}");
        exit(1);
    });
    eprintln!("metrics written to {path}");
}

/// Resolve `lf batch`'s input spec: a directory (all `.mtx` files inside,
/// sorted by name) or a comma-separated list of inputs (each a path or a
/// `gen:NAME[:N]` spec).
fn batch_inputs(spec: &str) -> Vec<String> {
    let dir = std::path::Path::new(spec);
    if dir.is_dir() {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| fail(format!("cannot read directory {spec}: {e}")))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "mtx"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            fail(format!("no .mtx files in {spec}"));
        }
        paths
            .into_iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect()
    } else {
        spec.split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }
}

/// `lf batch`: submit every input to the extraction service, drain it, and
/// report per-job outcomes plus the service counters. Returns whether all
/// jobs succeeded.
fn run_batch(dev: &Device, spec: &str, rest: &[String], checked: bool) -> bool {
    use linear_forest::batch::{BatchConfig, ExtractionService};

    let names = batch_inputs(spec);
    let repeat: usize = flag_val(rest, "--repeat")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let mut cfg = BatchConfig {
        check: checked,
        ..BatchConfig::default()
    };
    if let Some(b) = flag_val(rest, "--nnz-budget").and_then(|s| s.parse().ok()) {
        cfg.nnz_budget = b;
    }
    if let Some(j) = flag_val(rest, "--max-jobs").and_then(|s| s.parse().ok()) {
        cfg.max_batch_jobs = j;
    }
    cfg.factor = parse_cfg(rest, 2).with_frontier(cfg.factor.frontier);
    let factor_cfg = cfg.factor;
    let mut svc = ExtractionService::new(cfg).unwrap_or_else(|e| fail(e));

    let graphs: Vec<(String, Csr<f64>)> =
        names.iter().map(|n| (n.clone(), load(n))).collect();
    let now = std::time::Instant::now();
    let mut outcomes = Vec::new();
    for round in 0..repeat {
        for (name, g) in &graphs {
            let label = if repeat > 1 {
                format!("{name}#{round}")
            } else {
                    name.clone()
                };
                if let Err(e) = svc.submit(label.clone(), g.clone(), now) {
                    // Bounded queue: make room, then the submission must fit.
                    outcomes.extend(svc.drain(dev));
                    let _ = e;
                    svc.submit(label, g.clone(), now).unwrap_or_else(|e| fail(e));
                }
            }
            // Drain per round so round 2+ resubmissions hit the CSR cache.
            outcomes.extend(svc.drain(dev));
        }

        // One postmortem bundle per failed job. The job's graph and charge
        // salt pin down an equivalent solo run (`batch-solo`), which is what
        // `lf postmortem --replay` re-executes; model totals are omitted
        // because the recorded device ran fused batches.
        if linear_forest::flight::bundle_dir().is_some() {
            use linear_forest::postmortem as pm;
            for o in outcomes.iter().filter(|o| o.result.is_err()) {
                let e = o.result.as_ref().err().unwrap();
                let g = graphs
                    .iter()
                    .find(|(n, _)| *n == o.name || o.name.starts_with(&format!("{n}#")))
                    .map(|(_, g)| g);
                let mut ec = pm::effective_config("batch-solo", dev, Some(&factor_cfg), None, Some(&o.name));
                ec.charge_salt = o.salt;
                // The bundle names the request that failed: trace id, job
                // id, tenant, and the assembled lifecycle timeline.
                let job = linear_forest::flight::JobCorrelation {
                    trace_id: o.ctx.trace_id,
                    job_id: o.ctx.job_id,
                    tenant: o.ctx.tenant.clone(),
                    timeline_json: o.timeline.to_json(),
                };
                pm::dump_error_bundle_for("job", &e.to_string(), ec, g, None, Some(job));
            }
        }

        let counters = linear_forest::batch::counters();
        // Per-shard occupancy gauges (the CLI is a single shard, "cli"):
        // visible in --metrics exports and mirrored in the JSON below.
        svc.publish_occupancy("cli");
        let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
        if has_flag(rest, "--json") {
            let jobs: Vec<String> = outcomes
                .iter()
                .map(|o| {
                    let common = format!(
                        "\"id\":{},\"name\":\"{}\",\"batch\":{},\"salt\":{},\
                         \"cache_hit\":{},\"nnz\":{}",
                        o.id,
                        json::escape(&o.name),
                        o.batch,
                        o.salt,
                        o.cache_hit,
                        o.nnz,
                    );
                    match &o.result {
                        Ok(r) => format!(
                            "{{{common},\"ok\":true,\"paths\":{},\"coverage\":{},\
                             \"cycles_broken\":{},\"mean_path_len\":{}}}",
                            r.quality.num_paths,
                            json::number(r.quality.coverage),
                            r.quality.cycles_broken,
                            json::number(r.quality.mean_path_len),
                        ),
                        Err(e) => format!(
                            "{{{common},\"ok\":false,\"error\":\"{}\"}}",
                            json::escape(&e.to_string())
                        ),
                    }
                })
                .collect();
            println!(
                "{{\"jobs\":[{}],\"service\":{},\"occupancy\":{}}}",
                jobs.join(","),
                counters.to_json(),
                svc.occupancy_json()
            );
        } else {
            for o in &outcomes {
                match &o.result {
                    Ok(r) => println!(
                        "  [batch {}] {}: {} paths, coverage {:.4}, {} cycles broken{}",
                        o.batch,
                        o.name,
                        r.quality.num_paths,
                        r.quality.coverage,
                        r.quality.cycles_broken,
                        if o.cache_hit { " (cached)" } else { "" },
                    ),
                    Err(e) => println!("  [batch {}] {}: FAILED: {e}", o.batch, o.name),
                }
            }
            println!(
                "{} job(s) in {} batch(es): {} ok, {} failed; fused nnz {}, \
                 queue high-water {}, pool {}/{} hit/miss, cache {}/{} hit/miss",
                outcomes.len(),
                counters.batches_run,
                outcomes.len() - failed,
                failed,
                counters.fused_nnz,
                counters.queue_highwater,
                counters.pool_hits,
                counters.pool_misses,
                counters.cache_hits,
                counters.cache_misses,
            );
            if checked {
                println!(
                    "check: {} audit violation(s) across scattered results",
                    counters.audit_violations
                );
            }
        }
        failed == 0
    }

    /// `lf serve`: run the multi-tenant HTTP extraction server until SIGTERM
/// or SIGINT, then drain. Returns the process exit code (0 iff the drain
/// abandoned nothing).
fn run_serve(args: &[String]) -> i32 {
    use linear_forest::serve::{self, ServeConfig, Server};

    let mut cfg = ServeConfig::default();
    if let Some(a) = flag_val(args, "--addr") {
        cfg.addr = a.to_string();
    }
    if let Some(w) = flag_val(args, "--workers").and_then(|s| s.parse().ok()) {
        cfg.workers = std::cmp::max(w, 1);
    }
    if let Some(path) = flag_val(args, "--tenant-config") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read tenant config {path}: {e}")));
        cfg.tenants = linear_forest::serve::TenantTable::parse(&text)
            .unwrap_or_else(|e| fail(format!("tenant config {path}: {e}")));
    }
    if let Some(ms) = flag_val(args, "--deadline-ms").and_then(|s| s.parse().ok()) {
        cfg.worker.deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(j) = flag_val(args, "--batch-jobs").and_then(|s| s.parse().ok()) {
        cfg.worker.batch_jobs = std::cmp::max(j, 1);
    }
    if let Some(w) = flag_val(args, "--shed-watermark").and_then(|s| s.parse().ok()) {
        cfg.shed_watermark = w;
    }
    if let Some(b) = flag_val(args, "--max-body").and_then(|s| s.parse().ok()) {
        cfg.max_body = b;
    }
    cfg.worker.check = has_flag(args, "--check");
    cfg.worker.fuse = !has_flag(args, "--no-fuse");
    if let Some(s) = flag_val(args, "--backend") {
        cfg.worker.backend = BackendKind::parse(s).unwrap_or_else(|| {
            eprintln!("unknown --backend value '{s}' (valid values: model, cpu)");
            exit(2);
        });
    }
    // Structured JSONL access/lifecycle log: one line per request and per
    // job-state transition, identity-only (trace id, job, tenant, state).
    if let Some(path) = flag_val(args, "--log") {
        cfg.log = Some(path.to_string());
    }
    // Span recording across every worker shard's device tracer; the merged
    // recording (disjoint per-shard span-id ranges) is written on drain.
    let trace_path = flag_val(args, "--trace").map(str::to_string);
    let trace_sink = trace_path.as_deref().map(|_| {
        let sink = Arc::new(RecordingSink::new());
        cfg.worker.trace_sink = Some(sink.clone());
        sink
    });

    // Arm the flight recorder like the one-shot subcommands do: a clean
    // drain writes nothing; a panicked server thread dumps a bundle.
    if let Some(dir) = flag_val(args, "--flight-dir") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(format!("cannot create flight dir {}: {e}", dir.display())));
        linear_forest::flight::enable();
        linear_forest::flight::set_bundle_dir(dir);
        linear_forest::flight::install_panic_hook(linear_forest::flight::EffectiveConfig {
            pipeline: "serve".to_string(),
            backend: cfg.worker.backend.as_str().to_string(),
            fusion: cfg.worker.fuse,
            ..linear_forest::flight::EffectiveConfig::default()
        });
    }

    // The server is an observability surface by definition: the registry
    // backs /metrics, so it is always on here (no --metrics flag needed).
    linear_forest::metrics::enable();
    serve::install_signal_handlers();
    let server = Server::bind(cfg).unwrap_or_else(|e| fail(format!("bind: {e}")));
    match server.local_addr() {
        Ok(addr) => eprintln!("lf serve: listening on http://{addr}"),
        Err(e) => eprintln!("lf serve: listening (local_addr: {e})"),
    }
    let report = server.run();
    if let (Some(path), Some(sink)) = (trace_path.as_deref(), trace_sink.as_deref()) {
        write_trace(path, sink);
    }
    eprintln!(
        "lf serve: drained — {} completed, {} failed, {} shed, {} abandoned",
        report.completed, report.failed, report.shed, report.abandoned
    );
    i32::from(report.abandoned != 0)
}

fn main() {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
        if cmd == "help" || cmd == "--help" || cmd == "-h" {
            usage();
        }
        // `lf serve` takes flags only — no positional input matrix.
        if cmd == "serve" {
            exit(run_serve(&args[1..]));
        }
        let input = args.get(1).unwrap_or_else(|| usage());
        // `lf postmortem` inspects or replays a bundle directory; it needs no
        // device or input matrix of its own.
        if cmd == "postmortem" {
            exit(linear_forest::postmortem::run_postmortem(
                input,
                has_flag(&args, "--replay"),
            ));
        }
        // Global --backend/--no-fuse flags: every launch in the process goes
        // through this one device, so backend selection is a single point.
        let backend_kind = match flag_val(&args, "--backend") {
            None => BackendKind::Model,
            Some(s) => BackendKind::parse(s).unwrap_or_else(|| {
                eprintln!("unknown --backend value '{s}' (valid values: model, cpu)");
                exit(2);
            }),
        };
        let dev = Device::with_backend(
            DeviceConfig::default(),
            linear_forest::kernel::backend::make(backend_kind),
        );
        dev.set_fusion(!has_flag(&args, "--no-fuse"));
        let rest = &args[2..];

        // Global --trace flag: record the whole run through the device tracer.
        let trace_path = flag_val(&args, "--trace").map(str::to_string);
        let trace_sink = trace_path.as_deref().map(|_| {
            let sink = Arc::new(RecordingSink::new());
            dev.tracer().install(sink.clone());
            sink
        });
        // Global --metrics flag: turn on the process-wide registry (otherwise
        // every instrumentation site stays a single relaxed atomic load).
        let metrics_path = flag_val(&args, "--metrics").map(str::to_string);
        if metrics_path.is_some() {
            linear_forest::metrics::enable();
        }
        // Global --check flag: audit pipeline invariants between stages.
        let checked = has_flag(&args, "--check");

        // Global --flight-dir flag: arm the always-on flight recorder and dump
        // a postmortem bundle into DIR on any failure (pipeline error, audit
        // violation, failed batch job, or panic).
        let flight_dir = flag_val(&args, "--flight-dir").map(std::path::PathBuf::from);
        if let Some(dir) = &flight_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(format!("cannot create flight dir {}: {e}", dir.display())));
            linear_forest::flight::enable();
            linear_forest::flight::set_bundle_dir(dir.clone());
        }
        // Global --inject-fault flag (checked pipelines only): corrupt one
        // stage output to exercise the audit + postmortem path.
        let fault = flag_val(&args, "--inject-fault").map(|s| {
            linear_forest::postmortem::parse_fault(s).unwrap_or_else(|| {
                eprintln!(
                    "unknown --inject-fault value '{s}' (valid values: \
                     break-mutuality, corrupt-weight, swap-permutation)"
                );
                exit(2);
            })
        });
        if flight_dir.is_some() {
            linear_forest::flight::install_panic_hook(linear_forest::postmortem::effective_config(
                cmd,
                &dev,
                None,
                fault,
                Some(input),
            ));
        }

        // `lf check --suite` runs on generated inputs, no file to load.
        if cmd == "check" && input == "--suite" {
            let cases: usize = flag_val(rest, "--cases").and_then(|s| s.parse().ok()).unwrap_or(20);
            let size: usize = flag_val(rest, "--size").and_then(|s| s.parse().ok()).unwrap_or(300);
            let report = differential_suite(&dev, cases, size);
            print!("{report}");
            if let (Some(path), Some(sink)) = (trace_path.as_deref(), trace_sink.as_deref()) {
                write_trace(path, sink);
            }
            if let Some(path) = metrics_path.as_deref() {
                write_metrics(path);
            }
            if !report.passed() {
                exit(1);
            }
            return;
        }

        // `lf batch` takes a directory or input list, not a single matrix.
        if cmd == "batch" {
            let ok = run_batch(&dev, input, rest, checked);
            if let (Some(path), Some(sink)) = (trace_path.as_deref(), trace_sink.as_deref()) {
                write_trace(path, sink);
            }
            if let Some(path) = metrics_path.as_deref() {
                write_metrics(path);
            }
            if !ok {
                exit(1);
            }
            return;
        }

        let a = load(input);

        match cmd {
            "stats" => {
                if checked {
                    let v = linear_forest::check::audit::audit_input(&prepare_undirected(&a));
                    if !v.is_empty() {
                        for x in &v {
                            eprintln!("  {x}");
                        }
                        let msg = format!("{} input invariant violation(s)", v.len());
                        fail_dump(&dev, "stats", input, Some(&a), None, fault, "audit", &msg, &msg);
                    }
                    eprintln!("check: prepared A' passes the input audit");
                }
                let s = linear_forest::sparse::graph_stats(&a);
                if has_flag(rest, "--json") {
                    println!(
                        "{{\"input\":\"{}\",\"n\":{},\"nnz\":{},\"min_degree\":{},\
                         \"max_degree\":{},\"mean_degree\":{},\"symmetric\":{},\
                         \"pattern_symmetric\":{},\"bandwidth\":{},\
                         \"min_weight\":{},\"max_weight\":{},\
                         \"distinct_weights\":{},\"nan_weights\":{},\
                         \"top_2n_weight_fraction\":{},\
                         \"identity_coverage\":{},\"service\":{},\"metrics\":{}}}",
                        json::escape(input),
                        s.n,
                        s.nnz,
                        s.min_degree,
                        s.max_degree,
                        json::number(s.mean_degree),
                        s.symmetric,
                        s.pattern_symmetric,
                        a.bandwidth(),
                        json::number(s.min_weight),
                        json::number(s.max_weight),
                        s.distinct_weights,
                        s.nan_weights,
                        json::number(s.top_2n_weight_fraction),
                        json::number(identity_coverage(&a)),
                        // Batch-service queue/pool/cache counters: zeros in a
                        // fresh process, live numbers when embedded in a
                        // service (`lf batch --json` reports the same object).
                        linear_forest::batch::counters().to_json(),
                        // lf-metrics snapshot: empty families unless --metrics
                        // (or an embedding process) enabled the registry.
                        linear_forest::metrics::global().snapshot().to_json(),
                    );
                } else {
                    println!("matrix: {input}");
                    println!("  N               = {}", s.n);
                    println!("  nnz             = {}", s.nnz);
                    println!("  degree          = {} .. {} (mean {:.2})", s.min_degree, s.max_degree, s.mean_degree);
                    println!("  symmetric       = {} (pattern: {})", s.symmetric, s.pattern_symmetric);
                    println!("  bandwidth       = {}", a.bandwidth());
                    println!("  |w| range       = {:.3e} .. {:.3e}", s.min_weight, s.max_weight);
                    println!("  distinct |w|    = {}{}", s.distinct_weights, if s.distinct_weights >= 1000 { "+" } else { "" });
                    if s.nan_weights > 0 {
                        println!("  NaN weights     = {} (excluded from |w| stats; extraction will reject this input)", s.nan_weights);
                    }
                    println!("  top-2N weight   = {:.3} (upper bound on c_pi, n=2)", s.top_2n_weight_fraction);
                    println!("  c_id            = {:.4}", identity_coverage(&a));
                    if s.distinct_weights < 10 {
                        println!("  note: heavily tied weights — expect charging (config 2) to matter");
                    }
                }
            }
            "factor" => {
                let n: usize = flag_val(rest, "-n").and_then(|s| s.parse().ok()).unwrap_or(2);
                let cfg = parse_cfg(rest, n);
                let ap = prepare_undirected(&a);
                let out = try_parallel_factor(&dev, &ap, &cfg).unwrap_or_else(|e| {
                    let m = e.to_string();
                    fail_dump(&dev, "factor", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                });
                if let Err(msg) = out.factor.validate(&ap) {
                    let m = format!("factor invariants violated: {msg}");
                    fail_dump(&dev, "factor", input, Some(&a), Some(&cfg), fault, "audit", &m, &m);
                }
                if checked {
                    let v = linear_forest::check::audit::audit_factor(&out.factor, &ap, n, out.maximal);
                    if !v.is_empty() {
                        for x in &v {
                            eprintln!("  {x}");
                        }
                        let m = format!("{} factor invariant violation(s)", v.len());
                        fail_dump(&dev, "factor", input, Some(&a), Some(&cfg), fault, "audit", &m, &m);
                    }
                    eprintln!("check: factor passes mutuality/degree/weight/maximality audits");
                }
                println!(
                    "[0,{n}]-factor: {} edges, coverage c_pi = {:.4}, \
                     {} iterations, maximal = {}",
                    out.factor.edges().len(),
                    weight_coverage(&out.factor, &a),
                    out.iterations,
                    out.maximal
                );
            }
            "forest" => {
                let cfg = parse_cfg(rest, 2);
                let ap = prepare_undirected(&a);
                let shards: usize = flag_val(rest, "--shards")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1);
                if shards > 1 {
                    use linear_forest::check::audit::{
                        audit_factor, audit_input, audit_paths, audit_permutation,
                    };
                    use linear_forest::shard::{extract_sharded, ShardConfig};
                    let (forest, rep) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(shards))
                        .unwrap_or_else(|e| {
                            let m = e.to_string();
                            fail_dump(&dev, "forest", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                        });
                    if checked {
                        let mut v = audit_input(&ap);
                        v.extend(audit_factor(&forest.factor, &ap, 2, rep.maximal));
                        v.extend(audit_paths(&forest.factor, &forest.paths));
                        v.extend(audit_permutation(&forest.factor, &forest.paths, &forest.perm));
                        if !v.is_empty() {
                            for x in &v {
                                eprintln!("  {x}");
                            }
                            let m = format!("{} stage-audit violation(s) on the sharded forest", v.len());
                            fail_dump(&dev, "forest", input, Some(&a), Some(&cfg), fault, "audit", &m, &m);
                        }
                        eprintln!("check: sharded forest passes the stage audits");
                    }
                    let q = forest.quality_report(&a, None);
                    println!(
                        "linear forest ({} shards): {} paths (mean len {:.1}, max {}), \
                         {} cycles broken, coverage {:.4} (c_id {:.4}), cut {} edges, \
                         {} reconcile rounds, critical path {:.3} ms model",
                        rep.shards,
                        q.num_paths,
                        q.mean_path_len,
                        q.max_path_len,
                        q.cycles_broken,
                        q.coverage,
                        q.identity_coverage,
                        rep.cut_edges,
                        rep.reconcile.rounds,
                        rep.critical_path_model_s() * 1e3,
                    );
                    if has_flag(rest, "--paths") {
                        for p in forest.paths.to_paths().iter().take(50) {
                            let ids: Vec<String> = p.iter().map(|v| v.to_string()).collect();
                            println!("  {}", ids.join("-"));
                        }
                    }
                    if let Some(path) = flag_val(rest, "--perm") {
                        let mut f = std::io::BufWriter::new(
                            std::fs::File::create(path)
                                .unwrap_or_else(|e| fail(format!("cannot create {path}: {e}"))),
                        );
                        for &v in &forest.perm {
                            writeln!(f, "{v}").unwrap();
                        }
                        println!("permutation written to {path}");
                    }
                } else {
                let (forest, timings) = if checked {
                    let (forest, timings, report) =
                        extract_linear_forest_checked(&dev, &ap, &cfg, &CheckOptions { fault })
                            .unwrap_or_else(|e| {
                                let m = linear_forest::postmortem::check_error_message(&e);
                                let k = linear_forest::postmortem::check_error_kind(&e);
                                fail_dump(&dev, "forest", input, Some(&a), Some(&cfg), fault, k, &m, &e)
                            });
                    eprintln!("check: {report}");
                    (forest, timings)
                } else {
                    extract_linear_forest(&dev, &ap, &cfg).unwrap_or_else(|e| {
                        let m = e.to_string();
                        fail_dump(&dev, "forest", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                    })
                };
                let q = forest.quality_report(&a, None);
                println!(
                    "linear forest: {} paths (mean len {:.1}, max {}), {} cycles \
                     broken, coverage {:.4} (c_id {:.4}), setup {:.3} ms model / \
                     {:.3} ms wall",
                    q.num_paths,
                    q.mean_path_len,
                    q.max_path_len,
                    q.cycles_broken,
                    q.coverage,
                    q.identity_coverage,
                    timings.total_model_s() * 1e3,
                    timings.total_wall_s() * 1e3,
                );
                if has_flag(rest, "--paths") {
                    for p in forest.paths.to_paths().iter().take(50) {
                        let ids: Vec<String> = p.iter().map(|v| v.to_string()).collect();
                        println!("  {}", ids.join("-"));
                    }
                }
                if let Some(path) = flag_val(rest, "--perm") {
                    let mut f = std::io::BufWriter::new(
                        std::fs::File::create(path)
                            .unwrap_or_else(|e| fail(format!("cannot create {path}: {e}"))),
                    );
                    for &v in &forest.perm {
                        writeln!(f, "{v}").unwrap();
                    }
                    println!("permutation written to {path}");
                }
            }
        }
        "tridiag" => {
            let cfg = parse_cfg(rest, 2);
            let (tri, forest) = if checked {
                let (tri, forest, _, report) =
                    tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions { fault })
                        .unwrap_or_else(|e| {
                            let m = linear_forest::postmortem::check_error_message(&e);
                            let k = linear_forest::postmortem::check_error_kind(&e);
                            fail_dump(&dev, "tridiag", input, Some(&a), Some(&cfg), fault, k, &m, &e)
                        });
                eprintln!("check: {report}");
                (tri, forest)
            } else {
                let (tri, forest, _) =
                    tridiagonal_from_matrix(&dev, &a, &cfg).unwrap_or_else(|e| {
                        let m = e.to_string();
                        fail_dump(&dev, "tridiag", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                    });
                (tri, forest)
            };
            let prefix = flag_val(rest, "--out").unwrap_or("tridiag");
            for (name, data) in [("dl", &tri.dl), ("d", &tri.d), ("du", &tri.du)] {
                let path = format!("{prefix}.{name}.txt");
                let mut f = std::io::BufWriter::new(
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| fail(format!("cannot create {path}: {e}"))),
                );
                for v in data {
                    writeln!(f, "{v:e}").unwrap();
                }
            }
            println!(
                "tridiagonal system ({} rows, coverage {:.4}) written to \
                 {prefix}.{{dl,d,du}}.txt",
                tri.len(),
                weight_coverage(&forest.factor, &a)
            );
        }
        "solve" => {
            let tol: f64 = flag_val(rest, "--tol").and_then(|s| s.parse().ok()).unwrap_or(1e-10);
            let max_iters: usize = flag_val(rest, "--max-iters")
                .and_then(|s| s.parse().ok())
                .unwrap_or(5000);
            let opts = SolveOpts { tol, max_iters };
            let cfg = FactorConfig::paper_default(2);
            let which = flag_val(rest, "--precond").unwrap_or("algtriscal");
            if checked && matches!(which, "algtriscal" | "algtriblock") {
                // Preflight: audit the forest pipeline the preconditioner
                // is about to run on this matrix.
                let (_, _, _, report) =
                    tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions { fault })
                        .unwrap_or_else(|e| {
                            let m = linear_forest::postmortem::check_error_message(&e);
                            let k = linear_forest::postmortem::check_error_kind(&e);
                            fail_dump(&dev, "solve", input, Some(&a), Some(&cfg), fault, k, &m, &e)
                        });
                eprintln!("check (preflight): {report}");
            }
            let precond: Box<dyn Preconditioner<f64>> = match which {
                "none" => Box::new(IdentityPrecond),
                "jacobi" => Box::new(JacobiPrecond::new(&a)),
                "triscal" => Box::new(TriScalPrecond::new(&a)),
                "algtriscal" => Box::new(
                    AlgTriScalPrecond::try_new(&dev, &a, &cfg).unwrap_or_else(|e| {
                        let m = e.to_string();
                        fail_dump(&dev, "solve", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                    }),
                ),
                "algtriblock" => Box::new(
                    AlgTriBlockPrecond::try_new(&dev, &a, &cfg).unwrap_or_else(|e| {
                        let m = e.to_string();
                        fail_dump(&dev, "solve", input, Some(&a), Some(&cfg), fault, "pipeline", &m, &m)
                    }),
                ),
                "amg" => Box::new(AmgPrecond::new(&dev, &a, AmgConfig::default())),
                other => {
                    eprintln!("unknown preconditioner '{other}'");
                    exit(2);
                }
            };
            let (b, xt) = manufactured_problem(&dev, &a);
            let solver = flag_val(rest, "--solver").unwrap_or("bicgstab");
            let (_, st) = match solver {
                "gmres" => gmres(&dev, &a, &b, precond.as_ref(), 50, &opts, Some(&xt)),
                "cg" => pcg(&dev, &a, &b, precond.as_ref(), &opts, Some(&xt)),
                _ => bicgstab(&dev, &a, &b, precond.as_ref(), &opts, Some(&xt)),
            };
            println!(
                "{solver} + {}: {} iterations, converged = {}, \
                 rel.res = {:.2e}, FRE = {:.2e}",
                precond.name(),
                st.iterations,
                st.converged,
                st.rel_residual.last().copied().unwrap_or(f64::NAN),
                st.fre.last().copied().unwrap_or(f64::NAN),
            );
        }
        "check" => {
            let cfg = parse_cfg(rest, 2);
            let (tri, forest, timings, report) =
                tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions { fault })
                    .unwrap_or_else(|e| {
                        let m = linear_forest::postmortem::check_error_message(&e);
                        let k = linear_forest::postmortem::check_error_kind(&e);
                        fail_dump(&dev, "check", input, Some(&a), Some(&cfg), fault, k, &m, &e)
                    });
            println!("check passed: {report}");
            println!(
                "  {} rows, {} paths, {} cycles broken, coverage {:.4}, \
                 setup {:.3} ms model",
                tri.len(),
                forest.num_paths(),
                forest.cycles.cycles,
                weight_coverage(&forest.factor, &a),
                timings.total_model_s() * 1e3,
            );
        }
        "shard" => {
            use linear_forest::shard::check::{differential_shard_case, MIN_SHARD_QUALITY_RATIO};
            let shards: usize = flag_val(rest, "--shards")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4);
            let cfg = parse_cfg(rest, 2);
            let case = differential_shard_case(&dev, input, &a, &cfg, shards);
            if has_flag(rest, "--json") {
                println!(
                    "{{\"input\":\"{}\",\"n\":{},\"shards\":{},\"cut_edges\":{},\
                     \"rounds\":{},\"whole_coverage\":{},\"sharded_coverage\":{},\
                     \"quality_ratio\":{},\"quality_bound\":{},\"bit_identical\":{},\
                     \"violations\":{},\"passed\":{}}}",
                    json::escape(input),
                    case.n,
                    case.shards,
                    case.cut_edges,
                    case.rounds,
                    json::number(case.whole_coverage),
                    json::number(case.sharded_coverage),
                    json::number(case.quality_ratio()),
                    json::number(MIN_SHARD_QUALITY_RATIO),
                    case.bit_identical,
                    case.violations.len(),
                    case.passed(),
                );
            } else {
                println!(
                    "sharded vs whole-graph on {input} (N = {}, K = {}):",
                    case.n, case.shards
                );
                println!(
                    "  cut {} edges, {} reconcile rounds",
                    case.cut_edges, case.rounds
                );
                println!(
                    "  coverage {:.4} sharded / {:.4} whole (ratio {:.4}, bound {MIN_SHARD_QUALITY_RATIO})",
                    case.sharded_coverage,
                    case.whole_coverage,
                    case.quality_ratio(),
                );
                if case.shards == 1 {
                    println!(
                        "  K = 1 bit-identical: {}",
                        if case.bit_identical { "yes" } else { "NO (bug)" }
                    );
                }
                for v in &case.violations {
                    eprintln!("  violation: {v}");
                }
            }
            if !case.passed() {
                let m = if case.violations.is_empty() {
                    format!(
                        "sharded quality ratio {:.4} below bound {MIN_SHARD_QUALITY_RATIO} \
                         (or K=1 divergence)",
                        case.quality_ratio()
                    )
                } else {
                    format!("{} stage-audit violation(s) on the sharded forest", case.violations.len())
                };
                fail_dump(&dev, "shard", input, Some(&a), Some(&cfg), fault, "audit", &m, &m);
            }
        }
        _ => usage(),
    }

    if let (Some(path), Some(sink)) = (trace_path.as_deref(), trace_sink.as_deref()) {
        write_trace(path, sink);
    }
    if let Some(path) = metrics_path.as_deref() {
        write_metrics(path);
    }
}
