//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Each benchmark body runs exactly once and its wall time is printed; there
//! is no statistical sampling. This keeps `cargo check/test --benches`
//! compiling (and benches runnable as smoke tests) in the offline
//! container. Only wired in by `scripts/offline_check.sh`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let t0 = Instant::now();
        let mut b = Bencher { _private: () };
        f(&mut b);
        eprintln!(
            "[bench-stub] {}/{}: {:.3} ms (single run)",
            self.name,
            id,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
