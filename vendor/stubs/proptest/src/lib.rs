//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Unlike the swallow-everything approach, this stub actually *runs* the
//! property bodies: each `proptest!` test samples its strategies from a
//! deterministic xorshift generator for `cases` iterations and panics on the
//! first failed `prop_assert*`. There is no shrinking and no persistence —
//! a failure reports the case index so it can be replayed by rerunning the
//! test (the generator is seeded per test from the test name). Only wired
//! in by `scripts/offline_check.sh`.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (xorshift64*).
#[doc(hidden)]
#[derive(Clone)]
pub struct TestRng(pub u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Value-generation strategies. `Value` mirrors proptest's associated type.
pub trait Strategy {
    type Value;

    #[doc(hidden)]
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let v = self.inner.gen_value(rng);
        (self.f)(v).gen_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec` over a `Range<usize>` length.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __cases = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(__cfg.cases);
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    let __res: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __res {
                        panic!("[{}] case {}/{} failed: {}", stringify!($name), __case, __cases, e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err(
                format!("prop_assert_eq failed: {:?} != {:?}", __l, __r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err(
                format!("prop_assert_eq failed ({}): {:?} != {:?}", format!($($fmt)+), __l, __r));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err(
                format!("prop_assert_ne failed: {:?} == {:?}", __l, __r));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        // The stub has no rejection machinery; treat a failed assumption as
        // a vacuous pass for this case.
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
