//! Sequential stand-in for the subset of rayon used by this workspace.
//!
//! The real `rayon` crate is not vendored in the offline build container, so
//! `scripts/offline_check.sh` patches it with this crate. Every `par_*`
//! entry point runs sequentially on the calling thread; the combinator
//! surface mirrors rayon's names so call sites compile unchanged. This stub
//! is **only** wired in by the offline check script — the shipped
//! `Cargo.toml` still depends on the real crate.

use std::ops::Range;

/// Number of worker threads; the sequential stub always reports one.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Wrapper marking an iterator as "parallel". All combinators are inherent
/// methods so they never collide with `std::iter::Iterator` adaptors.
pub struct Par<I>(pub I);

pub trait IntoParallelIterator {
    type Iter: Iterator;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self)
    }
}

impl IntoParallelIterator for Range<u32> {
    type Iter = Range<u32>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self)
    }
}

pub trait ParallelSlice {
    type Item;
    fn par_iter(&self) -> Par<std::slice::Iter<'_, Self::Item>>;
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, Self::Item>>;
}

pub trait ParallelSliceMut {
    type Item;
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, Self::Item>>;
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, Self::Item>>;
}

impl<T> ParallelSlice for [T] {
    type Item = T;
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
}

impl<T> ParallelSliceMut for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
}

impl<I: Iterator> Par<I> {
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, U, F>> {
        Par(self.0.flat_map(f))
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    pub fn zip_eq<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// rayon's two-level fold: sequentially there is exactly one "thread
    /// partial", so this yields a single folded value.
    pub fn fold<A, ID: Fn() -> A, F: FnMut(A, I::Item) -> A>(
        self,
        identity: ID,
        fold_op: F,
    ) -> Par<std::iter::Once<A>> {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    pub fn reduce<ID: Fn() -> I::Item, OP: FnMut(I::Item, I::Item) -> I::Item>(
        self,
        identity: ID,
        op: OP,
    ) -> I::Item {
        let mut op = op;
        self.0.fold(identity(), |a, b| op(a, b))
    }

    pub fn reduce_with<OP: FnMut(I::Item, I::Item) -> I::Item>(self, op: OP) -> Option<I::Item> {
        self.0.reduce(op)
    }
}

impl<'a, I, T: Copy + 'a> Par<I>
where
    I: Iterator<Item = &'a T>,
{
    pub fn copied(self) -> Par<std::iter::Copied<I>> {
        Par(self.0.copied())
    }
}
