//! Offline stand-in for the subset of `rand` 0.9 used by this workspace.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 (the same generator
//! family the real crate uses on 64-bit targets), so streams are high
//! quality and deterministic per seed — but **not** bit-identical to the
//! real crate's streams: range/float sampling here uses plain modulo and
//! 53-bit mantissa scaling instead of rand's uniform-distribution code.
//! Tests must therefore not depend on exact values drawn through the real
//! crate. Only wired in by `scripts/offline_check.sh`.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore + Sized {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng`-using code also compiles against the stub.
    pub type StdRng = SmallRng;
}

/// Types drawable from the "standard" distribution (`rng.random::<T>()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_sample_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_sample_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling. The blanket `SampleRange` impls below
/// mirror real rand's shape (one impl per range *kind*, generic in the
/// element), which is what lets `rng.random_range(16..128)` infer the
/// element type from how the result is used.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}
