//! Offline stand-in for the subset of `parking_lot` used by this workspace:
//! a `Mutex` whose `lock()` returns the guard directly (no poisoning).
//! Backed by `std::sync::Mutex`; poisoned locks are recovered transparently,
//! matching parking_lot's no-poisoning semantics.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}
