//! Request-scoped correlation identity ([`TraceContext`]).
//!
//! A trace context is minted once at ingress (the serve front-end, or the
//! batch scheduler for direct CLI submissions) and threaded through every
//! layer a job touches — admission queue, scheduler, fused batch, device —
//! so spans, flight events, lifecycle logs, and histogram exemplars can
//! all be joined on one `trace_id`.
//!
//! Correlation is **identity-only**: a trace id is either taken verbatim
//! from an inbound `traceparent`-style header or derived deterministically
//! from `(job_id, tenant)` with FNV-1a. No wall clock, no randomness —
//! two identical deterministic runs mint identical ids, which is what
//! keeps `repro serve` bit-stable with tracing enabled.

use crate::json::escape;

/// Request-scoped correlation identity carried by a job through every
/// layer of the pipeline.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 64-bit correlation id, rendered as 16 lowercase hex digits.
    pub trace_id: u64,
    /// Ingress-assigned job id (globally unique per server process).
    pub job_id: u64,
    /// Tenant the job was submitted under (`"cli"` for direct runs).
    pub tenant: String,
}

impl TraceContext {
    /// A context with an explicit (e.g. inbound) trace id.
    pub fn new(trace_id: u64, job_id: u64, tenant: impl Into<String>) -> Self {
        Self {
            trace_id,
            job_id,
            tenant: tenant.into(),
        }
    }

    /// A context whose trace id is minted deterministically from the
    /// identity pair via [`TraceContext::mint`].
    pub fn minted(job_id: u64, tenant: impl Into<String>) -> Self {
        let tenant = tenant.into();
        Self {
            trace_id: Self::mint(job_id, &tenant),
            job_id,
            tenant,
        }
    }

    /// Deterministically derive a trace id from `(job_id, tenant)`
    /// (FNV-1a over the tenant bytes then the job id bytes). Never zero:
    /// zero is the "uncorrelated" sentinel everywhere.
    pub fn mint(job_id: u64, tenant: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in tenant.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for b in job_id.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h.max(1)
    }

    /// The trace id as 16 lowercase hex digits (the wire form used in
    /// `X-Trace-Id` headers, JSONL logs, and exemplars).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Parse an inbound trace id: either bare hex (1–32 digits; the low
    /// 64 bits are kept) or a W3C `traceparent`-style header
    /// (`VV-<trace-id hex>-<parent-id hex>-<flags>`, the trace-id field
    /// is kept). Returns `None` for malformed input or an all-zero id.
    pub fn parse_trace_id(s: &str) -> Option<u64> {
        let s = s.trim();
        let hex = if s.contains('-') {
            // traceparent: version - trace-id - parent-id - flags
            let mut parts = s.split('-');
            let _version = parts.next()?;
            parts.next()?
        } else {
            s
        };
        if hex.is_empty() || hex.len() > 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        // Keep the low 64 bits (last 16 hex digits).
        let low = &hex[hex.len().saturating_sub(16)..];
        match u64::from_str_radix(low, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(v),
        }
    }

    /// Serialize as a JSON object (`trace_id` as a hex string so it
    /// survives the f64 number model of JSON bit-exactly).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\":\"{}\",\"job\":{},\"tenant\":\"{}\"}}",
            self.trace_hex(),
            self.job_id,
            escape(&self.tenant)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_is_deterministic_and_identity_only() {
        let a = TraceContext::minted(7, "acme");
        let b = TraceContext::minted(7, "acme");
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::minted(8, "acme").trace_id);
        assert_ne!(a.trace_id, TraceContext::minted(7, "emca").trace_id);
        assert_ne!(a.trace_id, 0, "zero is the uncorrelated sentinel");
    }

    #[test]
    fn hex_round_trips() {
        let c = TraceContext::new(0xdead_beef_cafe_1234, 3, "t");
        assert_eq!(c.trace_hex(), "deadbeefcafe1234");
        assert_eq!(
            TraceContext::parse_trace_id(&c.trace_hex()),
            Some(c.trace_id)
        );
    }

    #[test]
    fn parses_traceparent_style_headers() {
        assert_eq!(
            TraceContext::parse_trace_id("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"),
            Some(0x8448_eb21_1c80_319c)
        );
        // Bare short hex works too.
        assert_eq!(TraceContext::parse_trace_id("ff"), Some(0xff));
        assert_eq!(TraceContext::parse_trace_id("  ff  "), Some(0xff));
    }

    #[test]
    fn rejects_malformed_and_zero_ids() {
        assert_eq!(TraceContext::parse_trace_id(""), None);
        assert_eq!(TraceContext::parse_trace_id("xyz"), None);
        assert_eq!(TraceContext::parse_trace_id("0"), None);
        assert_eq!(TraceContext::parse_trace_id("00000000000000000000000000000000"), None);
        assert_eq!(TraceContext::parse_trace_id("00-zz-aa-01"), None);
        let long = "a".repeat(33);
        assert_eq!(TraceContext::parse_trace_id(&long), None);
    }

    #[test]
    fn json_is_well_formed() {
        let c = TraceContext::minted(12, "a\"b");
        crate::json::validate(&c.to_json()).unwrap();
        assert!(c.to_json().contains("\"job\":12"));
    }
}
