//! Trace exporters: Chrome Trace Event JSON (for `chrome://tracing` /
//! Perfetto) and the flat per-phase summary rollup.
//!
//! The summary partitions every recorded launch exactly once: a launch
//! counts toward the *direct* totals of the innermost span it attributed
//! to (or toward the `untraced` bucket), so the direct totals of all
//! phases plus `untraced` always sum to the grand totals — which in turn
//! equal the device's aggregate `DeviceStats` for the traced run. Each
//! phase additionally reports *rolled-up* totals including all descendant
//! spans (`total = self + Σ child totals`).

use crate::json::{escape, number};
use crate::sink::TraceData;
use std::collections::HashMap;

/// Launch/traffic/time totals of one phase (or of the whole trace).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotals {
    /// Number of kernel launches.
    pub launches: u64,
    /// Bytes read from simulated global memory.
    pub read: u64,
    /// Bytes written to simulated global memory.
    pub written: u64,
    /// Total model time (seconds).
    pub model_s: f64,
    /// Total wall time (seconds).
    pub wall_s: f64,
}

impl PhaseTotals {
    fn add_launch(&mut self, read: u64, written: u64, model_s: f64, wall_s: f64) {
        self.launches += 1;
        self.read += read;
        self.written += written;
        self.model_s += model_s;
        self.wall_s += wall_s;
    }

    fn merge(&mut self, other: &PhaseTotals) {
        self.launches += other.launches;
        self.read += other.read;
        self.written += other.written;
        self.model_s += other.model_s;
        self.wall_s += other.wall_s;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"launches\":{},\"read_bytes\":{},\"written_bytes\":{},\
             \"model_s\":{},\"wall_s\":{}}}",
            self.launches,
            self.read,
            self.written,
            number(self.model_s),
            number(self.wall_s)
        )
    }
}

/// Per-span rollup entry of a [`Summary`].
#[derive(Clone, Debug)]
pub struct PhaseRollup {
    /// Span id this entry describes.
    pub id: u64,
    /// `/`-joined name path from the root span (e.g. `forest/factor/iter_0`).
    pub path: String,
    /// Span name.
    pub name: String,
    /// Nesting depth (0 = root span).
    pub depth: usize,
    /// Wall-clock duration of the span itself (seconds).
    pub duration_s: f64,
    /// Totals of launches attributed *directly* to this span.
    pub direct: PhaseTotals,
    /// Totals including all descendant spans.
    pub total: PhaseTotals,
    /// Metric series sampled on this span, grouped by key in
    /// first-appearance order.
    pub metrics: Vec<(String, Vec<f64>)>,
}

/// Flat per-phase rollup of a trace; see the module docs for the
/// partitioning invariant.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// One entry per span, in begin order.
    pub phases: Vec<PhaseRollup>,
    /// Launches recorded while no span was open.
    pub untraced: PhaseTotals,
    /// Grand totals over every recorded launch
    /// (= Σ direct over phases + untraced).
    pub totals: PhaseTotals,
    /// Events the recording sink discarded because its buffer was full;
    /// nonzero means the rollup above undercounts the run.
    pub dropped_events: u64,
}

impl Summary {
    /// Attach the recording sink's drop counter (see
    /// [`RecordingSink::dropped`](crate::RecordingSink::dropped)).
    #[must_use]
    pub fn with_dropped(mut self, dropped: u64) -> Self {
        self.dropped_events = dropped;
        self
    }
    /// Serialize as a JSON document. The flat per-phase fields are the
    /// *direct* attribution; the nested `"total"` object includes
    /// descendants.
    pub fn to_json(&self) -> String {
        let mut phases = Vec::with_capacity(self.phases.len());
        for p in &self.phases {
            let metrics: Vec<String> = p
                .metrics
                .iter()
                .map(|(k, vs)| {
                    let vals: Vec<String> = vs.iter().map(|&v| number(v)).collect();
                    format!("\"{}\":[{}]", escape(k), vals.join(","))
                })
                .collect();
            phases.push(format!(
                "{{\"path\":\"{}\",\"name\":\"{}\",\"depth\":{},\
                 \"duration_s\":{},\
                 \"launches\":{},\"read_bytes\":{},\"written_bytes\":{},\
                 \"model_s\":{},\"wall_s\":{},\
                 \"total\":{},\"metrics\":{{{}}}}}",
                escape(&p.path),
                escape(&p.name),
                p.depth,
                number(p.duration_s),
                p.direct.launches,
                p.direct.read,
                p.direct.written,
                number(p.direct.model_s),
                number(p.direct.wall_s),
                p.total.to_json(),
                metrics.join(",")
            ));
        }
        format!(
            "{{\"phases\":[{}],\"untraced\":{},\"totals\":{},\
             \"dropped_events\":{}}}\n",
            phases.join(","),
            self.untraced.to_json(),
            self.totals.to_json(),
            self.dropped_events
        )
    }
}

fn span_paths(data: &TraceData) -> HashMap<u64, (String, usize)> {
    // Spans arrive in begin order, so a parent's path is computed before
    // any of its children's.
    let mut paths: HashMap<u64, (String, usize)> = HashMap::new();
    for s in &data.spans {
        let (path, depth) = match s.parent.and_then(|p| paths.get(&p)) {
            Some((ppath, pdepth)) => (format!("{ppath}/{}", s.name), pdepth + 1),
            None => (s.name.clone(), 0),
        };
        paths.insert(s.id, (path, depth));
    }
    paths
}

/// Compute the flat per-phase rollup of `data`.
pub fn summary(data: &TraceData) -> Summary {
    let index: HashMap<u64, usize> = data.spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let paths = span_paths(data);

    let mut direct = vec![PhaseTotals::default(); data.spans.len()];
    let mut untraced = PhaseTotals::default();
    let mut totals = PhaseTotals::default();
    for l in &data.launches {
        totals.add_launch(l.read, l.written, l.model_s, l.wall_s);
        match l.span.and_then(|id| index.get(&id)) {
            Some(&i) => direct[i].add_launch(l.read, l.written, l.model_s, l.wall_s),
            None => untraced.add_launch(l.read, l.written, l.model_s, l.wall_s),
        }
    }

    // Roll direct totals up the tree: children-before-parents post-order.
    let mut rolled = direct.clone();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); data.spans.len()];
    let mut roots = Vec::new();
    for (i, s) in data.spans.iter().enumerate() {
        match s.parent.and_then(|p| index.get(&p)) {
            Some(&pi) => children[pi].push(i),
            None => roots.push(i),
        }
    }
    // Iterative post-order over every root.
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    while let Some((i, expanded)) = stack.pop() {
        if expanded {
            for &c in &children[i] {
                let child_total = rolled[c];
                rolled[i].merge(&child_total);
            }
        } else {
            stack.push((i, true));
            for &c in children[i].iter().rev() {
                stack.push((c, false));
            }
        }
    }

    // Metric series per span, grouped by key in first-appearance order.
    let mut metrics: Vec<Vec<(String, Vec<f64>)>> = vec![Vec::new(); data.spans.len()];
    for m in &data.metrics {
        if let Some(&i) = m.span.and_then(|id| index.get(&id)) {
            match metrics[i].iter_mut().find(|(k, _)| *k == m.key) {
                Some((_, vs)) => vs.push(m.value),
                None => metrics[i].push((m.key.clone(), vec![m.value])),
            }
        }
    }

    let phases = data
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let (path, depth) = paths[&s.id].clone();
            PhaseRollup {
                id: s.id,
                path,
                name: s.name.clone(),
                depth,
                duration_s: s.duration_s(),
                direct: direct[i],
                total: rolled[i],
                metrics: std::mem::take(&mut metrics[i]),
            }
        })
        .collect();

    Summary {
        phases,
        untraced,
        totals,
        dropped_events: 0,
    }
}

/// Export `data` in the Chrome Trace Event JSON format. Spans and launches
/// become complete (`"ph":"X"`) slices on one track — launches nest under
/// their span by timestamp containment — and metrics become counter
/// (`"ph":"C"`) events, which Perfetto renders as time series (residual
/// curves, frontier shrinkage, ...).
pub fn chrome_trace(data: &TraceData) -> String {
    let paths = span_paths(data);
    let us = |s: f64| s * 1e6;
    let mut events = Vec::with_capacity(1 + data.spans.len() + data.launches.len());
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"lf simulated device\"}}"
            .to_string(),
    );
    for s in &data.spans {
        let correlation = match &s.correlation {
            Some(c) => format!(
                ",\"trace_id\":\"{}\",\"job\":{},\"tenant\":\"{}\"",
                c.trace_hex(),
                c.job_id,
                escape(&c.tenant)
            ),
            None => String::new(),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"path\":\"{}\"{}}}}}",
            escape(&s.name),
            number(us(s.start_s)),
            number(us(s.duration_s())),
            escape(&paths[&s.id].0),
            correlation
        ));
    }
    for l in &data.launches {
        let span_path = l
            .span
            .and_then(|id| paths.get(&id))
            .map(|(p, _)| p.as_str())
            .unwrap_or("(untraced)");
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":2,\"args\":{{\"span\":\"{}\",\"read_bytes\":{},\
             \"written_bytes\":{},\"model_us\":{}}}}}",
            escape(&l.name),
            number(us(l.start_s)),
            number(us(l.wall_s)),
            escape(span_path),
            l.read,
            l.written,
            number(us(l.model_s))
        ));
    }
    for m in &data.metrics {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"metric\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
             \"args\":{{\"{}\":{}}}}}",
            escape(&m.key),
            number(us(m.t_s)),
            escape(&m.key),
            number(m.value)
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::sink::RecordingSink;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    fn sample_trace() -> TraceData {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        t.launch("setup", 5, 5, 1e-6, 1e-6);
        {
            let _forest = t.span("forest");
            {
                let _factor = t.span("factor");
                for k in 0..3u64 {
                    let _iter = t.span_dyn(|| format!("iter_{k}"));
                    t.launch("edge_proposition", 100 * (k + 1), 50, 2e-6, 3e-6);
                    t.launch("confirm", 40, 40, 1e-6, 1e-6);
                    t.metric("frontier", (10 - k) as f64);
                }
            }
            {
                let _paths = t.span("identify_paths");
                t.launch("identify_paths", 300, 200, 4e-6, 5e-6);
            }
        }
        sink.snapshot()
    }

    #[test]
    fn summary_partitions_launches_exactly_once() {
        let data = sample_trace();
        let sum = summary(&data);
        let direct_read: u64 = sum.phases.iter().map(|p| p.direct.read).sum();
        let direct_written: u64 = sum.phases.iter().map(|p| p.direct.written).sum();
        assert_eq!(direct_read + sum.untraced.read, sum.totals.read);
        assert_eq!(direct_written + sum.untraced.written, sum.totals.written);
        assert_eq!(
            sum.phases.iter().map(|p| p.direct.launches).sum::<u64>()
                + sum.untraced.launches,
            sum.totals.launches
        );
        assert_eq!(sum.untraced.launches, 1, "the setup launch");
        assert_eq!(sum.totals.read, 5 + 100 + 200 + 300 + 3 * 40 + 300);
    }

    #[test]
    fn rollup_totals_are_self_plus_children() {
        let data = sample_trace();
        let sum = summary(&data);
        for p in &sum.phases {
            let child_sum: u64 = sum
                .phases
                .iter()
                .filter(|c| {
                    data.span(c.id).unwrap().parent == Some(p.id)
                })
                .map(|c| c.total.read)
                .sum();
            assert_eq!(
                p.total.read,
                p.direct.read + child_sum,
                "phase {}",
                p.path
            );
        }
        let forest = sum.phases.iter().find(|p| p.name == "forest").unwrap();
        assert_eq!(forest.total.read, sum.totals.read - sum.untraced.read);
        assert_eq!(forest.direct.launches, 0, "all launches are in children");
    }

    #[test]
    fn paths_and_depths() {
        let data = sample_trace();
        let sum = summary(&data);
        let iter0 = sum.phases.iter().find(|p| p.name == "iter_0").unwrap();
        assert_eq!(iter0.path, "forest/factor/iter_0");
        assert_eq!(iter0.depth, 2);
        assert_eq!(iter0.metrics, vec![("frontier".to_string(), vec![10.0])]);
    }

    #[test]
    fn exports_are_valid_json() {
        let data = sample_trace();
        validate(&chrome_trace(&data)).unwrap();
        validate(&summary(&data).to_json()).unwrap();
        // empty trace too
        let empty = TraceData::default();
        validate(&chrome_trace(&empty)).unwrap();
        validate(&summary(&empty).to_json()).unwrap();
    }

    #[test]
    fn chrome_trace_contains_span_launch_and_metric_events() {
        let data = sample_trace();
        let ct = chrome_trace(&data);
        assert!(ct.contains("\"cat\":\"span\""));
        assert!(ct.contains("\"cat\":\"launch\""));
        assert!(ct.contains("\"cat\":\"metric\""));
        assert!(ct.contains("\"span\":\"forest/factor/iter_1\""));
        assert!(ct.contains("\"span\":\"(untraced)\""));
    }

    #[test]
    fn chrome_trace_carries_span_correlation() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        let ctx = crate::TraceContext::new(0xdead_beef_cafe_1234, 9, "acme");
        {
            let _b = t.span("batch_0");
            let _j = t.span_correlated("job_9", &ctx);
        }
        let ct = chrome_trace(&sink.snapshot());
        validate(&ct).unwrap();
        assert!(ct.contains("\"trace_id\":\"deadbeefcafe1234\""));
        assert!(ct.contains("\"tenant\":\"acme\""));
    }

    #[test]
    fn metric_series_accumulate_in_order() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        {
            let _solve = t.span("bicgstab");
            for r in [1.0, 0.1, 0.01] {
                t.metric("rel_residual", r);
                t.metric("omega", r * 2.0);
            }
        }
        let sum = summary(&sink.snapshot());
        assert_eq!(
            sum.phases[0].metrics,
            vec![
                ("rel_residual".to_string(), vec![1.0, 0.1, 0.01]),
                ("omega".to_string(), vec![2.0, 0.2, 0.02]),
            ]
        );
        validate(&sum.to_json()).unwrap();
    }

    #[test]
    fn summary_reports_dropped_events() {
        let data = sample_trace();
        let clean = summary(&data).to_json();
        assert!(clean.contains("\"dropped_events\":0"));
        let truncated = summary(&data).with_dropped(42).to_json();
        assert!(truncated.contains("\"dropped_events\":42"));
        validate(&truncated).unwrap();
    }

    #[test]
    fn nan_times_serialize_as_null() {
        // An open (never closed) span has NaN end — exporters must still
        // emit valid JSON.
        let sink = RecordingSink::new();
        use crate::sink::TraceSink;
        sink.begin_span(1, None, "open", 0.0);
        let data = sink.snapshot();
        validate(&chrome_trace(&data)).unwrap();
        validate(&summary(&data).to_json()).unwrap();
    }
}
