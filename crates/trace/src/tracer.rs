//! The [`Tracer`] handle: span guards, launch and metric event production.
//!
//! A tracer starts *inactive* — every call is a single relaxed atomic load
//! and an immediate return. [`Tracer::install`] attaches a
//! [`crate::TraceSink`] and activates it; from then on span guards push
//! onto a shared span stack (so kernel launches attribute to the innermost
//! open span) and forward events to the sink.
//!
//! The span stack is shared per tracer and assumes the usual device
//! execution model of this workspace: kernel launches and span open/close
//! happen on one control thread (the rayon-parallel work happens *inside*
//! a launch body, which never opens spans). Guards tolerate out-of-order
//! drops by removing their exact id from wherever it sits in the stack.

use crate::context::TraceContext;
use crate::sink::{LaunchEvent, MetricEvent, TraceSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Shared {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    next_id: AtomicU64,
    stack: Mutex<Vec<u64>>,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A cloneable tracing handle; clones share the sink, span stack and epoch.
///
/// The default state is inactive (no sink): all operations are effectively
/// free. See the crate docs for the overhead budget.
#[derive(Clone, Default)]
pub struct Tracer {
    active: Arc<AtomicBool>,
    shared: Arc<Mutex<Option<Arc<Shared>>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("active", &self.is_active())
            .finish()
    }
}

impl Tracer {
    /// A new, inactive tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a sink is installed (one relaxed atomic load).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Install `sink` and activate the tracer. The epoch (t = 0 of all
    /// reported times) is the moment of installation. Replaces any
    /// previously installed sink and clears the span stack.
    pub fn install(&self, sink: Arc<dyn TraceSink>) {
        self.install_from(sink, 1);
    }

    /// [`Tracer::install`] with an explicit first span id. When several
    /// independent tracers (one per worker shard) share one sink, giving
    /// each a disjoint id range (e.g. `(shard + 1) << 40`) keeps span ids
    /// unique across the merged recording.
    pub fn install_from(&self, sink: Arc<dyn TraceSink>, first_id: u64) {
        *self.shared.lock() = Some(Arc::new(Shared {
            sink,
            epoch: Instant::now(),
            next_id: AtomicU64::new(first_id.max(1)),
            stack: Mutex::new(Vec::new()),
        }));
        self.active.store(true, Ordering::Relaxed);
    }

    /// Remove the sink and deactivate the tracer.
    pub fn uninstall(&self) {
        self.active.store(false, Ordering::Relaxed);
        *self.shared.lock() = None;
    }

    fn current(&self) -> Option<Arc<Shared>> {
        if !self.is_active() {
            return None;
        }
        self.shared.lock().clone()
    }

    /// Open a span named `name`; it closes when the returned guard drops.
    /// Spans nest: a span opened while another is open becomes its child,
    /// and kernel launches attribute to the innermost open span.
    pub fn span(&self, name: &str) -> SpanGuard {
        match self.current() {
            None => SpanGuard { shared: None, id: 0 },
            Some(shared) => Self::open(shared, name),
        }
    }

    /// [`Tracer::span`] with a lazily built name: the closure only runs
    /// when the tracer is active, so dynamic span names (`iter_{k}`) cost
    /// nothing in the inactive fast path.
    pub fn span_dyn<F: FnOnce() -> String>(&self, name: F) -> SpanGuard {
        match self.current() {
            None => SpanGuard { shared: None, id: 0 },
            Some(shared) => Self::open(shared, &name()),
        }
    }

    /// [`Tracer::span`] carrying a request-scoped correlation: the sink is
    /// asked to annotate the new span with `ctx` (see
    /// [`crate::TraceSink::correlate`]), so job-scoped spans in a shared
    /// span tree can be joined on their `trace_id`.
    pub fn span_correlated(&self, name: &str, ctx: &TraceContext) -> SpanGuard {
        match self.current() {
            None => SpanGuard { shared: None, id: 0 },
            Some(shared) => {
                let guard = Self::open(shared.clone(), name);
                shared.sink.correlate(guard.id, ctx);
                guard
            }
        }
    }

    fn open(shared: Arc<Shared>, name: &str) -> SpanGuard {
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let t = shared.now_s();
        let parent = {
            let mut stack = shared.stack.lock();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        };
        shared.sink.begin_span(id, parent, name, t);
        SpanGuard {
            shared: Some(shared),
            id,
        }
    }

    /// Report a completed kernel launch: `read`/`written` bytes of traffic,
    /// model and wall time in seconds. The launch attributes to the
    /// innermost open span and is back-dated by `wall_s` (launches report
    /// on completion).
    pub fn launch(&self, name: &str, read: u64, written: u64, model_s: f64, wall_s: f64) {
        let Some(shared) = self.current() else {
            return;
        };
        let span = shared.stack.lock().last().copied();
        let t = shared.now_s();
        shared.sink.launch(&LaunchEvent {
            span,
            name: name.to_string(),
            read,
            written,
            model_s,
            wall_s,
            start_s: (t - wall_s).max(0.0),
        });
    }

    /// Sample a scalar metric on the innermost open span (per-iteration
    /// frontier size, solver residual, ...). Repeated samples of the same
    /// key accumulate as a series in span order.
    pub fn metric(&self, key: &str, value: f64) {
        let Some(shared) = self.current() else {
            return;
        };
        let span = shared.stack.lock().last().copied();
        let t = shared.now_s();
        shared.sink.metric(&MetricEvent {
            span,
            key: key.to_string(),
            value,
            t_s: t,
        });
    }
}

/// RAII guard returned by [`Tracer::span`]; closes the span on drop.
#[must_use = "a span closes when its guard drops — bind it to a variable"]
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
    id: u64,
}

impl SpanGuard {
    /// An inert guard (what an inactive tracer returns).
    pub fn inert() -> Self {
        Self {
            shared: None,
            id: 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        {
            let mut stack = shared.stack.lock();
            // Innermost-first drops pop the top; be lenient about
            // out-of-order drops by removing the exact id wherever it is.
            if let Some(pos) = stack.iter().rposition(|&s| s == self.id) {
                stack.remove(pos);
            }
        }
        shared.sink.end_span(self.id, shared.now_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    #[test]
    fn inactive_tracer_produces_nothing() {
        let t = Tracer::new();
        assert!(!t.is_active());
        let _g = t.span("x");
        let _h = t.span_dyn(|| unreachable!("closure must not run when inactive"));
        t.launch("k", 1, 2, 0.0, 0.0);
        t.metric("m", 1.0);
    }

    #[test]
    fn spans_nest_and_attribute_launches() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        t.launch("orphan", 1, 0, 0.0, 0.0);
        {
            let _root = t.span("root");
            t.launch("in_root", 2, 0, 0.0, 0.0);
            {
                let _child = t.span_dyn(|| "child".to_string());
                t.launch("in_child", 3, 0, 0.0, 0.0);
                t.metric("depth", 2.0);
            }
            t.launch("in_root_again", 4, 0, 0.0, 0.0);
        }
        let d = sink.snapshot();
        assert_eq!(d.spans.len(), 2);
        let root = &d.spans[0];
        let child = &d.spans[1];
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert!(!root.end_s.is_nan() && !child.end_s.is_nan());
        let spans: Vec<Option<u64>> = d.launches.iter().map(|l| l.span).collect();
        assert_eq!(
            spans,
            vec![None, Some(root.id), Some(child.id), Some(root.id)]
        );
        assert_eq!(d.metrics[0].span, Some(child.id));
    }

    #[test]
    fn uninstall_stops_recording() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        t.launch("a", 1, 0, 0.0, 0.0);
        t.uninstall();
        assert!(!t.is_active());
        t.launch("b", 1, 0, 0.0, 0.0);
        assert_eq!(sink.snapshot().launches.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::new();
        let t2 = t.clone();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        assert!(t2.is_active());
        let _g = t2.span("from_clone");
        t.launch("k", 1, 0, 0.0, 0.0);
        let d = sink.snapshot();
        assert_eq!(d.launches[0].span, Some(d.spans[0].id));
    }

    #[test]
    fn out_of_order_guard_drop_is_tolerated() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // out of order
        t.launch("k", 1, 0, 0.0, 0.0);
        drop(b);
        let d = sink.snapshot();
        // launch still attributes to the surviving open span b
        assert_eq!(d.launches[0].span, Some(d.spans[1].id));
    }

    #[test]
    fn correlated_spans_carry_their_context() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        let ctx = TraceContext::minted(4812, "tenant-b");
        {
            let _batch = t.span("batch_0");
            let _job = t.span_correlated("job_4812", &ctx);
        }
        let d = sink.snapshot();
        assert_eq!(d.spans[0].correlation, None);
        assert_eq!(d.spans[1].correlation, Some(ctx));
        assert_eq!(d.spans[1].parent, Some(d.spans[0].id));
        // Inactive tracers stay free: the guard is inert.
        let cold = Tracer::new();
        let _g = cold.span_correlated("x", &TraceContext::minted(1, "t"));
    }

    #[test]
    fn install_from_gives_disjoint_id_ranges() {
        let sink = Arc::new(RecordingSink::new());
        let (a, b) = (Tracer::new(), Tracer::new());
        a.install_from(sink.clone(), 1 << 40);
        b.install_from(sink.clone(), 2 << 40);
        {
            let _x = a.span("shard0");
            let _y = b.span("shard1");
        }
        let d = sink.snapshot();
        assert_eq!(d.spans[0].id, 1 << 40);
        assert_eq!(d.spans[1].id, 2 << 40);
        // Separate tracers have separate span stacks: no false nesting.
        assert_eq!(d.spans[1].parent, None);
    }

    #[test]
    fn launch_is_backdated_by_wall_time() {
        let t = Tracer::new();
        let sink = Arc::new(RecordingSink::new());
        t.install(sink.clone());
        t.launch("k", 0, 0, 0.0, 1e-3);
        let l = &sink.snapshot().launches[0];
        assert!(l.start_s >= 0.0);
    }
}
