//! # lf-trace — hierarchical pipeline tracing and telemetry export
//!
//! The paper's evaluation attributes time and memory traffic to
//! *algorithmic phases*: per-iteration proposition/confirmation progress of
//! Alg. 2, traffic per pipeline phase (Table 2), preconditioned-solver
//! convergence (Sec. 6). This crate is the substrate that makes those
//! quantities observable from the outside:
//!
//! * a [`Tracer`] handle with RAII [`SpanGuard`]s forming a parent/child
//!   span tree (one span per pipeline phase, per factor iteration, per
//!   solve);
//! * a [`TraceSink`] trait receiving span begin/end, kernel-launch, and
//!   metric events — [`NoopSink`] discards everything, [`RecordingSink`]
//!   records a [`TraceData`] behind a mutex, bounded by an event capacity
//!   (events past the cap are dropped and counted via
//!   [`RecordingSink::dropped`], so a long service run cannot grow memory
//!   without limit);
//! * two exporters: [`chrome_trace`] (Chrome Trace Event JSON, loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) and
//!   [`summary`] (a flat per-phase rollup of launches, read/written bytes,
//!   model/wall time, and metrics).
//!
//! ## Overhead budget
//!
//! With no sink installed a tracer is a single relaxed atomic load per
//! call: span guards are inert, no strings are formatted (dynamic span
//! names go through [`Tracer::span_dyn`] which only runs its closure when
//! active), and no locks are taken. The simulated device's per-launch cost
//! is dominated by its stats mutex, so the inactive-tracer fast path is
//! well under the 2 % noise floor of the factor pipeline benchmarks.
//!
//! ## Example
//!
//! ```
//! use lf_trace::{chrome_trace, summary, RecordingSink, Tracer};
//! use std::sync::Arc;
//!
//! let tracer = Tracer::new();
//! let sink = Arc::new(RecordingSink::new());
//! tracer.install(sink.clone());
//!
//! {
//!     let _phase = tracer.span("factor");
//!     for k in 0..3 {
//!         let _iter = tracer.span_dyn(|| format!("iter_{k}"));
//!         tracer.launch("edge_proposition", 1000, 500, 1e-5, 2e-5);
//!         tracer.metric("frontier", (100 - k) as f64);
//!     }
//! }
//!
//! let data = sink.snapshot();
//! assert_eq!(data.spans.len(), 4); // factor + 3 iterations
//! let sum = summary(&data);
//! assert_eq!(sum.totals.read, 3000);
//! lf_trace::json::validate(&chrome_trace(&data)).unwrap();
//! lf_trace::json::validate(&sum.to_json()).unwrap();
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod export;
pub mod json;
pub mod sink;
pub mod tracer;

pub use context::TraceContext;
pub use export::{chrome_trace, summary, PhaseRollup, PhaseTotals, Summary};
pub use sink::{
    LaunchEvent, MetricEvent, NoopSink, RecordingSink, SpanNode, TraceData, TraceSink,
    DEFAULT_SINK_CAPACITY,
};
pub use tracer::{SpanGuard, Tracer};
