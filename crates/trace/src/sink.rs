//! Trace sinks: the event-consumer side of the telemetry subsystem.
//!
//! A [`TraceSink`] receives the raw event stream produced by a
//! [`crate::Tracer`]: span begin/end pairs, kernel launches, and scalar
//! metrics. [`NoopSink`] discards everything (the zero-overhead default —
//! though an inactive tracer never even calls it); [`RecordingSink`]
//! appends to a [`TraceData`] behind a mutex, from which the exporters in
//! [`crate::export`] build Chrome-trace and summary documents.

use crate::context::TraceContext;
use parking_lot::Mutex;

/// One kernel launch attributed to the innermost open span.
///
/// `start_s` is seconds since the tracer's epoch at which the launch body
/// *began* (the tracer back-dates it by `wall_s`, since launches report on
/// completion).
#[derive(Clone, Debug, PartialEq)]
pub struct LaunchEvent {
    /// Id of the innermost span open at launch time (`None` = untraced).
    pub span: Option<u64>,
    /// Kernel name.
    pub name: String,
    /// Bytes read from simulated global memory.
    pub read: u64,
    /// Bytes written to simulated global memory.
    pub written: u64,
    /// Model time of the launch (seconds).
    pub model_s: f64,
    /// Wall time of the launch (seconds).
    pub wall_s: f64,
    /// Start time in seconds since the tracer epoch.
    pub start_s: f64,
}

/// One scalar metric sample attributed to the innermost open span
/// (e.g. per-iteration frontier size, solver residual).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEvent {
    /// Id of the innermost span open at sample time (`None` = untraced).
    pub span: Option<u64>,
    /// Metric key.
    pub key: String,
    /// Sampled value.
    pub value: f64,
    /// Sample time in seconds since the tracer epoch.
    pub t_s: f64,
}

/// One span of the hierarchical trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Unique id (monotonically assigned by the tracer).
    pub id: u64,
    /// Parent span id (`None` for a root span).
    pub parent: Option<u64>,
    /// Span name (phase, iteration, solve, ...).
    pub name: String,
    /// Begin time in seconds since the tracer epoch.
    pub start_s: f64,
    /// End time in seconds since the tracer epoch (`NAN` while open).
    pub end_s: f64,
    /// Request-scoped correlation, when the span was opened on behalf of
    /// a specific job (see [`crate::Tracer::span_correlated`]).
    pub correlation: Option<TraceContext>,
}

impl SpanNode {
    /// Span duration in seconds (0 if still open).
    pub fn duration_s(&self) -> f64 {
        if self.end_s.is_nan() {
            0.0
        } else {
            self.end_s - self.start_s
        }
    }
}

/// Everything a [`RecordingSink`] captured: the span tree plus the flat
/// launch and metric event streams referencing it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceData {
    /// Spans in begin order.
    pub spans: Vec<SpanNode>,
    /// Kernel launches in completion order.
    pub launches: Vec<LaunchEvent>,
    /// Metric samples in emission order.
    pub metrics: Vec<MetricEvent>,
}

impl TraceData {
    /// Look up a span by id.
    pub fn span(&self, id: u64) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Ids of the direct children of `id` (in begin order).
    pub fn children(&self, id: u64) -> Vec<u64> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .map(|s| s.id)
            .collect()
    }
}

/// Consumer of trace events. All methods are called from the control
/// thread that drives kernel launches; implementations must still be
/// `Send + Sync` because tracers (and the devices holding them) are
/// shareable across threads.
pub trait TraceSink: Send + Sync {
    /// A span was opened. `parent` is the enclosing span, if any.
    fn begin_span(&self, id: u64, parent: Option<u64>, name: &str, start_s: f64);
    /// The span `id` was closed at `end_s` seconds since the epoch.
    fn end_span(&self, id: u64, end_s: f64);
    /// Attach a request-scoped correlation to the open span `id`. Sinks
    /// that don't track correlation can ignore this (the default).
    fn correlate(&self, _id: u64, _ctx: &TraceContext) {}
    /// A kernel launch completed.
    fn launch(&self, ev: &LaunchEvent);
    /// A scalar metric was sampled.
    fn metric(&self, ev: &MetricEvent);
}

/// A sink that discards every event. Installing it exercises the full
/// event-production path (useful for overhead measurements); *not*
/// installing any sink is cheaper still, since the tracer then skips event
/// production entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn begin_span(&self, _id: u64, _parent: Option<u64>, _name: &str, _start_s: f64) {}
    fn end_span(&self, _id: u64, _end_s: f64) {}
    fn launch(&self, _ev: &LaunchEvent) {}
    fn metric(&self, _ev: &MetricEvent) {}
}

/// Default event capacity of a [`RecordingSink`] (spans + launches +
/// metrics). Generous for interactive runs; long-lived services should
/// size the cap explicitly with [`RecordingSink::with_capacity`].
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 22;

/// A sink that records events into a [`TraceData`] behind a mutex, bounded
/// by an event capacity so a long service run cannot grow memory without
/// limit. Once `spans + launches + metrics` reaches the cap, new events
/// are counted in [`RecordingSink::dropped`] and discarded (span *ends*
/// still close already-recorded spans — they mutate in place).
pub struct RecordingSink {
    data: Mutex<TraceData>,
    capacity: usize,
    dropped: std::sync::atomic::AtomicU64,
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SINK_CAPACITY)
    }
}

impl std::fmt::Debug for RecordingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingSink")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl RecordingSink {
    /// An empty recording sink with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recording sink holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Mutex::new(TraceData::default()),
            capacity,
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The configured event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded because the sink was full (cumulative — not reset
    /// by [`RecordingSink::take`]). Exporters surface this as the
    /// `lf_trace_dropped_events` metric so a truncated trace is visible.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Clone of everything recorded so far.
    pub fn snapshot(&self) -> TraceData {
        self.data.lock().clone()
    }

    /// Move the recorded data out, leaving the sink empty (and its
    /// capacity available again).
    pub fn take(&self) -> TraceData {
        std::mem::take(&mut *self.data.lock())
    }

    fn full(&self, data: &TraceData) -> bool {
        let n = data.spans.len() + data.launches.len() + data.metrics.len();
        if n >= self.capacity {
            self.dropped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return true;
        }
        false
    }
}

impl TraceSink for RecordingSink {
    fn begin_span(&self, id: u64, parent: Option<u64>, name: &str, start_s: f64) {
        let mut data = self.data.lock();
        if self.full(&data) {
            return;
        }
        data.spans.push(SpanNode {
            id,
            parent,
            name: name.to_string(),
            start_s,
            end_s: f64::NAN,
            correlation: None,
        });
    }

    fn end_span(&self, id: u64, end_s: f64) {
        let mut data = self.data.lock();
        // Reverse search: spans close innermost-first, so the match is
        // almost always near the end. (Not capacity-checked: this mutates
        // an existing span; a dropped begin simply finds no match.)
        if let Some(s) = data.spans.iter_mut().rev().find(|s| s.id == id) {
            s.end_s = end_s;
        }
    }

    fn correlate(&self, id: u64, ctx: &TraceContext) {
        let mut data = self.data.lock();
        // Like end_span: mutates an existing span, never grows the buffer.
        if let Some(s) = data.spans.iter_mut().rev().find(|s| s.id == id) {
            s.correlation = Some(ctx.clone());
        }
    }

    fn launch(&self, ev: &LaunchEvent) {
        let mut data = self.data.lock();
        if self.full(&data) {
            return;
        }
        data.launches.push(ev.clone());
    }

    fn metric(&self, ev: &MetricEvent) {
        let mut data = self.data.lock();
        if self.full(&data) {
            return;
        }
        data.metrics.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_captures_span_tree() {
        let sink = RecordingSink::new();
        sink.begin_span(1, None, "root", 0.0);
        sink.begin_span(2, Some(1), "child", 0.5);
        sink.launch(&LaunchEvent {
            span: Some(2),
            name: "k".into(),
            read: 10,
            written: 20,
            model_s: 1e-6,
            wall_s: 2e-6,
            start_s: 0.6,
        });
        sink.metric(&MetricEvent {
            span: Some(2),
            key: "m".into(),
            value: 3.0,
            t_s: 0.7,
        });
        sink.end_span(2, 1.0);
        sink.end_span(1, 2.0);
        let d = sink.snapshot();
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.span(2).unwrap().parent, Some(1));
        assert_eq!(d.span(1).unwrap().end_s, 2.0);
        assert!((d.span(2).unwrap().duration_s() - 0.5).abs() < 1e-12);
        assert_eq!(d.children(1), vec![2]);
        assert_eq!(d.launches.len(), 1);
        assert_eq!(d.metrics[0].value, 3.0);
    }

    #[test]
    fn take_drains() {
        let sink = RecordingSink::new();
        sink.begin_span(1, None, "s", 0.0);
        assert_eq!(sink.take().spans.len(), 1);
        assert!(sink.snapshot().spans.is_empty());
    }

    #[test]
    fn open_span_duration_is_zero() {
        let s = SpanNode {
            id: 1,
            parent: None,
            name: "open".into(),
            start_s: 1.0,
            end_s: f64::NAN,
            correlation: None,
        };
        assert_eq!(s.duration_s(), 0.0);
    }

    #[test]
    fn bounded_sink_drops_and_counts_past_capacity() {
        let sink = RecordingSink::with_capacity(3);
        assert_eq!(sink.capacity(), 3);
        sink.begin_span(1, None, "a", 0.0);
        sink.metric(&MetricEvent {
            span: Some(1),
            key: "m".into(),
            value: 1.0,
            t_s: 0.1,
        });
        sink.begin_span(2, Some(1), "b", 0.2);
        // Sink is now full: further events are dropped and counted...
        sink.begin_span(3, Some(2), "dropped", 0.3);
        sink.metric(&MetricEvent {
            span: Some(2),
            key: "dropped".into(),
            value: 2.0,
            t_s: 0.4,
        });
        assert_eq!(sink.dropped(), 2);
        // ...but span *ends* still close recorded spans (and a dropped
        // begin's end is a silent no-op).
        sink.end_span(3, 0.5);
        sink.end_span(2, 0.6);
        let d = sink.snapshot();
        assert_eq!(d.spans.len() + d.launches.len() + d.metrics.len(), 3);
        assert_eq!(d.span(2).unwrap().end_s, 0.6);
        assert!(d.span(3).is_none());
        // take() frees the capacity; the dropped counter stays cumulative.
        sink.take();
        sink.begin_span(4, None, "fits again", 0.7);
        assert_eq!(sink.snapshot().spans.len(), 1);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn correlate_annotates_recorded_spans_in_place() {
        let sink = RecordingSink::with_capacity(1);
        sink.begin_span(1, None, "job", 0.0);
        sink.begin_span(2, None, "dropped", 0.1); // over capacity
        let ctx = TraceContext::minted(42, "acme");
        sink.correlate(1, &ctx);
        sink.correlate(2, &ctx); // silent no-op: span 2 was never recorded
        sink.correlate(99, &ctx); // silent no-op: unknown id
        let d = sink.snapshot();
        assert_eq!(d.span(1).unwrap().correlation, Some(ctx));
        assert!(d.span(2).is_none());
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let s = NoopSink;
        s.begin_span(1, None, "x", 0.0);
        s.end_span(1, 1.0);
        s.launch(&LaunchEvent {
            span: None,
            name: "k".into(),
            read: 0,
            written: 0,
            model_s: 0.0,
            wall_s: 0.0,
            start_s: 0.0,
        });
        s.metric(&MetricEvent {
            span: None,
            key: "m".into(),
            value: 0.0,
            t_s: 0.0,
        });
    }
}
