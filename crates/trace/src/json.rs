//! Minimal JSON helpers: string escaping for the exporters and a small
//! validating parser used by tests and smoke checks to assert that emitted
//! documents are well-formed without pulling in a serialization dependency.

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number: finite values print as-is, non-finite
/// values (which JSON cannot represent) become `null`.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Validate that `s` is a single well-formed JSON value (object, array,
/// string, number, boolean or null). Returns the byte offset and a message
/// on failure. This is a structural check only — no data is materialized.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}

fn num(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos:?}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos:?}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos:?}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos:?}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn validates_good_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#""stré""#,
            r#"{"a":[1,2,{"b":null}],"c":"x","d":false}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_bad_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "{'single':1}",
            "NaN",
        ] {
            assert!(validate(doc).is_err(), "{doc} should be rejected");
        }
    }
}
