//! Criterion bench behind the paper's Fig. 3: plain SpMV (both engines)
//! vs the edge-proposition kernel for n = 1..4, wall-clock on the
//! parallel-CPU device.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use lf_core::parallel::proposition_kernel_stats;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::{gespmv, AxpyOps, Collection, SpmvEngine};

const SCALE: usize = 50_000;

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_spmv");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for m in [Collection::Thermal2, Collection::Curlcurl3] {
        let a = prepare_undirected(&m.generate(SCALE));
        let dev = Device::default();
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.1).sin()).collect();
        let d = vec![0.0f64; a.nrows()];
        let mut out = vec![0.0f64; a.nrows()];
        let bytes = (a.nnz() * 12 + a.nrows() * 24) as u64;
        g.throughput(Throughput::Bytes(bytes));
        for (name, engine) in [
            ("row_parallel", SpmvEngine::RowParallel),
            ("srcsr", SpmvEngine::SrCsr),
        ] {
            g.bench_with_input(BenchmarkId::new(name, m.name()), &a, |b, a| {
                // fresh aggregate counters for every timed repetition so
                // warm-up launches don't pollute the device stats
                b.iter_batched(
                    || dev.reset_stats(),
                    |()| {
                        gespmv(
                            &dev,
                            "bench_spmv",
                            engine,
                            a,
                            &AxpyOps { x: &x, d: &d },
                            &mut out,
                        )
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

fn bench_proposition(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_proposition");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for m in [Collection::Thermal2, Collection::Atmosmodm] {
        let a = prepare_undirected(&m.generate(SCALE));
        let dev = Device::default();
        for n in 1..=4usize {
            for (tag, frontier) in [("", false), ("_frontier", true)] {
                let cfg = FactorConfig::config1(n).with_frontier(frontier);
                g.bench_with_input(
                    BenchmarkId::new(format!("n{n}{tag}"), m.name()),
                    &a,
                    |b, a| {
                        b.iter_batched(
                            || dev.reset_stats(),
                            |()| proposition_kernel_stats(&dev, a, &cfg, 1),
                            BatchSize::PerIteration,
                        );
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_proposition);
criterion_main!(benches);
