//! End-to-end setup benchmark (the paper's Fig. 6 totals): full
//! tridiagonal-preconditioner construction per collection matrix, plus the
//! greedy sequential baseline and the factor loop in dense vs
//! frontier-compacted mode (the latter with a caller-owned workspace
//! reused across iterations, as a hot solver-setup loop would run it).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;
use lf_core::prelude::*;
use lf_core::FactorWorkspace;
use lf_kernel::Device;
use lf_sparse::Collection;

const SCALE: usize = 50_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_setup");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for m in [
        Collection::Aniso2,
        Collection::Atmosmodm,
        Collection::Thermal2,
        Collection::Stocf1465,
    ] {
        let a = m.generate(SCALE);
        let cfg = FactorConfig::paper_default(2);
        // reset_stats() in the setup closure keeps the device's aggregate
        // counters scoped to the timed body — warm-up launches don't bleed
        // into what a --trace or stats dump of the same device would report
        g.bench_with_input(BenchmarkId::new("alg_tri_scal_setup", m.name()), &a, |b, a| {
            let dev = Device::default();
            b.iter_batched(
                || dev.reset_stats(),
                |()| tridiagonal_from_matrix(&dev, a, &cfg).unwrap(),
                BatchSize::PerIteration,
            );
        });
        let ap = prepare_undirected(&a);
        g.bench_with_input(
            BenchmarkId::new("parallel_factor_dense", m.name()),
            &ap,
            |b, ap| {
                let dev = Device::default();
                b.iter_batched(
                    || dev.reset_stats(),
                    |()| parallel_factor(&dev, ap, &cfg),
                    BatchSize::PerIteration,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("parallel_factor_frontier_ws", m.name()),
            &ap,
            |b, ap| {
                let dev = Device::default();
                let fcfg = cfg.with_frontier(true);
                let mut ws = FactorWorkspace::<f64, 2>::default();
                b.iter_batched(
                    || dev.reset_stats(),
                    |()| parallel_factor_with_workspace(&dev, ap, &fcfg, &mut ws),
                    BatchSize::PerIteration,
                );
            },
        );
        g.bench_with_input(BenchmarkId::new("greedy_factor_seq", m.name()), &ap, |b, ap| {
            b.iter(|| greedy_factor(ap, 2));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
