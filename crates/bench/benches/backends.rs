//! Backend/fusion microbenchmarks: the full pipeline under the peephole
//! fusion pass on and off (`fused_vs_unfused`) and under the model vs the
//! tuned CPU execution backend (`model_vs_cpu`), on the Fig. 3 degree-class
//! stand-ins. Forests are bit-identical across all four combinations (see
//! `tests/backend_equivalence.rs`); these benches measure only the wall
//! clock the backend and the fusion pass control.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lf_core::prelude::*;
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};
use lf_sparse::Collection;
use std::time::Duration;

const SCALE: usize = 40_000;

const MATRICES: [Collection; 3] = [
    Collection::Atmosmodm,
    Collection::Ecology1,
    Collection::Thermal2,
];

fn device(kind: BackendKind, fuse: bool) -> Device {
    let dev = Device::with_backend(DeviceConfig::default(), backend::make(kind));
    dev.set_fusion(fuse);
    dev
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_vs_unfused");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let cfg = FactorConfig::paper_default(2);
    for m in MATRICES {
        let a = m.generate(SCALE);
        for (label, fuse) in [("fused", true), ("unfused", false)] {
            g.bench_with_input(BenchmarkId::new(label, m.name()), &a, |b, a| {
                let dev = device(BackendKind::Cpu, fuse);
                b.iter_batched(
                    || dev.reset_stats(),
                    |()| tridiagonal_from_matrix(&dev, a, &cfg).unwrap(),
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

fn bench_model_vs_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_vs_cpu");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let cfg = FactorConfig::paper_default(2);
    for m in MATRICES {
        let a = m.generate(SCALE);
        for kind in [BackendKind::Model, BackendKind::Cpu] {
            g.bench_with_input(BenchmarkId::new(kind.as_str(), m.name()), &a, |b, a| {
                let dev = device(kind, true);
                b.iter_batched(
                    || dev.reset_stats(),
                    |()| tridiagonal_from_matrix(&dev, a, &cfg).unwrap(),
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fused_vs_unfused, bench_model_vs_cpu);
criterion_main!(benches);
