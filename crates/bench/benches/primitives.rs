//! Substrate primitive benchmarks: radix sort (the CUB substitute of
//! Sec. 4.3), prefix scan, reduction, and the PCR tridiagonal solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use lf_core::extract::Tridiag;
use lf_kernel::{reduce, scan, sort, Device};
use rand::{Rng, SeedableRng};

fn bench_radix_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix_sort");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    for n in [100_000usize, 1_000_000] {
        let keys: Vec<u64> = (0..n).map(|_| rng.random::<u64>() >> 16).collect();
        let vals: Vec<u32> = (0..n as u32).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pairs_u64", n), &n, |b, _| {
            let dev = Device::default();
            b.iter_batched(
                || (keys.clone(), vals.clone()),
                |(mut k, mut v)| sort::sort_pairs_u64(&dev, &mut k, &mut v),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("std_sort_baseline", n), &n, |b, _| {
            b.iter_batched(
                || keys.clone(),
                |mut k| k.sort_unstable(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_scan_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_reduce");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let n = 4_000_000usize;
    let data: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("exclusive_scan", |b| {
        let dev = Device::default();
        b.iter_batched(
            || data.clone(),
            |mut d| scan::exclusive_scan_in_place(&dev, "s", &mut d, 0u64, |a, b| a + b),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("reduce_sum", |b| {
        let dev = Device::default();
        b.iter(|| reduce::sum_u64(&dev, "r", &data))
    });
    g.finish();
}

fn bench_pcr(c: &mut Criterion) {
    let mut g = c.benchmark_group("tridiag_solve");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for n in [100_000usize, 1_000_000] {
        let mut t = Tridiag::<f64>::zeros(n);
        for i in 0..n {
            t.d[i] = 4.0;
            if i > 0 {
                t.dl[i] = -1.0;
            }
            if i + 1 < n {
                t.du[i] = -1.0;
            }
        }
        let b_rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        g.bench_with_input(BenchmarkId::new("pcr_parallel", n), &n, |b, _| {
            let dev = Device::default();
            b.iter(|| lf_solver::pcr_solve(&dev, &t, &b_rhs))
        });
        let f = lf_solver::ThomasFactorization::new(&t);
        g.bench_with_input(BenchmarkId::new("thomas_sequential", n), &n, |b, _| {
            b.iter(|| f.solve(&b_rhs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_radix_sort, bench_scan_reduce, bench_pcr);
criterion_main!(benches);
