//! Criterion bench behind the paper's Fig. 5: the two bidirectional scans
//! (identify cycles, identify paths) against the sequential CPU reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::Collection;

const SCALE: usize = 100_000;

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_scans");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for m in [Collection::Atmosmodm, Collection::Ecology1] {
        let dev = Device::default();
        let a = prepare_undirected(&m.generate(SCALE));
        let factor = parallel_factor(&dev, &a, &FactorConfig::paper_default(2)).factor;

        g.bench_with_input(
            BenchmarkId::new("identify_cycles_parallel", m.name()),
            &factor,
            |b, f| {
                b.iter_batched(
                    || f.clone(),
                    |mut f| break_cycles(&dev, &mut f),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("identify_cycles_sequential", m.name()),
            &factor,
            |b, f| {
                b.iter_batched(
                    || f.clone(),
                    |mut f| break_cycles_sequential(&mut f),
                    criterion::BatchSize::LargeInput,
                )
            },
        );

        let mut acyclic = factor.clone();
        break_cycles_sequential(&mut acyclic);
        g.bench_with_input(
            BenchmarkId::new("identify_paths_parallel", m.name()),
            &acyclic,
            |b, f| b.iter(|| identify_paths(&dev, f).expect("acyclic")),
        );
        g.bench_with_input(
            BenchmarkId::new("identify_paths_sequential", m.name()),
            &acyclic,
            |b, f| b.iter(|| identify_paths_sequential(f).expect("acyclic")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
