//! Per-kernel wall-clock profiler: model vs cpu backend, interleaved reps.
//!
//! A tuning aid, not part of the shipped harness — where `repro backends`
//! reports the headline cross, this prints the top kernels by per-kernel
//! minimum wall time with the cpu/model delta, so threshold or blocking
//! changes can be attributed to the specific kernels they affect:
//!
//! ```sh
//! cargo run --release -p lf-bench --example kprof -- 40000
//! ```

use lf_bench::gate::GATE_MATRICES;
use lf_core::forest::tridiagonal_from_matrix;
use lf_core::parallel::FactorConfig;
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};
use std::collections::BTreeMap;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let reps = 7;
    let cfg = FactorConfig::paper_default(2);
    for m in GATE_MATRICES {
        let a = m.generate(scale);
        let devs: Vec<(BackendKind, Device)> = [BackendKind::Model, BackendKind::Cpu]
            .iter()
            .map(|&k| {
                let dev = Device::with_backend(DeviceConfig::default(), backend::make(k));
                tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
                (k, dev)
            })
            .collect();
        // per backend: kernel -> min-over-reps of per-rep total wall
        let mut best: Vec<BTreeMap<String, f64>> = vec![BTreeMap::new(), BTreeMap::new()];
        let mut total: Vec<f64> = vec![f64::INFINITY; 2];
        for _ in 0..reps {
            for (i, (_, dev)) in devs.iter().enumerate() {
                dev.reset_stats();
                tridiagonal_from_matrix(dev, &a, &cfg).unwrap();
                let s = dev.stats();
                total[i] = total[i].min(s.wall_time_s * 1e3);
                for (name, k) in &s.kernels {
                    let e = best[i].entry(name.clone()).or_insert(f64::INFINITY);
                    *e = e.min(k.wall_time_s * 1e3);
                }
            }
        }
        println!(
            "\n=== {} scale {scale}: model {:.2} ms vs cpu {:.2} ms ===",
            m.name(),
            total[0],
            total[1]
        );
        let mut rows: Vec<(String, f64, f64)> = best[0]
            .iter()
            .map(|(n, &mw)| (n.clone(), mw, best[1].get(n).copied().unwrap_or(0.0)))
            .collect();
        for (n, _, c) in best[1]
            .iter()
            .filter(|(n, _)| !best[0].contains_key(*n))
            .map(|(n, &c)| (n.clone(), 0.0f64, c))
        {
            rows.push((n, 0.0, c));
        }
        rows.sort_by(|a, b| (b.1.max(b.2)).total_cmp(&(a.1.max(a.2))));
        println!("{:<28} {:>9} {:>9} {:>8}", "kernel", "model ms", "cpu ms", "delta");
        for (n, mw, cw) in rows.iter().take(15) {
            println!("{n:<28} {mw:>9.3} {cw:>9.3} {:>7.1}%", (cw / mw - 1.0) * 100.0);
        }
    }
}
