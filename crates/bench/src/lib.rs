//! # lf-bench — reproduction harness
//!
//! One module per table/figure of the paper; the `repro` binary dispatches
//! to them. Each experiment prints a text table shaped like the paper's
//! and (where useful) writes CSV series under `results/`.
//!
//! Absolute numbers come from the simulated device and synthetic stand-in
//! matrices, so only the *shape* — orderings, ratios, crossovers — is
//! expected to match the paper; see EXPERIMENTS.md for the side-by-side.

#![warn(missing_docs)]

pub mod ablation;
pub mod backends;
pub mod batch;
pub mod convergence;
pub mod solvers;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod gate;
pub mod serve;
pub mod shard;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use lf_kernel::trace::Tracer;
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};
use std::path::PathBuf;

/// Experiment options shared by all harness commands.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Approximate vertex count of generated stand-ins.
    pub scale: usize,
    /// Run at the paper's full published sizes (slow!).
    pub full: bool,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
    /// Also emit machine-readable `BENCH_<exp>.json` files.
    pub json: bool,
    /// Run a checked-mode preflight (stage invariant audits on
    /// representative matrices) before any experiment.
    pub check: bool,
    /// Shared tracing handle: every device the harness creates via
    /// [`Opts::device`] reports into it, so `repro --trace` captures all
    /// experiments in one trace. Inactive (free) unless a sink is
    /// installed.
    pub tracer: Tracer,
    /// Execution backend for harness-created devices (`--backend`).
    /// The perf gate ignores this and always measures the model backend.
    pub backend: BackendKind,
    /// Peephole kernel fusion on harness-created devices; `--no-fuse`
    /// clears it (the gate likewise pins fusion on).
    pub fuse: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: 20_000,
            full: false,
            out_dir: PathBuf::from("results"),
            json: false,
            check: false,
            tracer: Tracer::new(),
            backend: BackendKind::Model,
            fuse: true,
        }
    }
}

impl Opts {
    /// A fresh simulated device on the selected backend (`--backend`),
    /// with the fusion pass set per `--no-fuse`, wired to the harness
    /// tracer. Experiments create one per matrix so stats don't bleed
    /// across measurements, while all of them share one trace timeline.
    pub fn device(&self) -> Device {
        let dev = Device::with_backend_tracer(
            DeviceConfig::default(),
            backend::make(self.backend),
            self.tracer.clone(),
        );
        dev.set_fusion(self.fuse);
        dev
    }

    /// Checked-mode preflight (`repro --check`): run the fully audited
    /// pipeline on a few representative collection matrices before any
    /// experiment, so a corrupted stage fails fast with a structured
    /// error instead of quietly skewing every measurement.
    pub fn preflight_check(&self) -> Result<(), lf_check::CheckError> {
        use lf_check::CheckOptions;
        use lf_core::FactorConfig;
        let n = self.scale.min(2_000);
        let cfg = FactorConfig::paper_default(2);
        for m in [
            lf_sparse::Collection::Thermal2,
            lf_sparse::Collection::Stocf1465,
            lf_sparse::Collection::G3Circuit,
        ] {
            let dev = self.device();
            let a = m.generate(n);
            let (_, _, _, report) = lf_check::tridiagonal_from_matrix_checked(
                &dev,
                &a,
                &cfg,
                &CheckOptions::default(),
            )?;
            eprintln!("[check] {} (N = {}): {report}", m.name(), a.nrows());
        }
        Ok(())
    }

    /// Target vertex count for a given collection matrix.
    pub fn target_n(&self, m: lf_sparse::Collection) -> usize {
        if self.full {
            m.paper_stats().n
        } else {
            self.scale
        }
    }

    /// Open a CSV writer under the output directory.
    pub fn csv(&self, name: &str) -> std::io::Result<std::io::BufWriter<std::fs::File>> {
        std::fs::create_dir_all(&self.out_dir)?;
        let f = std::fs::File::create(self.out_dir.join(name))?;
        Ok(std::io::BufWriter::new(f))
    }

    /// Provenance manifest injected into every `BENCH_*.json`: what built
    /// the numbers (git revision, backend, fusion state, scales) plus any
    /// experiment-specific `extra` fields, pre-rendered as `"key":value`
    /// pairs (empty for none).
    pub fn manifest_json(&self, extra: &str) -> String {
        let mut m = format!(
            "{{\"git\":\"{}\",\"backend\":\"{}\",\"fusion\":{},\"scale\":{},\"full\":{}",
            lf_kernel::trace::json::escape(&git_describe()),
            self.backend.as_str(),
            self.fuse,
            self.scale,
            self.full,
        );
        if !extra.is_empty() {
            m.push(',');
            m.push_str(extra);
        }
        m.push('}');
        m
    }

    /// Write a pre-rendered JSON document under the output directory
    /// (only when `--json` was requested). A `manifest` field recording
    /// the run's provenance ([`Opts::manifest_json`]) is spliced into the
    /// document's top-level object.
    pub fn write_json(&self, name: &str, body: &str) -> std::io::Result<()> {
        self.write_json_with(name, body, "")
    }

    /// [`Opts::write_json`] with experiment-specific manifest fields
    /// (`extra` as in [`Opts::manifest_json`]).
    pub fn write_json_with(&self, name: &str, body: &str, extra: &str) -> std::io::Result<()> {
        if !self.json {
            return Ok(());
        }
        let manifest = format!("\"manifest\":{}", self.manifest_json(extra));
        let body = match body.split_once('{') {
            // `{}`-style empty document: manifest is the only field.
            Some(("", rest)) if rest.trim_start().starts_with('}') => {
                format!("{{{manifest}{rest}")
            }
            Some(("", rest)) => format!("{{{manifest},{rest}"),
            _ => body.to_string(),
        };
        std::fs::create_dir_all(&self.out_dir)?;
        std::fs::write(self.out_dir.join(name), body)?;
        println!("  JSON written to {}", self.out_dir.join(name).display());
        Ok(())
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal fixed-width text-table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a float like the paper's two-decimal coverage columns.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn opts_scaling() {
        let o = Opts::default();
        assert_eq!(o.target_n(lf_sparse::Collection::Ecology1), 20_000);
        let full = Opts {
            full: true,
            ..Opts::default()
        };
        assert_eq!(full.target_n(lf_sparse::Collection::Ecology1), 1_000_000);
    }

    #[test]
    fn json_emission_is_gated_behind_flag() {
        let dir = std::env::temp_dir().join("lf_bench_json_gate_test");
        std::fs::remove_dir_all(&dir).ok();
        let off = Opts {
            out_dir: dir.clone(),
            ..Opts::default()
        };
        off.write_json("BENCH_t.json", "{}").unwrap();
        assert!(!dir.join("BENCH_t.json").exists(), "no file without --json");
        let on = Opts { json: true, ..off };
        on.write_json("BENCH_t.json", "{}").unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_t.json")).unwrap();
        // The provenance manifest is spliced into the (empty) document.
        assert!(text.starts_with("{\"manifest\":{\"git\":"), "got: {text}");
        assert!(text.contains("\"backend\":\"model\""));
        assert!(text.contains("\"fusion\":true"));
        assert!(text.contains("\"scale\":20000"));
        lf_kernel::trace::json::validate(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_splices_into_populated_documents() {
        let dir = std::env::temp_dir().join("lf_bench_manifest_splice_test");
        std::fs::remove_dir_all(&dir).ok();
        let o = Opts {
            json: true,
            out_dir: dir.clone(),
            ..Opts::default()
        };
        o.write_json_with("BENCH_x.json", "{\"rows\":[1,2]}\n", "\"reps\":3")
            .unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_x.json")).unwrap();
        assert!(text.starts_with("{\"manifest\":{\"git\":"), "got: {text}");
        assert!(text.contains("\"reps\":3"));
        assert!(text.contains("\"rows\":[1,2]"));
        lf_kernel::trace::json::validate(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
