//! `repro serve` — the deterministic closed-loop multi-tenant serving
//! experiment (the `lf-serve` subsystem; our extension beyond the paper).
//!
//! The experiment runs [`lf_serve::sim`]'s overload scenario: two polite
//! priority-1 tenants submit stencil graphs at steady model-time rates
//! for the whole run, and partway through a priority-0 flooder submits an
//! order of magnitude past the shed watermark. Job cost is the device's
//! deterministic model time, the clock is an `lf_batch::ModelClock`, and
//! the admission/worker code is byte-for-byte the code behind `lf serve`
//! — so `BENCH_serve.json` reproduces bit-identically on any machine.
//!
//! Two invariants are asserted on every run:
//!
//! * fairness: overload shedding lands only on the flooder — zero
//!   non-flooder jobs shed or refused;
//! * completeness: every submitted job ends in a terminal state
//!   (completed + shed = submitted, failed = 0).

use crate::{Opts, Table};
use lf_serve::sim::{self, SimConfig};

/// Run the closed-loop serving experiment.
pub fn run(opts: &Opts) {
    let cfg = SimConfig::overload_scenario();
    println!(
        "Multi-tenant serving — closed-loop overload experiment \
         ({} workers, batch {}, shed watermark {}):\n",
        cfg.workers, cfg.worker.batch_jobs, cfg.shed_watermark
    );
    let report = sim::run(&cfg);

    let mut t = Table::new(&[
        "TENANT",
        "prio",
        "submitted",
        "completed",
        "failed",
        "shed",
        "mean lat ms",
        "max lat ms",
    ]);
    for (name, o) in &report.tenants {
        let spec = cfg
            .tenants
            .iter()
            .find(|s| &s.name == name)
            .expect("reported tenant is configured");
        let mean_ms = if o.completed > 0 {
            o.latency_sum_ns as f64 / o.completed as f64 / 1e6
        } else {
            0.0
        };
        t.row(vec![
            name.clone(),
            spec.priority.to_string(),
            o.submitted.to_string(),
            o.completed.to_string(),
            o.failed.to_string(),
            o.shed.to_string(),
            format!("{mean_ms:.3}"),
            format!("{:.3}", o.latency_max_ns as f64 / 1e6),
        ]);
        assert_eq!(
            o.completed + o.shed,
            o.submitted,
            "{name}: every job must end terminal"
        );
        assert_eq!(o.failed, 0, "{name}: no job may fail in the scenario");
    }
    t.print();

    assert!(
        report.fairness_holds(),
        "overload shedding hit a non-flooding tenant: {:?}",
        report.tenants
    );
    let flood_shed: usize = report
        .flooders
        .iter()
        .map(|f| report.tenants[f].shed)
        .sum();
    assert!(flood_shed > 0, "the flooder never overloaded the service");

    println!(
        "\n  model time {:.1} ms, throughput {:.0} jobs/s; the flooder \
         (priority 0) lost {flood_shed} job(s) to shedding while every \
         non-flooder job completed — the fair-admission invariant \
         `repro serve` gates on.",
        report.model_ns as f64 / 1e6,
        report.throughput,
    );

    opts.write_json_with(
        "BENCH_serve.json",
        &format!("{}\n", report.to_json()),
        &format!(
            "\"workers\":{},\"batch_jobs\":{},\"shed_watermark\":{}",
            cfg.workers, cfg.worker.batch_jobs, cfg.shed_watermark
        ),
    )
    .expect("results dir");
}
