//! Design-choice ablations called out in DESIGN.md — measurements for
//! claims the paper makes in prose rather than in a table:
//!
//! 1. **fused vs two-pass scan** (Sec. 3.3: merging steps (1)+(2) "incurs
//!    more data movement and longer running times");
//! 2. **charge probability p** (p = 0.5 adopted from [16]);
//! 3. **SpMV engine choice** (row-parallel vs segmented SRCSR);
//! 4. **auto-m block preconditioner** (Sec. 6's deferred automatic
//!    parameter control);
//! 5. **top-n selection strategy** (Sec. 5.2.1: CUB segmented sort /
//!    reduce are "approximately one order of magnitude slower" than the
//!    fused Top-K SpMV);
//! 6. **step-efficient scan vs work-efficient list ranking** (Sec. 4.2:
//!    the scan does N·log N work where O(N) is possible — measured
//!    against a contraction-based list ranker);
//! 7. **frontier-compacted proposition** (our extension beyond the
//!    paper's dense kernels: stream-compact the non-full vertices and run
//!    the proposition on a row-subset view — bit-identical factors, less
//!    traffic once the frontier shrinks).

use crate::{f2, Opts, Table};
use lf_core::alternatives::{top_n_fused, top_n_repeated_reduce, top_n_segmented_sort};
use lf_core::merged::break_cycles_and_identify_paths;
use lf_core::parallel::proposition_kernel_stats;
use lf_core::ranking::identify_paths_workefficient;
use lf_core::prelude::*;
use lf_solver::precond::Preconditioner;
use lf_solver::AlgTriBlockPrecond;
use lf_sparse::{Collection, SpmvEngine};
use std::io::Write;

/// Run all ablations.
pub fn run(opts: &Opts) {
    fused_vs_two_pass(opts);
    println!();
    charge_probability(opts);
    println!();
    engine_choice(opts);
    println!();
    auto_block_m(opts);
    println!();
    topn_strategies(opts);
    println!();
    scan_vs_ranking(opts);
    println!();
    frontier_mode(opts);
}

fn frontier_mode(opts: &Opts) {
    println!(
        "Ablation 7 — dense vs frontier-compacted proposition, n = 2 \
         (our extension; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "dense model ms",
        "frnt model ms",
        "dense MB",
        "frnt MB",
        "warm prop rd",
        "identical factor",
    ]);
    let mut csv = opts.csv("ablation_frontier.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,engine,variant,iterations,model_ms,bytes,warm_prop_read_bytes"
    )
    .unwrap();
    for m in [Collection::Aniso1, Collection::Ecology1, Collection::Stocf1465] {
        let dev = opts.device();
        let a = prepare_undirected(&m.generate(opts.target_n(m)));
        let mut cells: Option<Vec<String>> = None;
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            let base = FactorConfig::paper_default(2).with_engine(engine);
            let (dense_out, dense) = dev.scoped(|| parallel_factor(&dev, &a, &base));
            let (front_out, front) =
                dev.scoped(|| parallel_factor(&dev, &a, &base.with_frontier(true)));
            let same = dense_out.factor == front_out.factor
                && dense_out.iterations == front_out.iterations;
            assert!(same, "{}: frontier must match dense bit-for-bit", m.name());
            // single warm-state proposition: the savings isolated from the
            // dense early iterations both modes share
            let warm_dense = proposition_kernel_stats(&dev, &a, &base, 1);
            let warm_front =
                proposition_kernel_stats(&dev, &a, &base.with_frontier(true), 1);
            for (variant, out, s, w) in [
                ("dense", &dense_out, &dense, &warm_dense),
                ("frontier", &front_out, &front, &warm_front),
            ] {
                writeln!(
                    csv,
                    "{},{engine:?},{variant},{},{:.4},{},{}",
                    m.name(),
                    out.iterations,
                    s.model_time_s * 1e3,
                    s.traffic.total(),
                    w.traffic.read
                )
                .unwrap();
            }
            if engine == SpmvEngine::RowParallel {
                cells = Some(vec![
                    m.name().to_string(),
                    format!("{:.3}", dense.model_time_s * 1e3),
                    format!("{:.3}", front.model_time_s * 1e3),
                    format!("{:.2}", dense.traffic.total() as f64 / 1e6),
                    format!("{:.2}", front.traffic.total() as f64 / 1e6),
                    format!(
                        "{:.0}%",
                        warm_front.traffic.read as f64 / warm_dense.traffic.read as f64
                            * 100.0
                    ),
                    same.to_string(),
                ]);
            }
        }
        t.row(cells.expect("row-parallel engine ran"));
    }
    t.print();
    println!(
        "\n  'warm prop rd' = bytes read by one frontier proposition on warm \
         state relative to dense — far below 100% when the factor is \
         near-maximal, above it when most vertices stay non-full (the \
         gather indices and scatter then cost more than the skipped rows \
         save). Frontier mode also adds three launches per iteration \
         (compact, row view, scatter), so at small scale launch overhead \
         can outweigh the byte savings; the byte columns are what \
         transfers to a real GPU."
    );
}

fn scan_vs_ranking(opts: &Opts) {
    println!(
        "Ablation 6 — step-efficient scan (N·log N work, log N launches) vs \
         work-efficient list ranking (O(N) work, irregular; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "scan launches",
        "rank launches",
        "scan MB",
        "rank MB",
        "scan model ms",
        "rank model ms",
    ]);
    for m in [Collection::Aniso1, Collection::Stocf1465, Collection::Thermal2] {
        let dev = opts.device();
        let a = prepare_undirected(&m.generate(opts.target_n(m)));
        let mut factor = parallel_factor(&dev, &a, &FactorConfig::paper_default(2)).factor;
        break_cycles(&dev, &mut factor);

        let (p_scan, s_scan) = dev.scoped(|| identify_paths(&dev, &factor).expect("acyclic"));
        let (p_rank, s_rank) =
            dev.scoped(|| identify_paths_workefficient(&dev, &factor).expect("acyclic"));
        assert_eq!(p_scan, p_rank, "{}: ranking disagrees with scan", m.name());
        t.row(vec![
            m.name().to_string(),
            s_scan.launches.to_string(),
            s_rank.launches.to_string(),
            format!("{:.2}", s_scan.traffic.total() as f64 / 1e6),
            format!("{:.2}", s_rank.traffic.total() as f64 / 1e6),
            format!("{:.3}", s_scan.model_time_s * 1e3),
            format!("{:.3}", s_rank.model_time_s * 1e3),
        ]);
    }
    t.print();
    println!(
        "\n  the ranker moves ~8x fewer bytes (O(N) work) but pays ~6x the \
         launches with data-dependent sizes, and the launch overhead makes \
         it slower end to end — the regular butterfly is why the paper \
         prefers the step-efficient scan on a GPU."
    );
}

fn topn_strategies(opts: &Opts) {
    println!(
        "Ablation 5 — per-row top-n selection strategy, n = 2 \
         (paper Sec. 5.2.1; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "fused model ms",
        "seg-sort model ms",
        "rep-reduce model ms",
        "sort/fused",
        "reduce/fused",
    ]);
    for m in [Collection::Thermal2, Collection::AfShell8, Collection::Curlcurl3] {
        let dev = opts.device();
        let a = prepare_undirected(&m.generate(opts.target_n(m)));
        let (r_fused, s_fused) = dev.scoped(|| top_n_fused::<f64, 2>(&dev, &a));
        let (r_sort, s_sort) = dev.scoped(|| top_n_segmented_sort::<f64, 2>(&dev, &a));
        let (r_red, s_red) = dev.scoped(|| top_n_repeated_reduce::<f64, 2>(&dev, &a));
        assert_eq!(r_fused, r_sort, "{}: sort strategy differs", m.name());
        assert_eq!(r_fused, r_red, "{}: reduce strategy differs", m.name());
        t.row(vec![
            m.name().to_string(),
            format!("{:.3}", s_fused.model_time_s * 1e3),
            format!("{:.3}", s_sort.model_time_s * 1e3),
            format!("{:.3}", s_red.model_time_s * 1e3),
            format!("{:.1}x", s_sort.model_time_s / s_fused.model_time_s),
            format!("{:.1}x", s_red.model_time_s / s_fused.model_time_s),
        ]);
    }
    t.print();
    println!(
        "\n  the paper rejects the CUB-style strategies as ~10x slower; the \
         traffic model shows the sort-based one paying multiple radix \
         passes over all nonzeros and the reduce-based one paying n full \
         matrix sweeps."
    );
}

fn fused_vs_two_pass(opts: &Opts) {
    println!(
        "Ablation 1 — fused single-scan vs two specialized scans \
         (paper Sec. 3.3; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "two launches",
        "fused launches",
        "two MB",
        "fused MB",
        "bytes ratio",
        "two model ms",
        "fused model ms",
    ]);
    let mut csv = opts.csv("ablation_fused.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,variant,launches,bytes,model_ms,wall_ms"
    )
    .unwrap();
    for m in [
        Collection::Aniso2,
        Collection::Atmosmodm,
        Collection::Stocf1465,
        Collection::Thermal2,
    ] {
        let dev = opts.device();
        let a = prepare_undirected(&m.generate(opts.target_n(m)));
        let factor = parallel_factor(&dev, &a, &FactorConfig::paper_default(2)).factor;

        let mut f2pass = factor.clone();
        let (paths_two, two) = dev.scoped(|| {
            break_cycles(&dev, &mut f2pass);
            identify_paths(&dev, &f2pass).expect("acyclic")
        });
        let mut ffused = factor.clone();
        let ((_, paths_fused), fused) =
            dev.scoped(|| break_cycles_and_identify_paths(&dev, &mut ffused));
        assert_eq!(paths_two, paths_fused, "{}: variants disagree", m.name());
        assert_eq!(f2pass, ffused);

        for (name, s) in [("two_pass", &two), ("fused", &fused)] {
            writeln!(
                csv,
                "{},{},{},{},{:.4},{:.4}",
                m.name(),
                name,
                s.launches,
                s.traffic.total(),
                s.model_time_s * 1e3,
                s.wall_time_s * 1e3
            )
            .unwrap();
        }
        t.row(vec![
            m.name().to_string(),
            two.launches.to_string(),
            fused.launches.to_string(),
            format!("{:.2}", two.traffic.total() as f64 / 1e6),
            format!("{:.2}", fused.traffic.total() as f64 / 1e6),
            format!("{:.2}x", fused.traffic.total() as f64 / two.traffic.total() as f64),
            format!("{:.3}", two.model_time_s * 1e3),
            format!("{:.3}", fused.model_time_s * 1e3),
        ]);
    }
    t.print();
    println!(
        "\n  fused halves the launches but moves more bytes — the paper's \
         stated reason for keeping the scans separate. Whether it wins \
         depends on N (launch overhead) vs bandwidth; at paper scale \
         bandwidth dominates and two-pass is faster, as the paper found."
    );
}

fn charge_probability(opts: &Opts) {
    println!(
        "Ablation 2 — positive-charge probability p (paper uses 0.5 \
         from [16]; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&["MATRIX", "p=0.1", "p=0.3", "p=0.5", "p=0.7", "p=0.9"]);
    let mut csv = opts.csv("ablation_p.csv").expect("results dir");
    writeln!(csv, "matrix,p,c_pi_5").unwrap();
    for m in [Collection::Ecology1, Collection::Atmosmodd, Collection::Transport] {
        let dev = opts.device();
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        let mut cells = vec![m.name().to_string()];
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cfg = FactorConfig {
                p,
                ..FactorConfig::paper_default(2)
            };
            let out = parallel_factor(&dev, &ap, &cfg);
            let c = weight_coverage(&out.factor, &a);
            writeln!(csv, "{},{p},{c:.4}", m.name()).unwrap();
            cells.push(f2(c));
        }
        t.row(cells);
    }
    t.print();
    println!("\n  coverage is flat near p = 0.5 and degrades toward the extremes.");
}

fn engine_choice(opts: &Opts) {
    println!(
        "Ablation 3 — proposition engine: row-parallel vs SRCSR \
         (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "row model ms",
        "srcsr model ms",
        "identical factor",
    ]);
    for m in [Collection::Ecology1, Collection::MlGeer, Collection::Stocf1465] {
        let dev = opts.device();
        let a = prepare_undirected(&m.generate(opts.target_n(m)));
        let (row_out, srow) = dev.scoped(|| {
            parallel_factor(
                &dev,
                &a,
                &FactorConfig::paper_default(2).with_engine(SpmvEngine::RowParallel),
            )
        });
        let (srcsr_out, ssrc) = dev.scoped(|| {
            parallel_factor(
                &dev,
                &a,
                &FactorConfig::paper_default(2).with_engine(SpmvEngine::SrCsr),
            )
        });
        let same = row_out.factor == srcsr_out.factor;
        assert!(same, "{}: engines must agree bit-for-bit", m.name());
        t.row(vec![
            m.name().to_string(),
            format!("{:.3}", srow.model_time_s * 1e3),
            format!("{:.3}", ssrc.model_time_s * 1e3),
            same.to_string(),
        ]);
    }
    t.print();
}

fn auto_block_m(opts: &Opts) {
    println!(
        "Ablation 4 — automatic m selection for AlgTriBlockPrecond \
         (the paper's deferred future work; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&["MATRIX", "cov m=1", "cov m=5", "auto picks", "auto cov"]);
    for m in [
        Collection::Aniso1,
        Collection::Atmosmodm,
        Collection::Ecology1,
        Collection::AfShell8,
        Collection::Transport,
    ] {
        let dev = opts.device();
        let a = m.generate(opts.target_n(m));
        let base = FactorConfig::paper_default(2);
        let c1 = Preconditioner::<f64>::coverage(&AlgTriBlockPrecond::new(
            &dev,
            &a,
            &FactorConfig { m: 1, ..base },
        ))
        .unwrap_or(0.0);
        let c5 = Preconditioner::<f64>::coverage(&AlgTriBlockPrecond::new(
            &dev,
            &a,
            &FactorConfig { m: 5, ..base },
        ))
        .unwrap_or(0.0);
        let (auto, picked) = AlgTriBlockPrecond::new_auto(&dev, &a, &base, &[1, 5]);
        let ca = Preconditioner::<f64>::coverage(&auto).unwrap_or(0.0);
        assert!(ca + 1e-12 >= c1.max(c5), "{}: auto must win", m.name());
        t.row(vec![
            m.name().to_string(),
            f2(c1),
            f2(c5),
            format!("m={picked}"),
            f2(ca),
        ]);
    }
    t.print();
    println!(
        "\n  auto-m reproduces Table 5's per-matrix winners: m = 1 for the \
         distinct-weight matrices, m = 5 where ties demand charging."
    );
}
