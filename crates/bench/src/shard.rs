//! Sharded extraction — whole-graph pipeline vs K-way boundary-reconciled
//! shards (the `lf-shard` subsystem; our extension beyond the paper).
//!
//! For each stencil stand-in the experiment extracts the linear forest
//! once on the whole graph, then again through [`extract_sharded`] at
//! K ∈ {1, 2, 4, 8}. The sharded side's cost model is the *critical
//! path*: the slowest block pipeline (blocks run concurrently on
//! independent devices) plus the serial boundary-reconciliation rounds.
//! Three invariants are asserted on every row, mirroring the lf-check
//! differential suite:
//!
//! * K = 1 is bit-identical to the whole-graph run (same fingerprint);
//! * reconciliation converges and the factor validates;
//! * the c_π quality ratio holds [`MIN_SHARD_QUALITY_RATIO`].

use crate::{f2, Opts, Table};
use lf_core::prelude::*;
use lf_shard::check::MIN_SHARD_QUALITY_RATIO;
use lf_shard::{extract_sharded, ShardConfig};
use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};
use lf_sparse::Csr;
use std::io::Write;

/// Shard counts measured (the acceptance bar is critical-path < whole
/// at K ≥ 4).
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Run the sharded-vs-whole extraction experiment.
pub fn run(opts: &Opts) {
    let nx = (opts.scale as f64).sqrt().round().max(8.0) as usize;
    println!(
        "Sharded extraction — whole-graph pipeline vs K-way boundary \
         reconciliation ({nx}x{nx} stencils, quality bound {MIN_SHARD_QUALITY_RATIO}):\n"
    );
    let suite: [(&str, Csr<f64>); 3] = [
        ("aniso1", grid2d(nx, nx, &ANISO1)),
        ("aniso2", grid2d(nx, nx, &ANISO2)),
        ("five_point", grid2d(nx, nx, &FIVE_POINT)),
    ];
    let mut t = Table::new(&[
        "GRAPH",
        "K",
        "whole model ms",
        "shard crit ms",
        "speedup",
        "cut edges",
        "rounds",
        "c ratio",
    ]);
    let mut csv = opts.csv("shard.csv").expect("results dir");
    writeln!(
        csv,
        "graph,n,nnz,shards,whole_model_ms,critical_path_ms,max_block_ms,\
         global_ms,cut_edges,rounds,c_whole,c_sharded,quality_ratio,bit_identical"
    )
    .unwrap();
    let mut json_rows: Vec<String> = Vec::new();
    let cfg = FactorConfig::paper_default(2);

    for (name, a) in &suite {
        let ap = prepare_undirected(a);
        let dev = opts.device();
        let ((whole, _), whole_stats) = dev.scoped(|| {
            extract_linear_forest(&dev, &ap, &cfg).expect("whole-graph extraction")
        });
        let c_whole = weight_coverage(&whole.factor, &ap);
        let whole_ms = whole_stats.model_time_s * 1e3;

        for &k in &SHARDS {
            let dev = opts.device();
            let (sharded, rep) =
                extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(k)).expect("sharded extraction");
            sharded.factor.validate(&ap).expect("sharded factor validates");
            assert!(rep.reconcile.converged, "{name} K={k}: reconciliation diverged");
            let bit_identical = sharded.fingerprint() == whole.fingerprint();
            if k == 1 {
                assert!(bit_identical, "{name}: K=1 must be bit-identical to whole");
            }
            let c_sharded = weight_coverage(&sharded.factor, &ap);
            let ratio = if c_whole == 0.0 { 1.0 } else { c_sharded / c_whole };
            assert!(
                ratio >= MIN_SHARD_QUALITY_RATIO,
                "{name} K={k}: quality ratio {ratio:.4} below bound"
            );
            let crit_ms = rep.critical_path_model_s() * 1e3;
            let max_block_ms =
                rep.block_model_s.iter().copied().fold(0.0, f64::max) * 1e3;
            let global_ms = rep.global_model_s * 1e3;
            t.row(vec![
                name.to_string(),
                k.to_string(),
                format!("{whole_ms:.3}"),
                format!("{crit_ms:.3}"),
                format!("{}x", f2(whole_ms / crit_ms)),
                rep.cut_edges.to_string(),
                rep.reconcile.rounds.to_string(),
                format!("{ratio:.4}"),
            ]);
            writeln!(
                csv,
                "{name},{},{},{k},{whole_ms:.4},{crit_ms:.4},{max_block_ms:.4},\
                 {global_ms:.4},{},{},{c_whole:.6},{c_sharded:.6},{ratio:.6},{bit_identical}",
                ap.nrows(),
                ap.nnz(),
                rep.cut_edges,
                rep.reconcile.rounds,
            )
            .unwrap();
            json_rows.push(format!(
                concat!(
                    "{{\"graph\":\"{}\",\"n\":{},\"nnz\":{},\"shards\":{},",
                    "\"whole_model_ms\":{:.4},\"critical_path_ms\":{:.4},",
                    "\"max_block_ms\":{:.4},\"global_ms\":{:.4},",
                    "\"speedup\":{:.4},\"cut_edges\":{},\"rounds\":{},",
                    "\"c_whole\":{:.6},\"c_sharded\":{:.6},",
                    "\"quality_ratio\":{:.6},\"bit_identical\":{}}}"
                ),
                name,
                ap.nrows(),
                ap.nnz(),
                k,
                whole_ms,
                crit_ms,
                max_block_ms,
                global_ms,
                whole_ms / crit_ms,
                rep.cut_edges,
                rep.reconcile.rounds,
                c_whole,
                c_sharded,
                ratio,
                bit_identical,
            ));
            // the acceptance criterion: once blocks run concurrently the
            // critical path must beat the whole-graph pipeline
            if k >= 4 {
                assert!(
                    crit_ms < whole_ms,
                    "{name} K={k}: critical path {crit_ms:.3} ms not below \
                     whole-graph {whole_ms:.3} ms"
                );
            }
        }
    }
    t.print();
    println!(
        "\n  shard crit ms = max per-block model time + serial boundary \
         reconciliation (blocks are independent pipelines). K = 1 rows are \
         asserted bit-identical to the whole-graph run; every row's c_π \
         ratio is asserted against the {MIN_SHARD_QUALITY_RATIO} bound, \
         and K ≥ 4 critical paths are asserted below the whole-graph time."
    );
    opts.write_json_with(
        "BENCH_shard.json",
        &format!("{{\"rows\":[{}]}}\n", json_rows.join(",")),
        &format!("\"quality_bound\":{MIN_SHARD_QUALITY_RATIO}"),
    )
    .expect("results dir");
}
