//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p lf-bench --bin repro -- [options] <exp>...
//!
//!   <exp>       table2 table3 table4 table5 fig1 fig2 fig3 fig4 fig5 fig6
//!               ablation solvers convergence batch backends gate tables
//!               figures all
//!   --scale N   stand-in matrix size (default 20000)
//!   --full      paper-published sizes (hours of runtime!)
//!   --out DIR   CSV output directory (default results/)
//!   --json      also emit machine-readable BENCH_<exp>.json files
//!   --backend B execution backend: model (default) or cpu; the perf
//!               gate always measures the model backend regardless
//!   --no-fuse   disable the peephole kernel-fusion pass (gate unaffected)
//!   --trace F   record all experiments into Chrome trace F
//!               (+ per-phase rollup F with .summary.json suffix)
//!   --metrics F enable the lf-metrics registry and write its final
//!               snapshot to F (Prometheus text; JSON if F ends in .json)
//!   --check     audited preflight: run the checked pipeline on
//!               representative matrices before any experiment
//!   --flight-dir D  arm the always-on lf-flight recorder; a failed
//!               preflight (or a panic) dumps a postmortem bundle into D
//!
//! gate options (see lf_bench::gate):
//!   --compare F    compare against baseline F instead of writing one
//!   --tolerance T  relative regression tolerance (default 0.05)
//!   --inject S     synthetic model-time slowdown (CI negative test)
//! ```

use lf_bench::Opts;
use lf_kernel::trace::{chrome_trace, summary, RecordingSink};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale N] [--full] [--out DIR] [--json] [--trace F] [--metrics F] \
         [--check] [--backend model|cpu] [--no-fuse] [--flight-dir D] \
         [--compare F] [--tolerance T] [--inject S] \
         <table2|table3|table4|table5|fig1..fig6|ablation|solvers|convergence|batch|shard|serve|backends|gate|tables|figures|all>..."
    );
    std::process::exit(2);
}

/// The effective configuration a bench-harness bundle records: backend and
/// fusion from the CLI, factor parameters at the preflight's paper
/// defaults. Bench bundles carry no embedded input, so they document the
/// failure rather than support replay.
fn bench_config(opts: &Opts) -> lf_flight::EffectiveConfig {
    lf_flight::EffectiveConfig {
        pipeline: "bench".to_string(),
        backend: opts.backend.as_str().to_string(),
        fusion: opts.fuse,
        ..lf_flight::EffectiveConfig::default()
    }
}

fn main() {
    let mut opts = Opts::default();
    let mut gate = lf_bench::gate::GateOpts::default();
    let mut cmds: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut flight_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--full" => opts.full = true,
            "--json" => opts.json = true,
            "--check" => opts.check = true,
            "--backend" => {
                opts.backend = args
                    .next()
                    .and_then(|s| lf_kernel::BackendKind::parse(&s))
                    .unwrap_or_else(|| usage());
            }
            "--no-fuse" => opts.fuse = false,
            "--out" => {
                opts.out_dir = args.next().map(Into::into).unwrap_or_else(|| usage());
            }
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--flight-dir" => {
                flight_dir = Some(args.next().map(Into::into).unwrap_or_else(|| usage()));
            }
            "--compare" => {
                gate.compare = Some(args.next().map(Into::into).unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                gate.tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--inject" => {
                gate.inject = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            c if !c.starts_with('-') => cmds.push(c.to_string()),
            _ => usage(),
        }
    }
    if metrics_path.is_some() {
        lf_metrics::enable();
    }
    // Arm the flight recorder: events stream into the global ring and any
    // failure below dumps a postmortem bundle into the directory.
    if let Some(dir) = &flight_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create flight dir {}: {e}", dir.display());
            std::process::exit(1);
        });
        lf_flight::enable();
        lf_flight::set_bundle_dir(dir.clone());
        lf_flight::install_panic_hook(bench_config(&opts));
    }
    if cmds.is_empty() {
        usage();
    }
    let trace_sink = trace_path.as_deref().map(|_| {
        let sink = Arc::new(RecordingSink::new());
        opts.tracer.install(sink.clone());
        sink
    });
    let expand = |c: &str| -> Vec<&'static str> {
        match c {
            "table2" => vec!["table2"],
            "table3" => vec!["table3"],
            "table4" => vec!["table4"],
            "table5" => vec!["table5"],
            "fig1" => vec!["fig1"],
            "fig2" => vec!["fig2"],
            "fig3" => vec!["fig3"],
            "fig4" => vec!["fig4"],
            "fig5" => vec!["fig5"],
            "fig6" => vec!["fig6"],
            "ablation" => vec!["ablation"],
            "backends" => vec!["backends"],
            "batch" => vec!["batch"],
            "gate" => vec!["gate"],
            "serve" => vec!["serve"],
            "shard" => vec!["shard"],
            "solvers" => vec!["solvers"],
            "convergence" => vec!["convergence"],
            "tables" => vec!["table2", "table3", "table4", "table5"],
            "figures" => vec!["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"],
            "all" => vec![
                "table2", "table3", "table4", "table5", "fig1", "fig2", "fig3", "fig4",
                "fig5", "fig6", "ablation", "solvers", "convergence", "batch", "backends",
                "shard", "serve",
            ],
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    };
    let list: Vec<&str> = cmds.iter().flat_map(|c| expand(c)).collect();
    if opts.check {
        if let Err(e) = opts.preflight_check() {
            if lf_flight::bundle_dir().is_some() {
                let msg = e.to_string();
                let mut b = lf_flight::Bundle::capture("check", &msg, bench_config(&opts));
                b.outcome = Some(lf_flight::Outcome::Error {
                    kind: "check".to_string(),
                    message: msg,
                });
                match lf_flight::bundle_dir().map(|d| b.write_to(&d)) {
                    Some(Ok(bdir)) => {
                        eprintln!("postmortem bundle written to {}", bdir.display())
                    }
                    Some(Err(we)) => eprintln!("warning: failed to write postmortem bundle: {we}"),
                    None => {}
                }
            }
            eprintln!("error: checked-mode preflight failed:\n{e}");
            std::process::exit(1);
        }
    }
    let mut gate_failed = false;
    for (i, exp) in list.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        let t0 = std::time::Instant::now();
        let _exp_span = opts.tracer.span(exp);
        match *exp {
            "table2" => lf_bench::table2::run(&opts),
            "table3" => lf_bench::table3::run(&opts),
            "table4" => lf_bench::table4::run(&opts),
            "table5" => lf_bench::table5::run(&opts),
            "fig1" => lf_bench::fig1::run(&opts),
            "fig2" => lf_bench::fig2::run(&opts),
            "fig3" => lf_bench::fig3::run(&opts),
            "fig4" => lf_bench::fig4::run(&opts),
            "fig5" => lf_bench::fig5::run(&opts),
            "fig6" => lf_bench::fig6::run(&opts),
            "ablation" => lf_bench::ablation::run(&opts),
            "backends" => lf_bench::backends::run(&opts),
            "batch" => lf_bench::batch::run(&opts),
            "gate" => gate_failed |= !lf_bench::gate::run(&opts, &gate),
            "serve" => lf_bench::serve::run(&opts),
            "shard" => lf_bench::shard::run(&opts),
            "solvers" => lf_bench::solvers::run(&opts),
            "convergence" => lf_bench::convergence::run(&opts),
            _ => unreachable!(),
        }
        eprintln!("[{exp} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }

    if let (Some(path), Some(sink)) = (trace_path.as_deref(), trace_sink.as_deref()) {
        let data = sink.snapshot();
        std::fs::write(path, chrome_trace(&data)).unwrap_or_else(|e| {
            eprintln!("failed to write trace {path}: {e}");
            std::process::exit(1);
        });
        let spath = match path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.summary.json"),
            None => format!("{path}.summary.json"),
        };
        let dropped = sink.dropped();
        if dropped > 0 {
            eprintln!(
                "warning: trace truncated — {dropped} event(s) dropped by the \
                 recording sink (raise its capacity or shorten the run)"
            );
        }
        std::fs::write(&spath, summary(&data).with_dropped(dropped).to_json()).unwrap_or_else(|e| {
            eprintln!("failed to write trace summary {spath}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "trace written to {path} (summary: {spath}); open the trace in \
             https://ui.perfetto.dev"
        );
    }

    if let Some(path) = metrics_path.as_deref() {
        let snap = lf_metrics::global().snapshot();
        let body = if path.ends_with(".json") {
            snap.to_json()
        } else {
            snap.to_prometheus()
        };
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("failed to write metrics {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }

    if gate_failed {
        std::process::exit(1);
    }
}
