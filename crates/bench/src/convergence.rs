//! Extension experiment: weight-coverage **trajectories** c_π(k) over the
//! proposition iterations — the continuum between Table 4's c_π(5) and
//! c_π(M_max) snapshots. Makes the uncharged stall (ECOLOGY's wavefront)
//! and the charged fast ramp directly visible.

use crate::{Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::Collection;
use std::io::Write;

/// Iteration checkpoints (runs are deterministic, so re-running with a
/// larger cap reproduces every prefix exactly).
const CHECKPOINTS: [usize; 8] = [1, 2, 3, 5, 10, 20, 50, 150];

/// Run the coverage-trajectory experiment.
pub fn run(opts: &Opts) {
    println!(
        "Extension — coverage trajectories c_π(k) for configs (1) and (2) \
         (scale {}):\n",
        opts.scale
    );
    let mut headers = vec!["MATRIX".to_string(), "cfg".to_string()];
    headers.extend(CHECKPOINTS.iter().map(|k| format!("k={k}")));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hrefs);
    let mut csv = opts.csv("convergence.csv").expect("results dir");
    writeln!(csv, "matrix,config,k,c_pi").unwrap();

    for m in [
        Collection::Ecology1,
        Collection::Atmosmodd,
        Collection::Aniso1,
        Collection::Transport,
    ] {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        for (cfg_id, base) in [(1usize, FactorConfig::config1(2)), (2, FactorConfig::config2(2))] {
            let mut cells = vec![m.name().to_string(), format!("({cfg_id})")];
            for &k in &CHECKPOINTS {
                // deterministic prefix: run the algorithm capped at k
                let out = parallel_factor(&dev, &ap, &base.with_max_iters(k));
                let c = weight_coverage(&out.factor, &a);
                writeln!(csv, "{},{cfg_id},{k},{c:.4}", m.name()).unwrap();
                cells.push(format!("{c:.2}"));
            }
            t.row(cells);
        }
    }
    t.print();
    println!(
        "\n  config (1) = never charged, config (2) = paper default. On the \
         tied-weight matrices config (1) crawls linearly (a confirmation \
         wavefront from the boundary) while config (2) jumps to greedy \
         coverage within ~3 iterations; on ANISO both are instant. CSV in {}",
        opts.out_dir.join("convergence.csv").display()
    );
}
