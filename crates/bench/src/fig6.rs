//! Figure 6: time breakdown of the complete tridiagonal-preconditioner
//! setup — [0,2]-factor, both bidirectional scans, permutation, and
//! coefficient extraction.

use crate::{Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::Collection;
use std::io::Write;

/// Regenerate Fig. 6 (phase percentages + absolute totals).
pub fn run(opts: &Opts) {
    println!(
        "Figure 6 — setup time breakdown (Algorithm 2 with M = 5, m = 5, \
         k_m = 0, n = 2; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "factor %",
        "cycles %",
        "paths %",
        "perm %",
        "extract %",
        "total model ms",
        "total wall ms",
    ]);
    let mut csv = opts.csv("fig6.csv").expect("results dir");
    writeln!(csv, "matrix,phase,model_ms,wall_ms,launches").unwrap();
    for m in Collection::ALL {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m));
        let cfg = FactorConfig::paper_default(2);
        let (_, _, timings) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
        let total = timings.total_model_s().max(1e-30);
        let mut cells = vec![m.name().to_string()];
        for (phase, s) in timings.phases() {
            cells.push(format!("{:.1}", 100.0 * s.model_time_s / total));
            writeln!(
                csv,
                "{},{},{:.4},{:.4},{}",
                m.name(),
                phase,
                s.model_time_s * 1e3,
                s.wall_time_s * 1e3,
                s.launches
            )
            .unwrap();
        }
        cells.push(format!("{:.3}", total * 1e3));
        cells.push(format!("{:.3}", timings.total_wall_s() * 1e3));
        t.row(cells);
    }
    t.print();
    println!(
        "\n  paper's observation: factor + the two scans dominate, the \
         coefficient extraction needs ≤ 10 %; CSV in {}",
        opts.out_dir.join("fig6.csv").display()
    );
}
