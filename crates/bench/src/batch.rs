//! Batched extraction — fused block-diagonal service vs sequential solo
//! runs (the `lf-batch` subsystem; our extension beyond the paper).
//!
//! For each batch size K the experiment builds K distinct stencil graphs,
//! extracts them one at a time (a fresh pipeline per graph, content-salted
//! so the factors match the service's), then submits all K to the
//! [`ExtractionService`] and drains them as one fused run. Both sides are
//! measured on the same simulated device, so the comparison isolates what
//! fusion actually changes: K× fewer kernel launches at the price of
//! slightly deeper (`log₂ ΣN` vs `log₂ N`) path-identification scans.
//! A second submission round of the same graphs shows the content-hash
//! cache and workspace pool doing their job.

use crate::{f2, Opts, Table};
use lf_batch::{counters, reset_stats, BatchConfig, ExtractionService};
use lf_core::prelude::*;
use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};
use lf_sparse::Csr;
use std::io::Write;
use std::time::Instant;

/// Batch sizes measured (the acceptance bar is fused ≥ solo at K = 8).
const SIZES: [usize; 4] = [2, 4, 8, 16];

/// K stencil graphs of varied size and anisotropy, so the fused blocks
/// are genuinely heterogeneous (different N, nnz, and weight structure).
fn stencil_suite(k: usize, scale: usize) -> Vec<(String, Csr<f64>)> {
    (0..k)
        .map(|i| {
            let base = (scale / 8).max(256);
            // grow sizes across the suite so no two blocks align
            let n = base + i * base / 7;
            let nx = (n as f64).sqrt().round().max(4.0) as usize;
            let (name, g) = match i % 3 {
                0 => ("aniso1", grid2d(nx, nx, &ANISO1)),
                1 => ("aniso2", grid2d(nx, nx, &ANISO2)),
                _ => ("five_point", grid2d(nx, nx, &FIVE_POINT)),
            };
            (format!("{name}_{nx}x{nx}"), g)
        })
        .collect()
}

/// Run the fused-vs-solo batching experiment.
pub fn run(opts: &Opts) {
    println!(
        "Batched extraction — fused block-diagonal service vs sequential \
         solo runs (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "BATCH",
        "fused nnz",
        "solo model ms",
        "fused model ms",
        "speedup",
        "solo launches",
        "fused launches",
        "cache hits (rnd 2)",
    ]);
    let mut csv = opts.csv("batch_fused.csv").expect("results dir");
    writeln!(
        csv,
        "batch,fused_nnz,solo_model_ms,fused_model_ms,solo_launches,\
         fused_launches,solo_mnnz_per_s,fused_mnnz_per_s,cache_hits,pool_hits"
    )
    .unwrap();
    let mut json_rows: Vec<String> = Vec::new();

    for &k in &SIZES {
        // per-batch counters, not cumulative across sizes
        reset_stats();
        let graphs = stencil_suite(k, opts.scale);
        let cfg = FactorConfig::paper_default(2).with_frontier(true);

        // -- sequential solo baseline: one pipeline per graph, salted with
        // the content salt the service would derive, so the work is
        // bit-identical to the fused run's blocks.
        let prepared: Vec<Csr<f64>> = graphs.iter().map(|(_, g)| prepare_undirected(g)).collect();
        // the service hashes the *submitted* (raw) matrix, not the
        // prepared one — match it so the charge streams line up
        let raw: Vec<&Csr<f64>> = graphs.iter().map(|(_, g)| g).collect();
        let salts = lf_batch::FusedBatch::content_salts(&raw);
        let total_nnz: usize = prepared.iter().map(Csr::nnz).sum();
        let dev = opts.device();
        let (solo_forests, solo) = dev.scoped(|| {
            prepared
                .iter()
                .zip(&salts)
                .map(|(p, &salt)| {
                    extract_linear_forest(&dev, p, &cfg.with_charge_salt(salt))
                        .expect("solo extraction")
                        .0
                })
                .collect::<Vec<_>>()
        });

        // -- fused: submit everything, drain as one batch.
        let dev = opts.device();
        let mut svc = ExtractionService::new(BatchConfig {
            queue_capacity: 2 * k,
            max_batch_jobs: k,
            nnz_budget: usize::MAX,
            factor: cfg,
            ..BatchConfig::default()
        })
        .expect("path-factor config");
        let now = Instant::now();
        for (name, g) in &graphs {
            svc.submit(name.clone(), g.clone(), now).expect("queue sized for k");
        }
        let (outcomes, fused) = dev.scoped(|| svc.drain(&dev));

        // the fused results must be bit-identical to the solo ones
        // (factor_iterations aside — maximality is detected globally)
        assert_eq!(outcomes.len(), k);
        for (o, solo_f) in outcomes.iter().zip(&solo_forests) {
            let r = o.result.as_ref().expect("fused job succeeds");
            assert_eq!(r.forest.factor, solo_f.factor, "{}: factor differs", o.name);
            assert_eq!(r.forest.paths, solo_f.paths, "{}: paths differ", o.name);
            assert_eq!(r.forest.perm, solo_f.perm, "{}: permutation differs", o.name);
        }

        // -- round 2: same graphs again; preparation is served from the
        // content-hash cache and the batch reuses the pooled workspace.
        for (name, g) in &graphs {
            svc.submit(format!("{name}#2"), g.clone(), now)
                .expect("queue sized for k");
        }
        let (round2, _) = dev.scoped(|| svc.drain(&dev));
        assert!(round2.iter().all(|o| o.cache_hit), "round 2 must hit the cache");
        let c = counters();
        assert_eq!(c.batches_run, 2);
        assert!(c.pool_hits >= 1, "round 2 must reuse the pooled workspace");

        let solo_ms = solo.model_time_s * 1e3;
        let fused_ms = fused.model_time_s * 1e3;
        let solo_tp = total_nnz as f64 / solo.model_time_s / 1e6;
        let fused_tp = total_nnz as f64 / fused.model_time_s / 1e6;
        t.row(vec![
            k.to_string(),
            total_nnz.to_string(),
            format!("{solo_ms:.3}"),
            format!("{fused_ms:.3}"),
            format!("{}x", f2(solo_ms / fused_ms)),
            solo.launches.to_string(),
            fused.launches.to_string(),
            c.cache_hits.to_string(),
        ]);
        writeln!(
            csv,
            "{k},{total_nnz},{solo_ms:.4},{fused_ms:.4},{},{},{solo_tp:.3},\
             {fused_tp:.3},{},{}",
            solo.launches, fused.launches, c.cache_hits, c.pool_hits
        )
        .unwrap();
        json_rows.push(format!(
            concat!(
                "{{\"batch\":{},\"fused_nnz\":{},\"solo_model_ms\":{:.4},",
                "\"fused_model_ms\":{:.4},\"speedup\":{:.4},",
                "\"solo_launches\":{},\"fused_launches\":{},",
                "\"solo_mnnz_per_s\":{:.3},\"fused_mnnz_per_s\":{:.3},",
                "\"service\":{}}}"
            ),
            k,
            total_nnz,
            solo_ms,
            fused_ms,
            solo_ms / fused_ms,
            solo.launches,
            fused.launches,
            solo_tp,
            fused_tp,
            c.to_json()
        ));
    }
    t.print();
    println!(
        "\n  both sides run identical per-block kernels (asserted bit-equal \
         factors/paths/permutations); fusion trades K× fewer launches for \
         log₂(ΣN)-deep scans instead of log₂(N). Round 2 re-submits the \
         same graphs: all preparation comes from the content-hash cache \
         and the batch workspace comes from the pool."
    );
    opts.write_json_with(
        "BENCH_batch.json",
        &format!("{{\"rows\":[{}]}}\n", json_rows.join(",")),
        "\"rounds\":2",
    )
    .expect("results dir");
}
