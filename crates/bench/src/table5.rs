//! Table 5: [0,n]-factor coverage for n = 1..4 (parallel vs sequential),
//! the natural-order coverage `c_id`, and the weight coverage of the 2×2
//! block tridiagonal preconditioner for m ∈ {1, 5}.

use crate::{f2, Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_solver::precond::Preconditioner;
use lf_solver::AlgTriBlockPrecond;
use lf_sparse::Collection;
use std::io::Write;

/// Regenerate Table 5.
pub fn run(opts: &Opts) {
    println!(
        "Table 5 — [0,n]-factor coverage c_π(5) (PAR vs SEQ), c_id, and the \
         block-preconditioner coverage (scale {}):\n",
        opts.scale
    );
    let mut headers = vec!["MATRIX".to_string(), "c_id".to_string()];
    for n in 1..=4 {
        headers.push(format!("PAR n={n}"));
        headers.push(format!("SEQ n={n}"));
    }
    headers.push("blk m=1".into());
    headers.push("blk m=5".into());
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hrefs);

    let mut csv = opts.csv("table5.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,c_id,par_n1,seq_n1,par_n2,seq_n2,par_n3,seq_n3,par_n4,seq_n4,block_m1,block_m5"
    )
    .unwrap();

    for m in Collection::ALL {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        let cid = identity_coverage(&a);
        let mut cells = vec![m.name().to_string(), f2(cid)];
        let mut csv_cells = vec![format!("{:.4}", cid)];
        for n in 1..=4 {
            let par = parallel_factor(&dev, &ap, &FactorConfig::config2(n));
            let seq = greedy_factor(&ap, n);
            let cp = weight_coverage(&par.factor, &a);
            let cs = weight_coverage(&seq, &a);
            cells.push(f2(cp));
            cells.push(f2(cs));
            csv_cells.push(format!("{cp:.4}"));
            csv_cells.push(format!("{cs:.4}"));
        }
        for m_param in [1usize, 5] {
            let cfg = FactorConfig {
                m: m_param,
                ..FactorConfig::paper_default(2)
            };
            let blk = AlgTriBlockPrecond::new(&dev, &a, &cfg);
            let c = Preconditioner::<f64>::coverage(&blk).unwrap_or(0.0);
            cells.push(f2(c));
            csv_cells.push(format!("{c:.4}"));
        }
        writeln!(csv, "{},{}", m.name(), csv_cells.join(",")).unwrap();
        t.row(cells);
    }
    t.print();
    println!(
        "\n  PAR: Algorithm 2 with M = 5, m = 5, k_m = 0; SEQ: greedy \
         Algorithm 1 — CSV in {}",
        opts.out_dir.join("table5.csv").display()
    );
}
