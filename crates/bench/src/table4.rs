//! Table 4: [0,2]-factor weight coverage under the three charging
//! configurations — `c_π(5)`, `c_π(M_max)`, `M_max` — against the
//! sequential greedy Algorithm 1.

use crate::{f2, Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::Collection;
use std::io::Write;

/// Iteration cap standing in for "run to maximality" (the paper's largest
/// observed M_max is 1252 at full scale).
const MMAX_CAP: usize = 4000;

struct ConfigResult {
    c5: f64,
    cmax: f64,
    mmax: usize,
    maximal: bool,
}

fn run_config(dev: &Device, a: &lf_sparse::Csr<f64>, cfg: &FactorConfig) -> ConfigResult {
    let ap = prepare_undirected(a);
    let at5 = parallel_factor(dev, &ap, &cfg.with_max_iters(5));
    let c5 = weight_coverage(&at5.factor, a);
    let long = parallel_factor(dev, &ap, &cfg.with_max_iters(MMAX_CAP));
    ConfigResult {
        c5,
        cmax: weight_coverage(&long.factor, a),
        mmax: long.iterations,
        maximal: long.maximal,
    }
}

/// Regenerate Table 4.
pub fn run(opts: &Opts) {
    println!(
        "Table 4 — [0,2]-factor coverage, three charging configurations \
         (scale {}, M_max capped at {MMAX_CAP}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "c5(1)",
        "cM(1)",
        "Mmax(1)",
        "c5(2)",
        "cM(2)",
        "Mmax(2)",
        "c5(3)",
        "cM(3)",
        "Mmax(3)",
        "SEQ c",
    ]);
    let mut csv = opts.csv("table4.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,config,c_pi_5,c_pi_mmax,m_max,maximal,seq_c_pi"
    )
    .unwrap();
    for m in Collection::ALL {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m));
        let seq = greedy_factor(&prepare_undirected(&a), 2);
        let cs = weight_coverage(&seq, &a);
        let configs = [
            FactorConfig::config1(2),
            FactorConfig::config2(2),
            FactorConfig::config3(2),
        ];
        let res: Vec<ConfigResult> = configs.iter().map(|c| run_config(&dev, &a, c)).collect();
        for (i, r) in res.iter().enumerate() {
            writeln!(
                csv,
                "{},{},{:.4},{:.4},{},{},{:.4}",
                m.name(),
                i + 1,
                r.c5,
                r.cmax,
                r.mmax,
                r.maximal,
                cs
            )
            .unwrap();
        }
        let mm = |r: &ConfigResult| {
            if r.maximal {
                r.mmax.to_string()
            } else {
                format!(">{}", r.mmax)
            }
        };
        t.row(vec![
            m.name().to_string(),
            f2(res[0].c5),
            f2(res[0].cmax),
            mm(&res[0]),
            f2(res[1].c5),
            f2(res[1].cmax),
            mm(&res[1]),
            f2(res[2].c5),
            f2(res[2].cmax),
            mm(&res[2]),
            f2(cs),
        ]);
    }
    t.print();
    println!(
        "\n  configs: (1) no charging ∀k  (2) no charging on k=0,5,10,…  \
         (3) no charging on k=1,6,11,…  — CSV in {}",
        opts.out_dir.join("table4.csv").display()
    );
}
