//! Table 3: the test-matrix collection — paper statistics vs the
//! generated synthetic stand-ins.

use crate::{Opts, Table};
use lf_sparse::Collection;

/// Print generated-vs-paper statistics for every collection matrix.
pub fn run(opts: &Opts) {
    println!("Table 3 — test matrices (stand-ins at scale {}):\n", opts.scale);
    let mut t = Table::new(&[
        "MATRIX",
        "sym",
        "N(paper)",
        "nnz(paper)",
        "deg(paper)",
        "N(gen)",
        "nnz(gen)",
        "deg(gen)",
    ]);
    for m in Collection::ALL {
        let p = m.paper_stats();
        let a = m.generate(opts.target_n(m));
        t.row(vec![
            p.name.to_string(),
            if p.symmetric { "y" } else { "n" }.to_string(),
            p.n.to_string(),
            p.nnz.to_string(),
            format!("{:.2}", p.mean_degree),
            a.nrows().to_string(),
            a.nnz().to_string(),
            format!("{:.2}", a.mean_degree()),
        ]);
        assert_eq!(a.is_symmetric(), p.symmetric, "{} symmetry", p.name);
    }
    t.print();
}
