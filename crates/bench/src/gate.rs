//! Performance-regression gate: a deterministic, machine-independent
//! baseline for the factor pipeline.
//!
//! Wall-clock time is useless as a CI gate (runner hardware varies and
//! shared runners are noisy), so the gate measures what the simulated
//! device models deterministically instead: bandwidth-model time, global
//! memory traffic, and launch counts of the full
//! `tridiagonal_from_matrix` pipeline on a fixed set of stand-in matrices
//! at a fixed scale. Those numbers change only when the *algorithm*
//! changes — more iterations, more traffic, more launches — which is
//! exactly what a perf gate should trip on.
//!
//! * `repro gate` writes the baseline to `<out>/BENCH_gate.json`
//!   (schema [`SCHEMA`], a flat name → number map).
//! * `repro gate --compare results/BENCH_gate.json [--tolerance T]`
//!   re-measures and fails (process exit 1 via the caller) when any
//!   metric exceeds its baseline by more than `T` (relative), or when a
//!   baseline metric disappeared.
//! * `--inject S` multiplies the fresh model-time metrics by `S` — a
//!   synthetic regression used by CI to prove the gate actually trips.
//!
//! The committed baseline must be produced by the same build flavour that
//! CI compares against (the offline stub overlay): the stub `rand` draws
//! a different — but equally deterministic — stream than the real crate,
//! so generated matrices differ between flavours.

use crate::Opts;
use lf_core::forest::tridiagonal_from_matrix;
use lf_core::parallel::FactorConfig;
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};
use lf_sparse::Collection;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Schema tag of `BENCH_gate.json`; bump on any layout change.
pub const SCHEMA: &str = "lf-gate/1";

/// Fixed stand-in size: small enough for a sub-minute CI step, large
/// enough that iteration counts and traffic are not dominated by
/// boundary effects.
pub const GATE_SCALE: usize = 4_000;

/// The gated workload: one matrix per degree class of Table 3.
pub const GATE_MATRICES: [Collection; 3] = [
    Collection::Atmosmodm,
    Collection::Ecology1,
    Collection::Thermal2,
];

/// Options of the `repro gate` subcommand.
#[derive(Clone, Debug)]
pub struct GateOpts {
    /// Baseline to compare against; `None` writes a fresh baseline.
    pub compare: Option<PathBuf>,
    /// Relative regression tolerance per metric (0.05 = +5 %).
    pub tolerance: f64,
    /// Synthetic slowdown multiplier applied to the fresh model-time
    /// metrics (CI negative test); 1.0 = measure honestly.
    pub inject: f64,
}

impl Default for GateOpts {
    fn default() -> Self {
        Self {
            compare: None,
            tolerance: 0.05,
            inject: 1.0,
        }
    }
}

/// Measure the gated workload: for every matrix in [`GATE_MATRICES`] run
/// the full pipeline on a fresh device and record model time, traffic,
/// and launch count. All metrics are "higher is worse".
pub fn measure(opts: &Opts) -> BTreeMap<String, f64> {
    let cfg = FactorConfig::paper_default(2);
    let mut out = BTreeMap::new();
    for m in GATE_MATRICES {
        let a = m.generate(GATE_SCALE);
        // The baseline is defined on the model backend with the fusion
        // pass on — the historical launch stream. A `--backend cpu` or
        // `--no-fuse` harness run must not skew the gate, so the device
        // is constructed explicitly rather than via `opts.device()`.
        let dev = Device::with_backend_tracer(
            DeviceConfig::default(),
            backend::make(BackendKind::Model),
            opts.tracer.clone(),
        );
        let (tri, _, _) =
            tridiagonal_from_matrix(&dev, &a, &cfg).expect("gate pipeline failed");
        assert_eq!(tri.len(), a.nrows(), "gate workload must cover the matrix");
        let s = dev.stats();
        let name = m.name();
        out.insert(format!("{name}.model_ms"), s.model_time_s * 1e3);
        out.insert(format!("{name}.traffic_mb"), s.traffic.total() as f64 / 1e6);
        out.insert(format!("{name}.launches"), s.launches as f64);
    }
    out
}

/// Render a measurement as the `BENCH_gate.json` document.
pub fn to_json(metrics: &BTreeMap<String, f64>) -> String {
    let body: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v:.6}"))
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"scale\":{GATE_SCALE},\"metrics\":{{{}}}}}\n",
        body.join(",")
    )
}

/// Parse a `BENCH_gate.json` document (the exact flat shape written by
/// [`to_json`] — a hand-rolled parser keeps the harness dependency-free).
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    if !text.contains(&format!("\"schema\":\"{SCHEMA}\"")) {
        return Err(format!("baseline is not {SCHEMA}"));
    }
    let start = text
        .find("\"metrics\":{")
        .ok_or("baseline has no metrics object")?
        + "\"metrics\":{".len();
    let end = text[start..]
        .find('}')
        .ok_or("unterminated metrics object")?
        + start;
    let mut out = BTreeMap::new();
    for pair in text[start..end].split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed metric entry {pair:?}"))?;
        let key = k.trim().trim_matches('"').to_string();
        let val: f64 = v
            .trim()
            .parse()
            .map_err(|e| format!("bad value for {key}: {e}"))?;
        out.insert(key, val);
    }
    if out.is_empty() {
        return Err("baseline has no metrics".into());
    }
    Ok(out)
}

/// Compare a fresh measurement against a baseline. Returns the list of
/// failures (empty = gate passes); improvements and new metrics are fine.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &base) in baseline {
        match fresh.get(key) {
            None => failures.push(format!("{key}: present in baseline, missing from run")),
            Some(&now) => {
                // Absolute epsilon so zero-valued baselines don't trip on
                // float noise.
                if now > base * (1.0 + tolerance) + 1e-9 {
                    failures.push(format!(
                        "{key}: {now:.4} vs baseline {base:.4} (+{:.1} % > {:.1} % tolerance)",
                        (now / base - 1.0) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    failures
}

/// `repro gate`: measure, then either write the baseline (no `--compare`)
/// or compare against one. Returns whether the gate passed.
pub fn run(opts: &Opts, gate: &GateOpts) -> bool {
    println!(
        "Perf gate — deterministic model metrics, {} matrices at scale {GATE_SCALE}:\n",
        GATE_MATRICES.len()
    );
    let mut fresh = measure(opts);
    if gate.inject != 1.0 {
        println!("  [injecting synthetic x{} model-time slowdown]", gate.inject);
        for (k, v) in fresh.iter_mut() {
            if k.ends_with(".model_ms") {
                *v *= gate.inject;
            }
        }
    }
    for (k, v) in &fresh {
        println!("  {k:<28} {v:.4}");
    }
    match &gate.compare {
        None => {
            std::fs::create_dir_all(&opts.out_dir).expect("results dir");
            let path = opts.out_dir.join("BENCH_gate.json");
            // Record provenance alongside the numbers. Spliced before the
            // metrics object so `parse_baseline`'s flat slice still lands
            // on `"metrics":{...}`.
            let manifest = opts.manifest_json(&format!("\"reps\":1,\"gate_scale\":{GATE_SCALE}"));
            let doc = to_json(&fresh).replacen(
                "\"metrics\":",
                &format!("\"manifest\":{manifest},\"metrics\":"),
                1,
            );
            std::fs::write(&path, doc).expect("write baseline");
            println!("\nbaseline written to {}", path.display());
            true
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                std::process::exit(1);
            });
            let baseline = parse_baseline(&text).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let failures = compare(&baseline, &fresh, gate.tolerance);
            if failures.is_empty() {
                println!(
                    "\ngate PASSED: {} metrics within {:.1} % of {}",
                    baseline.len(),
                    gate.tolerance * 100.0,
                    path.display()
                );
                true
            } else {
                eprintln!("\ngate FAILED ({} regression(s)):", failures.len());
                for f in &failures {
                    eprintln!("  {f}");
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn json_round_trips() {
        let m = map(&[("a.model_ms", 1.25), ("a.launches", 42.0)]);
        let parsed = parse_baseline(&to_json(&m)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed["a.model_ms"] - 1.25).abs() < 1e-9);
        assert_eq!(parsed["a.launches"], 42.0);
    }

    #[test]
    fn parse_accepts_manifest_bearing_baseline() {
        // What `repro gate` writes since the manifest landed: provenance
        // object spliced before the metrics, which the flat slice ignores.
        let m = map(&[("a.model_ms", 1.25)]);
        let manifest = Opts::default().manifest_json("\"reps\":1");
        let doc = to_json(&m).replacen(
            "\"metrics\":",
            &format!("\"manifest\":{manifest},\"metrics\":"),
            1,
        );
        let parsed = parse_baseline(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!((parsed["a.model_ms"] - 1.25).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(parse_baseline("{\"schema\":\"lf-gate/0\",\"metrics\":{}}").is_err());
        assert!(parse_baseline(&format!("{{\"schema\":\"{SCHEMA}\",\"metrics\":{{}}}}")).is_err());
    }

    #[test]
    fn compare_trips_only_on_regression() {
        let base = map(&[("m.model_ms", 100.0), ("m.launches", 50.0)]);
        // Within tolerance and an improvement: pass.
        let ok = map(&[("m.model_ms", 104.0), ("m.launches", 40.0)]);
        assert!(compare(&base, &ok, 0.05).is_empty());
        // Past tolerance: fail, naming the metric.
        let slow = map(&[("m.model_ms", 106.0), ("m.launches", 50.0)]);
        let fails = compare(&base, &slow, 0.05);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].starts_with("m.model_ms"), "{fails:?}");
        // Missing metric: fail even if everything else matches.
        let missing = map(&[("m.model_ms", 100.0)]);
        assert_eq!(compare(&base, &missing, 0.05).len(), 1);
        // New metrics in the fresh run are not failures.
        let extra = map(&[("m.model_ms", 100.0), ("m.launches", 50.0), ("new", 1.0)]);
        assert!(compare(&base, &extra, 0.05).is_empty());
    }

    #[test]
    fn measurement_is_deterministic() {
        let opts = Opts::default();
        let a = measure(&opts);
        let b = measure(&opts);
        assert_eq!(a, b, "model metrics must be run-to-run deterministic");
        assert_eq!(a.len(), 3 * GATE_MATRICES.len());
        assert!(a.values().all(|v| v.is_finite() && *v > 0.0), "{a:?}");
    }

    #[test]
    fn gate_ignores_backend_and_fusion_overrides() {
        // `repro --backend cpu --no-fuse gate` must still measure the
        // model-backend fused baseline.
        let base = measure(&Opts::default());
        let overridden = Opts {
            backend: lf_kernel::BackendKind::Cpu,
            fuse: false,
            ..Opts::default()
        };
        assert_eq!(base, measure(&overridden));
    }
}
