//! Figure 4: double-precision BiCGStab convergence with the four
//! preconditioners — iteration counts, final relative residual and
//! forward relative error, plus full residual-history CSV series.

use crate::{Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_solver::precond::Preconditioner;
use lf_solver::prelude::*;
use lf_sparse::Collection;
use std::io::Write;

/// Regenerate Fig. 4 (summary table + per-iteration CSV).
pub fn run(opts: &Opts) {
    println!(
        "Figure 4 — BiCGStab convergence, double precision, \
         x_t[i] = sin(16πi/N) (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "precond",
        "coverage",
        "iters",
        "rel.res.",
        "FRE",
    ]);
    let mut csv = opts.csv("fig4.csv").expect("results dir");
    writeln!(csv, "matrix,precond,iteration,rel_residual,fre").unwrap();
    let opts_solve = SolveOpts {
        tol: 1e-11,
        max_iters: 3000,
    };
    for m in Collection::FIG4 {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m));
        let (b, xt) = manufactured_problem(&dev, &a);
        let cfg = FactorConfig::paper_default(2);
        let preconds: Vec<(Box<dyn Preconditioner<f64>>, Option<f64>)> = vec![
            (Box::new(JacobiPrecond::new(&a)), None),
            (
                Box::new(TriScalPrecond::new(&a)),
                Some(identity_coverage(&a)),
            ),
            {
                let p = AlgTriScalPrecond::new(&dev, &a, &cfg);
                let c = Preconditioner::<f64>::coverage(&p);
                (Box::new(p), c)
            },
            {
                let p = AlgTriBlockPrecond::new(&dev, &a, &cfg);
                let c = Preconditioner::<f64>::coverage(&p);
                (Box::new(p), c)
            },
        ];
        for (p, cov) in &preconds {
            let (_, st) = bicgstab(&dev, &a, &b, p.as_ref(), &opts_solve, Some(&xt));
            for (it, (rr, fre)) in st.rel_residual.iter().zip(&st.fre).enumerate() {
                writeln!(csv, "{},{},{},{:.6e},{:.6e}", m.name(), p.name(), it, rr, fre)
                    .unwrap();
            }
            t.row(vec![
                m.name().to_string(),
                p.name().to_string(),
                cov.map(|c| format!("{c:.2}")).unwrap_or_else(|| "-".into()),
                if st.converged {
                    st.iterations.to_string()
                } else {
                    format!(">{}", st.iterations)
                },
                format!("{:.1e}", st.rel_residual.last().unwrap()),
                format!("{:.1e}", st.fre.last().copied().unwrap_or(f64::NAN)),
            ]);
        }
    }
    t.print();
    println!(
        "\n  per-iteration residual/FRE series in {}",
        opts.out_dir.join("fig4.csv").display()
    );
}
