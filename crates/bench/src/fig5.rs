//! Figure 5: bidirectional-scan throughput (identify-cycles and
//! identify-paths kernels, against a copy-kernel reference) and the
//! parallel-vs-sequential speedup of the full linear-forest extraction.

use crate::{Opts, Table};
use lf_core::prelude::*;
use lf_kernel::{launch, Device, DeviceConfig};
use lf_sparse::Collection;
use std::io::Write;
use std::time::Instant;

/// Matrices for the scan study (same spread as Fig. 5).
pub const MATRICES: [Collection; 8] = [
    Collection::Aniso2,
    Collection::Atmosmodj,
    Collection::Atmosmodm,
    Collection::Bump2911,
    Collection::Ecology2,
    Collection::G3Circuit,
    Collection::Stocf1465,
    Collection::Thermal2,
];

/// Regenerate Fig. 5.
pub fn run(opts: &Opts) {
    println!(
        "Figure 5 — bidirectional scan throughput and CPU-sequential vs \
         parallel speedup (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "cyc med GB/s",
        "cyc wall q1..q3",
        "paths med",
        "copy GB/s",
        "par wall ms",
        "seq wall ms",
        "wall spdup",
        "model ms",
        "model spdup",
    ]);
    let mut csv = opts.csv("fig5.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,kernel,launches,model_gbps,wall_gbps,par_wall_ms,seq_wall_ms,wall_speedup,model_ms,model_speedup"
    )
    .unwrap();
    for m in MATRICES {
        // per-launch sampling on: Fig. 5 is a throughput *boxplot*
        let dev = Device::new(DeviceConfig::default().with_sampling());
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        // factor once; the scans are what Fig. 5 measures
        let factor = parallel_factor(&dev, &ap, &FactorConfig::paper_default(2)).factor;

        // parallel scans (the production path)
        let mut fpar = factor.clone();
        let t0 = Instant::now();
        let (_, s_cyc) = dev.scoped(|| break_cycles(&dev, &mut fpar));
        let (_, s_pth) = dev.scoped(|| identify_paths(&dev, &fpar).expect("acyclic"));
        let par_wall = t0.elapsed().as_secs_f64();

        // sequential CPU reference (walks paths directly — less work, as
        // the paper notes)
        let mut fseq = factor.clone();
        let t1 = Instant::now();
        let _ = break_cycles_sequential(&mut fseq);
        let _ = identify_paths_sequential(&fseq).expect("acyclic");
        let seq_wall = t1.elapsed().as_secs_f64();

        // copy-kernel reference throughput at the same buffer size
        {
            let src = vec![0u64; ap.nrows() * 2];
            let mut dst = vec![0u64; ap.nrows() * 2];
            launch::copy(&dev, "fig5_copy", &mut dst, &src);
        }
        let copy_gbps = dev.stats().kernels["fig5_copy"].model_throughput_gbps();

        // per-launch throughput distributions: the *model* median (traffic
        // at bandwidth) plus the *wall-clock* quartile spread — the model
        // is deterministic per launch, so the boxplot spread of the
        // paper's Fig. 5 (irregular memory behaviour) shows up in the
        // measured wall throughput.
        let quartiles = |name: &str, wall: bool| -> (f64, f64, f64) {
            let mut v: Vec<f64> = dev
                .stats()
                .samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| {
                    if wall {
                        if s.wall_time_s == 0.0 {
                            0.0
                        } else {
                            s.traffic.total() as f64 / 1e9 / s.wall_time_s
                        }
                    } else {
                        s.model_throughput_gbps()
                    }
                })
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if v.is_empty() {
                return (0.0, 0.0, 0.0);
            }
            let q = |f: f64| v[((v.len() - 1) as f64 * f).round() as usize];
            (q(0.25), q(0.5), q(0.75))
        };
        let (_, cyc_gbps, _) = quartiles("identify_cycles", false);
        let (c_q1, _, c_q3) = quartiles("identify_cycles", true);
        let (_, pth_gbps, _) = quartiles("identify_paths", false);
        let speedup = seq_wall / par_wall.max(1e-12);
        // the paper's GPU-vs-CPU comparison: device model time vs the
        // sequential CPU walk
        let model_s = s_cyc.model_time_s + s_pth.model_time_s;
        let model_speedup = seq_wall / model_s.max(1e-12);
        for (kname, st) in [("identify_cycles", &s_cyc), ("identify_paths", &s_pth)] {
            let k = &st.kernels[kname];
            writeln!(
                csv,
                "{},{},{},{:.2},{:.2},{:.3},{:.3},{:.2},{:.4},{:.2}",
                m.name(),
                kname,
                k.launches,
                k.model_throughput_gbps(),
                k.wall_throughput_gbps(),
                par_wall * 1e3,
                seq_wall * 1e3,
                speedup,
                model_s * 1e3,
                model_speedup
            )
            .unwrap();
        }
        t.row(vec![
            m.name().to_string(),
            format!("{cyc_gbps:.0}"),
            format!("{c_q1:.0}..{c_q3:.0}"),
            format!("{pth_gbps:.0}"),
            format!("{copy_gbps:.0}"),
            format!("{:.2}", par_wall * 1e3),
            format!("{:.2}", seq_wall * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.3}", model_s * 1e3),
            format!("{model_speedup:.1}x"),
        ]);
    }
    t.print();
    println!(
        "\n  model GB/s near the copy reference = scan runs at bandwidth \
         (paper: median close to copy). 'model spdup' compares the \
         bandwidth-model GPU time against the sequential CPU walk — the \
         paper's GPU-vs-CPU comparison (4–24x). 'wall spdup' is the \
         parallel-CPU execution, which on a single-core host pays the \
         N·log N work of the step-efficient scan with no parallelism to \
         amortize it. CSV in {}",
        opts.out_dir.join("fig5.csv").display()
    );
}
