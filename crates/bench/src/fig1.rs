//! Figure 1 / Table 1: the worked edge-proposition and confirmation
//! example — one charged proposition round on a 10-vertex graph, with the
//! Table-1 accumulator trace for vertex 4.

use crate::Opts;
use lf_core::prelude::*;
use lf_core::topk::TopK;
use lf_kernel::Device;
use lf_sparse::{Coo, Csr};

/// The Table-1 row for vertex 4: `(A')_{4,j}` entries.
const ROW4: [(f32, u32); 5] = [(0.2, 3), (0.3, 5), (0.9, 6), (0.4, 7), (0.5, 9)];

/// Print the worked example.
pub fn run(_opts: &Opts) {
    println!("Figure 1 / Table 1 — edge proposition and confirmation (n = 2)\n");

    // Table 1 accumulator walk for vertex 4.
    println!("Table 1: reduction along matrix row (A')_4,j left to right");
    println!("  entries: {ROW4:?}");
    let mut acc = TopK::<f32, 2>::empty();
    print!("  accumulator (no charging):  ");
    for (w, c) in ROW4 {
        acc.insert(w, c);
        print!("[({:.1},{}) ({})] ", acc.w[0], acc.col[0], fmt_slot(&acc, 1));
    }
    println!("→ proposes to {} and {}", acc.col[0], acc.col[1]);
    // with charging: vertex 4 is (-); columns 5 and 6 are (-) too
    let charges = [(3u32, '+'), (5, '-'), (6, '-'), (7, '+'), (9, '+')];
    let mut acc = TopK::<f32, 2>::empty();
    print!("  accumulator (4 is '-'):     ");
    for (w, c) in ROW4 {
        let ch = charges.iter().find(|&&(x, _)| x == c).unwrap().1;
        if ch == '+' {
            acc.insert(w, c);
        }
        print!("[({:.1},{}) ({})] ", acc.w[0], acc.col[0], fmt_slot(&acc, 1));
    }
    println!("→ proposes to {} and {}", acc.col[0], acc.col[1]);
    assert_eq!(acc.col, [9, 7], "paper: charged proposes to 9 and 7");

    // A Figure-1-like graph: 10 vertices, a cycle among {4,5,6,7} whose
    // weakest confirmed edge (4,7) is later removed by cycle breaking.
    let mut coo = Coo::<f32>::new(10, 10);
    let edges: &[(u32, u32, f32)] = &[
        (0, 1, 0.8),
        (1, 2, 0.7),
        (2, 3, 0.6),
        (3, 4, 0.2),
        (4, 5, 0.9),
        (5, 6, 0.8),
        (6, 7, 0.7),
        (7, 4, 0.4),
        (7, 8, 0.1),
        (8, 9, 0.9),
        (4, 9, 0.5),
    ];
    for &(u, v, w) in edges {
        coo.push_sym(u, v, w);
    }
    let a = Csr::from_coo(coo);
    let dev = Device::default();
    let out = parallel_factor(
        &dev,
        &a,
        &FactorConfig::paper_default(2).with_max_iters(11),
    );
    println!("\nconfirmed [0,2]-factor after Algorithm 2:");
    for v in 0..10 {
        let ps: Vec<String> = out
            .factor
            .partners(v)
            .map(|(w, x)| format!("{w}({x:.1})"))
            .collect();
        println!("  π({v}) = {{{}}}", ps.join(", "));
    }
    let mut f = out.factor.clone();
    let rep = break_cycles(&dev, &mut f);
    println!(
        "\ncycle breaking removed {:?} — as in Fig. 1b, the confirmed cycle \
         loses its weakest edge",
        rep.removed
    );
}

fn fmt_slot(acc: &TopK<f32, 2>, i: usize) -> String {
    if acc.col[i] == lf_core::INVALID {
        "0.0,_".to_string()
    } else {
        format!("{:.1},{}", acc.w[i], acc.col[i])
    }
}
