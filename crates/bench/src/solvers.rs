//! Extension experiment: solver × preconditioner cross-comparison beyond
//! the paper's BiCGStab-only Fig. 4 — adds GMRES(50), PCG (on the SPD
//! members), block-Jacobi, and the AMG V-cycle built on the paper's
//! [0,1]-factor coarsening.

use crate::{Opts, Table};
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_solver::precond::Preconditioner;
use lf_solver::prelude::*;
use lf_sparse::{Collection, Csr};

type PrecondBox = Box<dyn Preconditioner<f64>>;

fn build_preconds(dev: &Device, a: &Csr<f64>) -> Vec<PrecondBox> {
    let cfg = FactorConfig::paper_default(2);
    vec![
        Box::new(JacobiPrecond::new(a)),
        Box::new(BlockJacobiPrecond::new(dev, a, &cfg)),
        Box::new(AlgTriScalPrecond::new(dev, a, &cfg)),
        Box::new(AlgTriBlockPrecond::new(dev, a, &cfg)),
        Box::new(AmgPrecond::new(dev, a, AmgConfig::default())),
    ]
}

/// Run the cross-comparison.
pub fn run(opts: &Opts) {
    println!(
        "Extension — solver × preconditioner iteration counts \
         (tol 1e-10; scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "precond",
        "coverage",
        "BiCGStab",
        "GMRES(50)",
        "PCG",
    ]);
    let solve_opts = SolveOpts {
        tol: 1e-10,
        max_iters: 4000,
    };
    for m in [
        Collection::Aniso2,
        Collection::Atmosmodm,
        Collection::Thermal2,
        Collection::Transport,
    ] {
        let dev = Device::default();
        let a = m.generate(opts.target_n(m).min(20_000));
        let spd = a.is_symmetric();
        let (b, xt) = manufactured_problem(&dev, &a);
        for p in build_preconds(&dev, &a) {
            let fmt = |st: &SolveStats| {
                if st.converged {
                    st.iterations.to_string()
                } else {
                    format!(">{}", st.iterations)
                }
            };
            let (_, st_b) = bicgstab(&dev, &a, &b, p.as_ref(), &solve_opts, Some(&xt));
            let (_, st_g) = gmres(&dev, &a, &b, p.as_ref(), 50, &solve_opts, Some(&xt));
            let cg_cell = if spd {
                let (_, st_c) = pcg(&dev, &a, &b, p.as_ref(), &solve_opts, Some(&xt));
                fmt(&st_c)
            } else {
                "-".to_string()
            };
            t.row(vec![
                m.name().to_string(),
                p.name().to_string(),
                p.coverage()
                    .map(|c| format!("{c:.2}"))
                    .unwrap_or_else(|| "-".into()),
                fmt(&st_b),
                fmt(&st_g),
                cg_cell,
            ]);
        }
    }
    t.print();
    println!(
        "\n  PCG applies to the symmetric members only; GMRES(50) covers the \
         nonsymmetric ones. The factor-based preconditioners keep their \
         ranking across all three Krylov methods, and the AMG V-cycle \
         (built on repeated [0,1]-factor coarsening) wins where smoothness \
         matters."
    );
}
