//! Figure 2: the butterfly access pattern of the bidirectional scan on a
//! 10-vertex linear forest with 4 paths — printed step by step.

use crate::Opts;
use lf_core::factor::Factor;
use lf_core::scan::{bidirectional_scan, Link};
use lf_kernel::Device;

/// Print the per-step stride-q neighbor table of the scan.
pub fn run(_opts: &Opts) {
    println!("Figure 2 — bidirectional scan on N = 10, 4 paths\n");
    // paths: {0,1,2}, {3}, {4,5,6,7}, {8,9}
    let mut f = Factor::<f32>::new(10, 2);
    for (u, v) in [(0u32, 1u32), (1, 2), (4, 5), (5, 6), (6, 7), (8, 9)] {
        f.insert(u as usize, v, 1.0);
        f.insert(v as usize, u, 1.0);
    }

    let fmt_link = |l: Link| {
        if l.is_end() {
            format!("E{}", l.id())
        } else {
            format!("{}", l.id())
        }
    };

    // re-run the scan `steps` times, truncating to each prefix, to show
    // the intermediate states (the production scan ping-pongs in place)
    println!("  per-vertex stride-q neighbors (E = path-end marker) and positions:");
    for show_steps in 0..=4usize {
        // emulate by scanning a copy with a step limiter: rebuild from
        // scratch and run the full scan but record after `show_steps`
        // steps. We reuse the public API by scanning on a truncated factor
        // state; simplest is to run the real scan and print only at the
        // end, so instead we inline a mini-scan here.
        let dev = Device::default();
        let res = scan_prefix(&dev, &f, show_steps);
        let cells: Vec<String> = (0..10)
            .map(|v| {
                format!(
                    "{}:{}/{}",
                    v,
                    fmt_link(res.0[v][0]),
                    fmt_link(res.0[v][1])
                )
            })
            .collect();
        println!("  step {show_steps}: {}", cells.join("  "));
    }

    let dev = Device::default();
    let res = bidirectional_scan(&dev, &f, "fig2_scan", |_, _| 1u32, |a, b| a + b);
    println!("\n  final (path-end, distance) pairs:");
    for v in 0..10 {
        println!(
            "    vertex {v}: ends ({}, {}), distances ({}, {})",
            res.links[v][0].id(),
            res.links[v][1].id(),
            res.values[v][0],
            res.values[v][1]
        );
    }
    println!(
        "\n  {} kernel launches for N = 10 (⌈log₂ 10⌉ = 4, as in Sec. 4.2)",
        res.steps
    );
}

/// A prefix-limited clone of the scan for visualization.
fn scan_prefix(
    dev: &Device,
    f: &Factor<f32>,
    steps: usize,
) -> (Vec<[Link; 2]>, Vec<[u32; 2]>) {
    let nv = f.num_vertices();
    let mut links: Vec<[Link; 2]> = (0..nv)
        .map(|v| {
            let mut l = [Link::end(v as u32); 2];
            for (s, (w, _)) in f.partners(v).take(2).enumerate() {
                l[s] = Link::vertex(w);
            }
            l
        })
        .collect();
    let mut vals: Vec<[u32; 2]> = vec![[1, 1]; nv];
    let _ = dev;
    for _ in 0..steps {
        let lsrc = links.clone();
        let vsrc = vals.clone();
        for v in 0..nv {
            let me = Link::vertex(v as u32);
            for i in 0..2 {
                if links[v][i].is_end() {
                    continue;
                }
                let nb = links[v][i].id() as usize;
                for j in 0..2 {
                    if lsrc[nb][j] != me {
                        vals[v][i] += vsrc[nb][j];
                        links[v][i] = lsrc[nb][j];
                    }
                }
            }
        }
    }
    (links, vals)
}
