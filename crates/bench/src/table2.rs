//! Table 2: global-memory buffers read and written by the edge-proposition
//! kernel — verified against the traffic the simulated device actually
//! recorded.

use crate::{Opts, Table};
use lf_core::parallel::proposition_kernel_stats;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::Collection;

/// Regenerate Table 2 and check the measured traffic against the formula.
pub fn run(opts: &Opts) {
    let n_factor = 2usize;
    let m = Collection::Thermal2;
    let a = m.generate(opts.target_n(m));
    let ap = prepare_undirected(&a);
    let (nv, nnz) = (ap.nrows(), ap.nnz());

    println!(
        "Table 2 — edge-proposition buffer traffic (n = {n_factor}, matrix {} \
         with N = {nv}, nnz = {nnz}):\n",
        m.name()
    );
    let mut t = Table::new(&["buffer", "when", "dir", "length", "type", "bytes"]);
    let val = std::mem::size_of::<f64>();
    let idx = std::mem::size_of::<u32>();
    let rows: Vec<(&str, &str, &str, usize, &str, usize)> = vec![
        ("CSR values", "k=0", "read", nnz, "value", nnz * val),
        ("CSR col indices", "k=0", "read", nnz, "index", nnz * idx),
        ("CSR row ptrs", "k=0", "read", nv + 1, "index", (nv + 1) * 8),
        ("vertex charges", "k=0", "read", nv, "bool", nv),
        ("proposed edges", "k=0", "write", n_factor * nv, "index", n_factor * nv * idx),
        ("proposed edge weights", "k=0", "write", n_factor * nv, "value", n_factor * nv * val),
        ("confirmed edges", "k>0", "read", n_factor * nv, "index", n_factor * nv * idx),
    ];
    for (label, when, dir, len, ty, bytes) in &rows {
        t.row(vec![
            label.to_string(),
            when.to_string(),
            dir.to_string(),
            len.to_string(),
            ty.to_string(),
            bytes.to_string(),
        ]);
    }
    t.print();

    // measured: one isolated k > 0 proposition launch
    let dev = Device::default();
    let cfg = FactorConfig::config1(n_factor);
    let stats = proposition_kernel_stats(&dev, &ap, &cfg, 1);
    let prop: lf_kernel::KernelStats = stats
        .kernels
        .iter()
        .filter(|(k, _)| k.starts_with("edge_proposition") || k.starts_with("srcsr"))
        .fold(Default::default(), |mut acc: lf_kernel::KernelStats, (_, v)| {
            acc.launches += v.launches;
            acc.traffic += v.traffic;
            acc.model_time_s += v.model_time_s;
            acc.wall_time_s += v.wall_time_s;
            acc
        });
    let formula_read = nnz * val + nnz * idx + (nv + 1) * 8 + nv + n_factor * nv * idx;
    let formula_write = n_factor * nv * (val + idx);
    println!(
        "\n  measured (one k>0 launch): read {} B, written {} B",
        prop.traffic.read, prop.traffic.written
    );
    println!(
        "  Table-2 formula:           read {formula_read} B, written {formula_write} B"
    );
    let r_ratio = prop.traffic.read as f64 / formula_read as f64;
    let w_ratio = prop.traffic.written as f64 / formula_write as f64;
    println!(
        "  ratio measured/formula:    read {r_ratio:.2}x, written {w_ratio:.2}x \
         (≥ 1 expected: the simulator also counts per-row state and struct padding)"
    );
    assert!(r_ratio >= 0.9, "measured read traffic below the paper's formula");
    assert!(w_ratio >= 0.9, "measured write traffic below the paper's formula");
}
