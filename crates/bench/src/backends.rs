//! `repro backends` — backend/fusion cross: the full pipeline on every
//! (backend × fusion) combination of the gate stand-ins, reporting both
//! the deterministic model metrics and measured wall clock.
//!
//! This is the experiment behind the tuned-CPU-backend claim: the model
//! backend executes every kernel with the legacy global-threshold rayon
//! strategy, while the CPU backend picks per-kernel-class parallel
//! thresholds for the actual pool size, cache-blocks CSR row traversal,
//! and lane-chunks sequential reductions — same launch stream, same
//! bit-identical forest, lower wall clock. The fused/unfused columns
//! show what the peephole pass saves: fused runs skip the intermediate
//! materialize + re-read of each map→reduce, scan→scatter and
//! confirm→count pair.
//!
//! Model metrics are deterministic; wall clock is the minimum over
//! [`REPS`] repetitions after a warm-up run (device stats are cleared at
//! the warm-up boundary and between reps, like fig3).
//!
//! Always writes `<out>/BENCH_backends.json` (schema [`SCHEMA`]).

use crate::gate::GATE_MATRICES;
use crate::{f2, Opts, Table};
use lf_core::forest::tridiagonal_from_matrix;
use lf_core::parallel::FactorConfig;
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};

/// Schema tag of `BENCH_backends.json`; bump on any layout change.
pub const SCHEMA: &str = "lf-backends/1";

/// Wall-clock repetitions per combination. Reps are interleaved
/// round-robin across the four (backend × fusion) combinations — with the
/// starting combination rotated every round — so slow machine drift
/// (frequency scaling, co-tenant load) hits every combination equally
/// instead of biasing whichever ran last.
pub const REPS: usize = 25;

/// One measured (matrix × backend × fusion) combination.
#[derive(Clone, Debug)]
pub struct Row {
    /// Stand-in matrix name.
    pub matrix: String,
    /// Execution backend.
    pub backend: BackendKind,
    /// Whether the peephole fusion pass was on.
    pub fused: bool,
    /// Kernel launches (deterministic).
    pub launches: u64,
    /// Modeled global-memory traffic, MB (deterministic).
    pub traffic_mb: f64,
    /// Bandwidth-model time, ms (deterministic).
    pub model_ms: f64,
    /// Measured wall clock spent **inside kernel launches**, ms: the sum
    /// over kernel names of each kernel's minimum wall time across
    /// [`REPS`] interleaved reps. This is the part of the run the backend
    /// controls — host-side glue between launches is identical across
    /// backends and only adds noise — and per-kernel minima filter noise
    /// spikes that land on different kernels in different reps, so it is
    /// the headline backend-comparison number.
    pub wall_ms: f64,
    /// Measured end-to-end pipeline wall clock, ms (min over [`REPS`]
    /// reps; includes host glue).
    pub total_wall_ms: f64,
}

/// Measure every (matrix × backend × fusion) combination at `opts.scale`
/// (`--scale`; wall-clock effects need non-toy inputs, so unlike the gate
/// this experiment is not pinned to `GATE_SCALE`). Rows come out grouped
/// by matrix in backend-major order: (model, fused), (model, unfused),
/// (cpu, fused), (cpu, unfused).
pub fn measure(opts: &Opts) -> Vec<Row> {
    let cfg = FactorConfig::paper_default(2);
    let combos: [(BackendKind, bool); 4] = [
        (BackendKind::Model, true),
        (BackendKind::Model, false),
        (BackendKind::Cpu, true),
        (BackendKind::Cpu, false),
    ];
    let mut rows = Vec::new();
    for m in GATE_MATRICES {
        let a = m.generate(opts.scale);
        let devs: Vec<Device> = combos
            .iter()
            .map(|&(kind, fused)| {
                let dev = Device::with_backend_tracer(
                    DeviceConfig::default(),
                    backend::make(kind),
                    opts.tracer.clone(),
                );
                dev.set_fusion(fused);
                // Warm-up rep (thread pool, allocator, page faults), then
                // clear stats at the boundary so only measured reps count.
                tridiagonal_from_matrix(&dev, &a, &cfg).expect("backends pipeline failed");
                dev.reset_stats();
                dev
            })
            .collect();
        // Per combo: kernel-name → min wall over reps. Summing per-kernel
        // minima filters noise spikes that hit different kernels in
        // different reps, which a min over whole-rep totals cannot.
        let mut best: Vec<std::collections::BTreeMap<String, f64>> =
            vec![Default::default(); 4];
        let mut total_wall_ms = [f64::INFINITY; 4];
        // Round-robin over the combinations inside the rep loop: combo k's
        // rep j runs adjacent in time to every other combo's rep j, so the
        // minima are drawn from the same machine conditions. Rotating the
        // starting combination each round keeps any periodic disturbance
        // from always landing on the same combination.
        for rep in 0..REPS {
            for i in 0..devs.len() {
                let k = (i + rep) % devs.len();
                let dev = &devs[k];
                dev.reset_stats();
                let t0 = std::time::Instant::now();
                tridiagonal_from_matrix(dev, &a, &cfg).expect("backends pipeline failed");
                total_wall_ms[k] = total_wall_ms[k].min(t0.elapsed().as_secs_f64() * 1e3);
                for (name, ks) in &dev.stats().kernels {
                    let e = best[k].entry(name.clone()).or_insert(f64::INFINITY);
                    *e = e.min(ks.wall_time_s * 1e3);
                }
            }
        }
        for (k, dev) in devs.iter().enumerate() {
            let stats = dev.stats();
            rows.push(Row {
                matrix: m.name().to_string(),
                backend: combos[k].0,
                fused: combos[k].1,
                launches: stats.launches,
                traffic_mb: stats.traffic.total() as f64 / 1e6,
                model_ms: stats.model_time_s * 1e3,
                wall_ms: best[k].values().sum(),
                total_wall_ms: total_wall_ms[k],
            });
        }
    }
    rows
}

/// Render rows as the `BENCH_backends.json` document.
pub fn to_json(rows: &[Row], scale: usize) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"matrix\":\"{}\",\"backend\":\"{}\",\"fused\":{},\
                 \"launches\":{},\"traffic_mb\":{:.6},\"model_ms\":{:.6},\
                 \"wall_ms\":{:.6},\"total_wall_ms\":{:.6}}}",
                r.matrix,
                r.backend,
                r.fused,
                r.launches,
                r.traffic_mb,
                r.model_ms,
                r.wall_ms,
                r.total_wall_ms
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"scale\":{scale},\"reps\":{REPS},\"rows\":[{}]}}\n",
        body.join(",")
    )
}

/// `repro backends`: measure, print the cross table plus per-matrix
/// speedup summaries, write `BENCH_backends.json`.
pub fn run(opts: &Opts) {
    println!(
        "Backend × fusion cross — {} matrices at scale {}, \
         wall = min of {REPS} reps:\n",
        GATE_MATRICES.len(),
        opts.scale
    );
    let rows = measure(opts);
    let mut t = Table::new(&[
        "matrix", "backend", "fusion", "launches", "traffic MB", "model ms", "kernel wall ms",
        "e2e wall ms",
    ]);
    for r in &rows {
        t.row(vec![
            r.matrix.clone(),
            r.backend.to_string(),
            if r.fused { "fused" } else { "unfused" }.into(),
            r.launches.to_string(),
            f2(r.traffic_mb),
            format!("{:.3}", r.model_ms),
            format!("{:.3}", r.wall_ms),
            format!("{:.3}", r.total_wall_ms),
        ]);
    }
    t.print();

    println!();
    for chunk in rows.chunks(4) {
        // chunk order: (model,fused) (model,unfused) (cpu,fused) (cpu,unfused)
        let (mf, mu, cf, cu) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
        println!(
            "  {:<12} cpu/model wall {:.2}x   fused/unfused wall {:.2}x (model) {:.2}x (cpu)   \
             launches {} → {} fused",
            mf.matrix,
            mf.wall_ms / cf.wall_ms,
            mu.wall_ms / mf.wall_ms,
            cu.wall_ms / cf.wall_ms,
            mu.launches,
            mf.launches,
        );
    }

    std::fs::create_dir_all(&opts.out_dir).expect("results dir");
    let path = opts.out_dir.join("BENCH_backends.json");
    std::fs::write(&path, to_json(&rows, opts.scale)).expect("write BENCH_backends.json");
    println!("\nJSON written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_cross_and_model_metrics_hold() {
        let rows = measure(&Opts {
            scale: 2_000,
            ..Opts::default()
        });
        assert_eq!(rows.len(), 4 * GATE_MATRICES.len());
        for chunk in rows.chunks(4) {
            let (mf, mu, cf, cu) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
            // fused saves launches on both backends, identically
            assert!(mf.launches < mu.launches, "{}", mf.matrix);
            assert_eq!(mf.launches, cf.launches, "{}", mf.matrix);
            assert_eq!(mu.launches, cu.launches, "{}", mf.matrix);
            // fusion never adds traffic
            assert!(mf.traffic_mb <= mu.traffic_mb, "{}", mf.matrix);
            // model metrics are backend-independent
            assert_eq!(mf.model_ms, cf.model_ms, "{}", mf.matrix);
        }
    }

    #[test]
    fn json_has_schema_and_all_rows() {
        let rows = vec![Row {
            matrix: "m".into(),
            backend: BackendKind::Cpu,
            fused: true,
            launches: 7,
            traffic_mb: 1.5,
            model_ms: 0.25,
            wall_ms: 0.5,
            total_wall_ms: 0.75,
        }];
        let j = to_json(&rows, 1_234);
        assert!(j.contains("\"schema\":\"lf-backends/1\""));
        assert!(j.contains("\"scale\":1234"));
        assert!(j.contains("\"backend\":\"cpu\""));
        assert!(j.contains("\"fused\":true"));
        assert!(j.contains("\"launches\":7"));
    }
}
