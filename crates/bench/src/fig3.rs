//! Figure 3: performance of one edge-proposition kernel (k > 0, m = 1,
//! n = 1..4) relative to plain SpMV on the same matrices.
//!
//! The paper's claim: the generic SRCSR engine matches the vendor SpMV on
//! `d = Ax + d`, and the far more complex proposition functor still
//! reaches 30–50 % of that roofline. We reproduce both engines and report
//! model throughput (bandwidth-model GB/s) and wall time.

use crate::{Opts, Table};
use lf_core::parallel::proposition_kernel_stats;
use lf_core::prelude::*;
use lf_kernel::{Device, DeviceStats};
use lf_sparse::{gespmv, AxpyOps, Collection, SpmvEngine};
use std::io::Write;

/// Matrices shown in the paper's Fig. 3 (a representative subset of
/// Table 3 across degree classes).
pub const MATRICES: [Collection; 8] = [
    Collection::Aniso1,
    Collection::Atmosmodd,
    Collection::Atmosmodm,
    Collection::AfShell8,
    Collection::Curlcurl3,
    Collection::Ecology1,
    Collection::Stocf1465,
    Collection::Thermal2,
];

fn spmv_stats(dev: &Device, a: &lf_sparse::Csr<f64>, engine: SpmvEngine) -> DeviceStats {
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.1).sin()).collect();
    let d = vec![0.5f64; a.nrows()];
    let mut out = vec![0.0f64; a.nrows()];
    let (_, stats) = dev.scoped(|| {
        gespmv(dev, "fig3_spmv", engine, a, &AxpyOps { x: &x, d: &d }, &mut out)
    });
    stats
}

fn gbps(s: &DeviceStats) -> f64 {
    if s.model_time_s == 0.0 {
        0.0
    } else {
        s.traffic.total() as f64 / 1e9 / s.model_time_s
    }
}

/// Regenerate Fig. 3 as a table + CSV.
pub fn run(opts: &Opts) {
    println!(
        "Figure 3 — edge proposition (k>0) vs plain SpMV, model GB/s and \
         wall ms (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "rowSpMV GB/s",
        "SRCSR GB/s",
        "prop n=1",
        "n=2",
        "n=3",
        "n=4",
        "n=2 %roof",
        "wall SpMV ms",
        "wall n=2 ms",
    ]);
    let mut csv = opts.csv("fig3.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,kernel,model_gbps,model_ms,wall_ms,bytes"
    )
    .unwrap();
    for m in MATRICES {
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        let dev = Device::default();
        let row = spmv_stats(&dev, &ap, SpmvEngine::RowParallel);
        let srcsr = spmv_stats(&dev, &ap, SpmvEngine::SrCsr);
        let mut props = Vec::new();
        for n in 1..=4usize {
            let cfg = FactorConfig::config1(n);
            let s = proposition_kernel_stats(&dev, &ap, &cfg, 1);
            props.push(s);
        }
        for (name, s) in [("row_spmv", &row), ("srcsr_spmv", &srcsr)]
            .into_iter()
            .chain(
                props
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (["prop_n1", "prop_n2", "prop_n3", "prop_n4"][i], s)),
            )
        {
            writeln!(
                csv,
                "{},{},{:.2},{:.4},{:.4},{}",
                m.name(),
                name,
                gbps(s),
                s.model_time_s * 1e3,
                s.wall_time_s * 1e3,
                s.traffic.total()
            )
            .unwrap();
        }
        // roofline fraction: proposition model *time* vs plain SpMV time
        let roof = row.model_time_s / props[1].model_time_s;
        t.row(vec![
            m.name().to_string(),
            format!("{:.0}", gbps(&row)),
            format!("{:.0}", gbps(&srcsr)),
            format!("{:.0}", gbps(&props[0])),
            format!("{:.0}", gbps(&props[1])),
            format!("{:.0}", gbps(&props[2])),
            format!("{:.0}", gbps(&props[3])),
            format!("{:.0}%", roof * 100.0),
            format!("{:.3}", row.wall_time_s * 1e3),
            format!("{:.3}", props[1].wall_time_s * 1e3),
        ]);
    }
    t.print();
    println!(
        "\n  'n=2 %roof' = model-time of plain SpMV / model-time of the n=2 \
         proposition (the paper reports 30–50 %); CSV in {}",
        opts.out_dir.join("fig3.csv").display()
    );
}
