//! Figure 3: performance of one edge-proposition kernel (k > 0, m = 1,
//! n = 1..4) relative to plain SpMV on the same matrices.
//!
//! The paper's claim: the generic SRCSR engine matches the vendor SpMV on
//! `d = Ax + d`, and the far more complex proposition functor still
//! reaches 30–50 % of that roofline. We reproduce both engines and report
//! model throughput (bandwidth-model GB/s) and wall time.
//!
//! On top of the paper's dense kernels we also measure the
//! frontier-compacted proposition (`FactorConfig::with_frontier`): after a
//! warm-up factor run most vertices are full, so the compacted row view
//! reads only the remaining rows. The `prop_n*_frontier` rows quantify the
//! traffic reduction against the dense `prop_n*` rows on identical warm
//! state. With `--json`, a machine-readable `BENCH_fig3.json` (factor
//! iterations, proposition model/wall time, bytes moved per kernel) is
//! written next to the CSV.

use crate::{Opts, Table};
use lf_core::parallel::proposition_kernel_stats;
use lf_core::prelude::*;
use lf_kernel::{Device, DeviceStats};
use lf_sparse::{gespmv, AxpyOps, Collection, SpmvEngine};
use std::io::Write;

/// Matrices shown in the paper's Fig. 3 (a representative subset of
/// Table 3 across degree classes).
pub const MATRICES: [Collection; 8] = [
    Collection::Aniso1,
    Collection::Atmosmodd,
    Collection::Atmosmodm,
    Collection::AfShell8,
    Collection::Curlcurl3,
    Collection::Ecology1,
    Collection::Stocf1465,
    Collection::Thermal2,
];

fn spmv_stats(dev: &Device, a: &lf_sparse::Csr<f64>, engine: SpmvEngine) -> DeviceStats {
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.1).sin()).collect();
    let d = vec![0.5f64; a.nrows()];
    let mut out = vec![0.0f64; a.nrows()];
    let (_, stats) = dev.scoped(|| {
        gespmv(dev, "fig3_spmv", engine, a, &AxpyOps { x: &x, d: &d }, &mut out)
    });
    stats
}

fn gbps(s: &DeviceStats) -> f64 {
    if s.model_time_s == 0.0 {
        0.0
    } else {
        s.traffic.total() as f64 / 1e9 / s.model_time_s
    }
}

/// One kernel entry of `BENCH_fig3.json`.
fn json_kernel(name: &str, s: &DeviceStats) -> String {
    format!(
        "{{\"kernel\":\"{name}\",\"model_ms\":{:.6},\"wall_ms\":{:.6},\
         \"bytes_read\":{},\"bytes_written\":{},\"bytes_total\":{}}}",
        s.model_time_s * 1e3,
        s.wall_time_s * 1e3,
        s.traffic.read,
        s.traffic.written,
        s.traffic.total()
    )
}

/// Regenerate Fig. 3 as a table + CSV.
pub fn run(opts: &Opts) {
    println!(
        "Figure 3 — edge proposition (k>0) vs plain SpMV, model GB/s and \
         wall ms (scale {}):\n",
        opts.scale
    );
    let mut t = Table::new(&[
        "MATRIX",
        "rowSpMV GB/s",
        "SRCSR GB/s",
        "prop n=1",
        "n=2",
        "n=3",
        "n=4",
        "n=2 %roof",
        "frnt n=2 rd",
        "wall SpMV ms",
        "wall n=2 ms",
    ]);
    let mut csv = opts.csv("fig3.csv").expect("results dir");
    writeln!(
        csv,
        "matrix,kernel,model_gbps,model_ms,wall_ms,bytes,bytes_read"
    )
    .unwrap();
    let mut json_matrices: Vec<String> = Vec::new();
    for m in MATRICES {
        let a = m.generate(opts.target_n(m));
        let ap = prepare_undirected(&a);
        let dev = opts.device();
        // Warm-up run first (its confirmed-edge state is what the JSON
        // factor fields describe), then reset the device stats so the
        // aggregate counters cover exactly the timed kernels below.
        let warm = parallel_factor(&dev, &ap, &FactorConfig::paper_default(2));
        dev.reset_stats();
        // Keep the lf-metrics registry aligned with the device counters:
        // a `repro --metrics` scrape should describe the timed kernels,
        // not the warm-up (Device::reset_stats deliberately leaves the
        // process-global registry alone).
        lf_metrics::global().reset();
        let row = spmv_stats(&dev, &ap, SpmvEngine::RowParallel);
        let srcsr = spmv_stats(&dev, &ap, SpmvEngine::SrCsr);
        let mut props = Vec::new();
        let mut props_frontier = Vec::new();
        for n in 1..=4usize {
            let cfg = FactorConfig::config1(n);
            props.push(proposition_kernel_stats(&dev, &ap, &cfg, 1));
            props_frontier.push(proposition_kernel_stats(
                &dev,
                &ap,
                &cfg.with_frontier(true),
                1,
            ));
        }
        const PROP: [&str; 4] = ["prop_n1", "prop_n2", "prop_n3", "prop_n4"];
        const PROP_F: [&str; 4] = [
            "prop_n1_frontier",
            "prop_n2_frontier",
            "prop_n3_frontier",
            "prop_n4_frontier",
        ];
        let kernels: Vec<(&str, &DeviceStats)> = [("row_spmv", &row), ("srcsr_spmv", &srcsr)]
            .into_iter()
            .chain(props.iter().enumerate().map(|(i, s)| (PROP[i], s)))
            .chain(props_frontier.iter().enumerate().map(|(i, s)| (PROP_F[i], s)))
            .collect();
        for (name, s) in &kernels {
            writeln!(
                csv,
                "{},{},{:.2},{:.4},{:.4},{},{}",
                m.name(),
                name,
                gbps(s),
                s.model_time_s * 1e3,
                s.wall_time_s * 1e3,
                s.traffic.total(),
                s.traffic.read
            )
            .unwrap();
        }
        if opts.json {
            let entries: Vec<String> = kernels
                .iter()
                .map(|(name, s)| json_kernel(name, s))
                .collect();
            json_matrices.push(format!(
                "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\
                 \"factor_iterations\":{},\"factor_maximal\":{},\
                 \"kernels\":[{}]}}",
                m.name(),
                ap.nrows(),
                ap.nnz(),
                warm.iterations,
                warm.maximal,
                entries.join(",")
            ));
        }
        // roofline fraction: proposition model *time* vs plain SpMV time
        let roof = row.model_time_s / props[1].model_time_s;
        // frontier read traffic relative to the dense proposition on the
        // same warm (near-maximal) state — the tentpole's savings metric
        let frnt = props_frontier[1].traffic.read as f64 / props[1].traffic.read as f64;
        t.row(vec![
            m.name().to_string(),
            format!("{:.0}", gbps(&row)),
            format!("{:.0}", gbps(&srcsr)),
            format!("{:.0}", gbps(&props[0])),
            format!("{:.0}", gbps(&props[1])),
            format!("{:.0}", gbps(&props[2])),
            format!("{:.0}", gbps(&props[3])),
            format!("{:.0}%", roof * 100.0),
            format!("{:.0}%", frnt * 100.0),
            format!("{:.3}", row.wall_time_s * 1e3),
            format!("{:.3}", props[1].wall_time_s * 1e3),
        ]);
    }
    t.print();
    println!(
        "\n  'n=2 %roof' = model-time of plain SpMV / model-time of the n=2 \
         proposition (the paper reports 30–50 %); 'frnt n=2 rd' = bytes \
         read by the frontier-compacted n=2 proposition relative to the \
         dense one on warm state; CSV in {}",
        opts.out_dir.join("fig3.csv").display()
    );
    opts.write_json_with(
        "BENCH_fig3.json",
        &format!(
            "{{\"figure\":\"fig3\",\"scale\":{},\"full\":{},\"matrices\":[{}]}}\n",
            opts.scale,
            opts.full,
            json_matrices.join(",")
        ),
        // The model device is deterministic, so one rep per kernel.
        "\"reps\":1",
    )
    .expect("results dir");
}
