//! Property tests for the device primitives against sequential references.

use lf_kernel::{compact, reduce, scan, sort, Device};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exclusive_scan_matches_reference(v in proptest::collection::vec(0u64..1000, 0..20_000)) {
        let dev = Device::default();
        let mut got = v.clone();
        let total = scan::exclusive_scan_in_place(&dev, "s", &mut got, 0u64, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_max_scan_matches_reference(v in proptest::collection::vec(0u32..1_000_000, 0..20_000)) {
        let dev = Device::default();
        let mut got = v.clone();
        scan::inclusive_scan_in_place(&dev, "s", &mut got, 0u32, |a, b| a.max(b));
        let mut acc = 0u32;
        for (i, &x) in v.iter().enumerate() {
            acc = acc.max(x);
            prop_assert_eq!(got[i], acc);
        }
    }

    #[test]
    fn compact_matches_filter(v in proptest::collection::vec(0i64..100, 0..20_000), m in 1i64..10) {
        let dev = Device::default();
        let got = compact::compact(&dev, "c", &v, |&x| x % m == 0);
        let want: Vec<i64> = v.iter().copied().filter(|&x| x % m == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn histogram_matches_counts(v in proptest::collection::vec(0usize..17, 0..20_000)) {
        let dev = Device::default();
        let h = compact::histogram(&dev, "h", &v, 17, |&x| x);
        for (b, &c) in h.iter().enumerate() {
            let want = v.iter().filter(|&&x| x == b).count() as u64;
            prop_assert_eq!(c, want);
        }
    }

    #[test]
    fn reduce_sum_matches(v in proptest::collection::vec(0u64..1000, 0..20_000)) {
        let dev = Device::default();
        prop_assert_eq!(reduce::sum_u64(&dev, "r", &v), v.iter().sum::<u64>());
    }

    #[test]
    fn sort_permutation_is_sorting(v in proptest::collection::vec(0u64..1_000_000, 0..20_000)) {
        let dev = Device::default();
        let perm = sort::sort_permutation_u64(&dev, &v);
        prop_assert_eq!(perm.len(), v.len());
        let mut seen = vec![false; v.len()];
        for w in perm.windows(2) {
            prop_assert!(v[w[0] as usize] <= v[w[1] as usize]);
        }
        for &p in &perm {
            prop_assert!(!std::mem::replace(&mut seen[p as usize], true));
        }
    }
}
