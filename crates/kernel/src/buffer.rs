//! Device buffers: ping-pong pairs and disjoint-write scatter views.
//!
//! The paper's bidirectional scan (Sec. 4.2) allocates every buffer twice
//! and alternates between them so that a thread never reads a neighbor's
//! value after it has been overwritten in the same step. [`PingPong`]
//! captures exactly that idiom. [`ScatterSlice`] is the moral equivalent of
//! a CUDA kernel writing to arbitrary (but disjoint) global-memory
//! locations, used by the permutation/extraction kernels (Sec. 4.3).

use std::cell::UnsafeCell;

/// A pair of equally sized buffers used in ping-pong fashion.
///
/// `src()` is the buffer holding the current values, `dst()` the buffer the
/// next kernel writes into; [`PingPong::swap`] flips the roles. This mirrors
/// the double allocation in the paper's scan implementation.
///
/// ```
/// let mut pp = lf_kernel::PingPong::from_vec(vec![1u32, 2, 3]);
/// let (src, dst) = pp.src_dst_mut();
/// for (d, s) in dst.iter_mut().zip(src) { *d = s + 1; }
/// pp.swap();
/// assert_eq!(pp.src(), &[2, 3, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct PingPong<T> {
    a: Vec<T>,
    b: Vec<T>,
    /// If true, `a` is the source; otherwise `b` is.
    a_is_src: bool,
}

impl<T: Clone> PingPong<T> {
    /// Create a ping-pong pair with both buffers filled with `init`.
    pub fn new(len: usize, init: T) -> Self {
        Self {
            a: vec![init.clone(); len],
            b: vec![init; len],
            a_is_src: true,
        }
    }

    /// Create a ping-pong pair whose source is `v` (destination is a clone).
    pub fn from_vec(v: Vec<T>) -> Self {
        let b = v.clone();
        Self {
            a: v,
            b,
            a_is_src: true,
        }
    }
}

impl<T> PingPong<T> {
    /// Length of each buffer.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// The current source buffer.
    pub fn src(&self) -> &[T] {
        if self.a_is_src {
            &self.a
        } else {
            &self.b
        }
    }

    /// The current destination buffer (mutable).
    pub fn dst_mut(&mut self) -> &mut [T] {
        if self.a_is_src {
            &mut self.b
        } else {
            &mut self.a
        }
    }

    /// Borrow source (shared) and destination (mutable) simultaneously —
    /// the shape every ping-pong kernel needs.
    pub fn src_dst_mut(&mut self) -> (&[T], &mut [T]) {
        if self.a_is_src {
            (&self.a, &mut self.b)
        } else {
            (&self.b, &mut self.a)
        }
    }

    /// Flip source and destination.
    pub fn swap(&mut self) {
        self.a_is_src = !self.a_is_src;
    }

    /// Consume and return the current source buffer.
    pub fn into_src(self) -> Vec<T> {
        if self.a_is_src {
            self.a
        } else {
            self.b
        }
    }
}

/// A reusable device buffer: keeps its allocation alive across kernel
/// iterations so per-iteration `Vec` churn (a `cudaMalloc`/`cudaFree` pair
/// per loop trip, in GPU terms) is replaced by a one-time allocation that
/// only grows. The paper's pipeline allocates every working buffer once up
/// front; `Reusable` is how host-side loops get the same behavior.
///
/// ```
/// let mut buf = lf_kernel::Reusable::<u32>::new();
/// let s = buf.filled(4, 7);
/// s[0] = 1;
/// assert_eq!(buf.as_slice(), &[1, 7, 7, 7]);
/// let v = buf.cleared(16);
/// v.push(3);
/// assert_eq!(buf.as_slice(), &[3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reusable<T> {
    buf: Vec<T>,
}

impl<T> Reusable<T> {
    /// An empty buffer; allocates lazily on first use.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// An empty buffer with `cap` elements pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Resize to exactly `len` elements, every one set to `fill`
    /// (stale contents are overwritten), and return the slice.
    pub fn filled(&mut self, len: usize, fill: T) -> &mut [T]
    where
        T: Clone,
    {
        self.buf.clear();
        self.buf.resize(len, fill);
        &mut self.buf
    }

    /// Clear, reserve room for `cap` elements, and return the `Vec` for
    /// push-style filling (e.g. as a compaction output).
    pub fn cleared(&mut self, cap: usize) -> &mut Vec<T> {
        self.buf.clear();
        self.buf.reserve(cap);
        &mut self.buf
    }

    /// The current contents.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// The current contents, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether there are no live elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A shared view over a mutable slice that permits concurrent writes to
/// *disjoint* indices from multiple threads — the CPU analog of a CUDA
/// scatter kernel writing to global memory.
///
/// # Safety contract
///
/// [`ScatterSlice::write`] is `unsafe`: the caller must guarantee that no
/// index is written by more than one thread during the lifetime of the view
/// and that nothing reads the slice concurrently. Bounds are always
/// checked. This is exactly the guarantee a correct GPU scatter kernel
/// provides (each thread owns its output element, e.g. because indices come
/// from a permutation).
pub struct ScatterSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: `ScatterSlice` only allows writes through `unsafe fn write`,
// whose contract requires disjoint indices across threads; under that
// contract no data race can occur.
unsafe impl<'a, T: Send + Sync> Sync for ScatterSlice<'a, T> {}
unsafe impl<'a, T: Send + Sync> Send for ScatterSlice<'a, T> {}

impl<'a, T> ScatterSlice<'a, T> {
    /// Wrap a mutable slice. The `&mut` borrow guarantees exclusivity for
    /// the view's lifetime; race freedom *between* `write` calls is the
    /// caller's obligation (see type-level docs).
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` and `&[UnsafeCell<T>]` have identical layout
        // and the original unique borrow is consumed by this view.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may write the same `index` during this view's
    /// lifetime, and the underlying slice must not be read concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.data.len(), "ScatterSlice index out of bounds");
        *self.data[index].get() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pingpong_roundtrip() {
        let mut pp = PingPong::new(4, 0u32);
        assert_eq!(pp.len(), 4);
        assert!(!pp.is_empty());
        {
            let (src, dst) = pp.src_dst_mut();
            for (i, d) in dst.iter_mut().enumerate() {
                *d = src[i] + i as u32;
            }
        }
        pp.swap();
        assert_eq!(pp.src(), &[0, 1, 2, 3]);
        pp.dst_mut()[0] = 99;
        pp.swap();
        assert_eq!(pp.src()[0], 99);
        assert_eq!(pp.into_src()[0], 99);
    }

    #[test]
    fn reusable_keeps_capacity() {
        let mut buf = Reusable::<u32>::with_capacity(8);
        assert!(buf.is_empty());
        let s = buf.filled(100, 9);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&x| x == 9));
        let cap = buf.buf.capacity();
        let v = buf.cleared(50);
        v.extend(0..50u32);
        assert_eq!(buf.len(), 50);
        assert_eq!(buf.as_slice()[49], 49);
        assert!(buf.buf.capacity() >= cap, "cleared() must not shrink");
        // filled() after a larger use overwrites stale contents entirely.
        let s = buf.filled(3, 0);
        assert_eq!(s, &[0, 0, 0]);
        buf.as_mut_slice()[1] = 5;
        assert_eq!(buf.as_slice(), &[0, 5, 0]);
    }

    #[test]
    fn pingpong_from_vec() {
        let pp = PingPong::from_vec(vec![7u8; 3]);
        assert_eq!(pp.src(), &[7, 7, 7]);
    }

    #[test]
    fn scatter_parallel_permutation() {
        let n = 10_000usize;
        // permutation: reverse
        let mut out = vec![0u64; n];
        {
            let view = ScatterSlice::new(&mut out);
            (0..n).into_par_iter().for_each(|i| {
                // SAFETY: `n - 1 - i` is a bijection of i; indices disjoint.
                unsafe { view.write(n - 1 - i, i as u64) };
            });
        }
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (n - 1 - i) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scatter_bounds_checked() {
        let mut v = vec![0u8; 2];
        let s = ScatterSlice::new(&mut v);
        unsafe { s.write(2, 1) };
    }
}
