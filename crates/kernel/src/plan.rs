//! The peephole kernel-fusion pass over the launch stream.
//!
//! Call sites that conceptually perform *two* primitives describe both as
//! [`PlanOp`]s — kernel id, input/output buffer ids, and the traffic each
//! half would declare — and ask the device whether the pair fuses
//! ([`crate::Device::plan_fuse`]). The rewrite rules generalize the PR-1
//! hand-fusion of confirmed-slot counting into the confirm kernel:
//!
//! * **map→reduce** — a map whose output buffer feeds only the following
//!   reduction keeps its values in registers; the intermediate buffer is
//!   never materialized (`count_slots`, `cycle_check`).
//! * **scan→scatter** — a flag scan whose offsets feed only the following
//!   scatter re-derives offsets per chunk instead of writing them out
//!   (stream compaction, radix-sort passes).
//! * **confirm→count** — the confirm kernel accumulates the confirmed-slot
//!   count with an `atomicAdd`-style side counter instead of a follow-up
//!   reduction over the slot table (the PR-1 instance).
//!
//! **Legality.** A pair `(a, b)` fuses only when `b` reads a buffer `a`
//! writes (true producer→consumer adjacency, checked by buffer id) *and*
//! the intermediate is local to the pair — the call sites that emit plans
//! guarantee nothing else observes the intermediate, which is why the
//! pass is a peephole over adjacent pairs rather than a global dataflow
//! analysis. Fused and unfused executions are bit-identical by
//! construction (the differential suite enforces this on both backends);
//! only launch count and declared traffic differ.

use crate::device::Traffic;
use std::sync::atomic::{AtomicU64, Ordering};

/// Opaque identity of a device buffer, derived from its host address.
/// Used only for producer→consumer adjacency checks within one plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufId(usize);

impl BufId {
    /// Identity of an existing slice.
    pub fn of<T>(s: &[T]) -> Self {
        BufId(s.as_ptr() as usize)
    }

    /// Identity of the intermediate buffer an *unfused* execution would
    /// materialize (fused executions never allocate it). Derived from the
    /// producer's input so the id is stable whether or not fusion fires;
    /// tagged to never collide with a real [`BufId::of`] base address
    /// (slices are at least element-aligned).
    pub fn virtual_of<T>(s: &[T]) -> Self {
        BufId((s.as_ptr() as usize) | 1)
    }

    /// An explicit raw id (tests, scalar outputs).
    pub fn raw(id: usize) -> Self {
        BufId(id)
    }
}

/// Dataflow class of a planned op — what the rewrite rules match on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Elementwise producer.
    Map,
    /// Monoid reduction consumer.
    Reduce,
    /// Prefix scan producing offsets.
    Scan,
    /// Scatter consuming offsets.
    Scatter,
    /// Mutual-confirmation producer.
    Confirm,
    /// Slot-count consumer.
    Count,
    /// Anything the pass leaves alone.
    Other,
}

/// One op of a [`LaunchPlan`]: what a kernel launch would be, described
/// before it runs.
#[derive(Clone, Debug)]
pub struct PlanOp {
    /// Kernel name the launch would record.
    pub name: String,
    /// Rewrite class.
    pub class: OpClass,
    /// Buffers the op reads.
    pub reads: Vec<BufId>,
    /// Buffers the op writes.
    pub writes: Vec<BufId>,
    /// Traffic the op would declare if launched on its own.
    pub traffic: Traffic,
}

impl PlanOp {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        class: OpClass,
        reads: Vec<BufId>,
        writes: Vec<BufId>,
        traffic: Traffic,
    ) -> Self {
        Self {
            name: name.into(),
            class,
            reads,
            writes,
            traffic,
        }
    }
}

/// A fusion rewrite rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// map→reduce.
    MapReduce,
    /// scan→scatter.
    ScanScatter,
    /// confirm→count.
    ConfirmCount,
}

/// Which rule (if any) rewrites the adjacent pair `(a, b)`.
fn rule_for(a: &PlanOp, b: &PlanOp) -> Option<Rule> {
    let rule = match (a.class, b.class) {
        (OpClass::Map, OpClass::Reduce) => Rule::MapReduce,
        (OpClass::Scan, OpClass::Scatter) => Rule::ScanScatter,
        (OpClass::Confirm, OpClass::Count) => Rule::ConfirmCount,
        _ => return None,
    };
    // Producer→consumer adjacency: the consumer must read something the
    // producer writes, otherwise the pair is merely textually adjacent.
    let adjacent = b.reads.iter().any(|r| a.writes.contains(r));
    adjacent.then_some(rule)
}

/// A short sequence of planned ops (the IR the peephole pass runs over).
#[derive(Clone, Debug, Default)]
pub struct LaunchPlan {
    ops: Vec<PlanOp>,
}

impl LaunchPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an op.
    pub fn push(&mut self, op: PlanOp) {
        self.ops.push(op);
    }

    /// The planned ops.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Run the peephole pass: return `(i, rule)` for every adjacent pair
    /// `(ops[i], ops[i+1])` a rule rewrites. A greedy left-to-right scan;
    /// an op consumed by a fusion does not start another one.
    pub fn peephole(&self) -> Vec<(usize, Rule)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < self.ops.len() {
            if let Some(rule) = rule_for(&self.ops[i], &self.ops[i + 1]) {
                out.push((i, rule));
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Traffic of the fused pair `(a, b)`: each buffer of the pair is
    /// counted once, minus the intermediate the fusion eliminates (its
    /// write in `a` and its read in `b`).
    pub fn fused_traffic(a: &PlanOp, b: &PlanOp) -> Traffic {
        let mut t = a.traffic + b.traffic;
        for w in &a.writes {
            if b.reads.contains(w) {
                // The eliminated intermediate: symmetric by construction
                // (unfused write bytes == unfused read bytes).
                let elided = a.traffic.written.min(b.traffic.read);
                t.written -= elided;
                t.read -= elided;
                break;
            }
        }
        t
    }
}

/// Per-rule fusion counters of one device, cleared by
/// [`crate::Device::reset_stats`] alongside `DeviceStats` (the fig3
/// warm-up boundary and `repro` reps must not leak warm-up fusions into
/// measured reps).
#[derive(Debug, Default)]
pub struct FusionCounters {
    attempted: AtomicU64,
    map_reduce: AtomicU64,
    scan_scatter: AtomicU64,
    confirm_count: AtomicU64,
}

impl FusionCounters {
    /// Record one planned pair and whether/by which rule it fused.
    pub fn record(&self, fired: Option<Rule>) {
        self.attempted.fetch_add(1, Ordering::Relaxed);
        match fired {
            Some(Rule::MapReduce) => self.map_reduce.fetch_add(1, Ordering::Relaxed),
            Some(Rule::ScanScatter) => self.scan_scatter.fetch_add(1, Ordering::Relaxed),
            Some(Rule::ConfirmCount) => self.confirm_count.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.attempted.store(0, Ordering::Relaxed);
        self.map_reduce.store(0, Ordering::Relaxed);
        self.scan_scatter.store(0, Ordering::Relaxed);
        self.confirm_count.store(0, Ordering::Relaxed);
    }

    /// Snapshot.
    pub fn snapshot(&self) -> FusionStats {
        FusionStats {
            attempted: self.attempted.load(Ordering::Relaxed),
            map_reduce: self.map_reduce.load(Ordering::Relaxed),
            scan_scatter: self.scan_scatter.load(Ordering::Relaxed),
            confirm_count: self.confirm_count.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a device's fusion activity since the last
/// [`crate::Device::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Pairs submitted to the pass.
    pub attempted: u64,
    /// Pairs fused by map→reduce.
    pub map_reduce: u64,
    /// Pairs fused by scan→scatter.
    pub scan_scatter: u64,
    /// Pairs fused by confirm→count.
    pub confirm_count: u64,
}

impl FusionStats {
    /// Total pairs fused (launches saved vs the unfused stream).
    pub fn fused(&self) -> u64 {
        self.map_reduce + self.scan_scatter + self.confirm_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, class: OpClass, reads: Vec<BufId>, writes: Vec<BufId>) -> PlanOp {
        PlanOp::new(name, class, reads, writes, Traffic::bytes(64, 64))
    }

    #[test]
    fn adjacent_map_reduce_fuses() {
        let data = BufId::raw(0x1000);
        let tmp = BufId::raw(0x2000);
        let mut plan = LaunchPlan::new();
        plan.push(op("m", OpClass::Map, vec![data], vec![tmp]));
        plan.push(op("r", OpClass::Reduce, vec![tmp], vec![BufId::raw(0x3000)]));
        assert_eq!(plan.peephole(), vec![(0, Rule::MapReduce)]);
    }

    #[test]
    fn non_adjacent_buffers_do_not_fuse() {
        let mut plan = LaunchPlan::new();
        plan.push(op("m", OpClass::Map, vec![BufId::raw(1)], vec![BufId::raw(2)]));
        // reduce reads an unrelated buffer: classes match, dataflow doesn't
        plan.push(op("r", OpClass::Reduce, vec![BufId::raw(9)], vec![BufId::raw(3)]));
        assert!(plan.peephole().is_empty());
    }

    #[test]
    fn greedy_scan_does_not_reuse_consumed_ops() {
        // map → reduce → scatter: the reduce is consumed by the first
        // pair and cannot also be the producer of a second one.
        let a = BufId::raw(1);
        let b = BufId::raw(2);
        let c = BufId::raw(3);
        let mut plan = LaunchPlan::new();
        plan.push(op("m", OpClass::Map, vec![a], vec![b]));
        plan.push(op("r", OpClass::Reduce, vec![b], vec![c]));
        plan.push(op("s", OpClass::Scatter, vec![c], vec![BufId::raw(4)]));
        assert_eq!(plan.peephole(), vec![(0, Rule::MapReduce)]);
    }

    #[test]
    fn all_three_rules_match() {
        let x = BufId::raw(10);
        let y = BufId::raw(20);
        for (ca, cb, rule) in [
            (OpClass::Map, OpClass::Reduce, Rule::MapReduce),
            (OpClass::Scan, OpClass::Scatter, Rule::ScanScatter),
            (OpClass::Confirm, OpClass::Count, Rule::ConfirmCount),
        ] {
            let mut plan = LaunchPlan::new();
            plan.push(op("a", ca, vec![x], vec![y]));
            plan.push(op("b", cb, vec![y], vec![BufId::raw(30)]));
            assert_eq!(plan.peephole(), vec![(0, rule)], "{rule:?}");
        }
    }

    #[test]
    fn fused_traffic_elides_the_intermediate() {
        let data = BufId::raw(1);
        let tmp = BufId::raw(2);
        let a = PlanOp::new(
            "m",
            OpClass::Map,
            vec![data],
            vec![tmp],
            Traffic::bytes(1000, 400),
        );
        let b = PlanOp::new(
            "r",
            OpClass::Reduce,
            vec![tmp],
            vec![BufId::raw(3)],
            Traffic::bytes(400, 8),
        );
        let t = LaunchPlan::fused_traffic(&a, &b);
        assert_eq!(t, Traffic::bytes(1000, 8));
    }

    #[test]
    fn counters_record_and_reset() {
        let c = FusionCounters::default();
        c.record(Some(Rule::MapReduce));
        c.record(Some(Rule::ConfirmCount));
        c.record(None);
        let s = c.snapshot();
        assert_eq!(s.attempted, 3);
        assert_eq!(s.fused(), 2);
        assert_eq!(s.map_reduce, 1);
        assert_eq!(s.confirm_count, 1);
        assert_eq!(s.scan_scatter, 0);
        c.reset();
        assert_eq!(c.snapshot(), FusionStats::default());
    }

    #[test]
    fn virtual_ids_do_not_collide_with_real_ones() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_ne!(BufId::of(&v), BufId::virtual_of(&v));
    }
}
