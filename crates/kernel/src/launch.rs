//! Typed kernel-launch wrappers.
//!
//! CUDA kernels in the paper have the shape "for v ∈ V do in parallel:
//! write out(v) := f(inputs)". These wrappers express that shape safely:
//! each output element is owned by exactly one logical thread, inputs are
//! captured immutably by the closure. Traffic for the *outputs* is derived
//! from the element types automatically; traffic for the *inputs* is
//! declared by the caller in bytes (kernels know what they read — exactly
//! like the paper's Table 2 enumerates read buffers).

use crate::backend::KernelClass;
use crate::device::{Device, Traffic};
use rayon::prelude::*;

#[inline]
fn run_indexed<O: Send + Sync>(out: &mut [O], par_threshold: usize, f: impl Fn(usize) -> O + Sync) {
    if out.len() < par_threshold {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
    } else {
        out.par_iter_mut().enumerate().for_each(|(i, o)| *o = f(i));
    }
}

/// Launch a kernel writing one output slice: `out[i] = f(i)`.
///
/// `read_bytes` declares the input traffic; output traffic is derived from
/// `out`'s length and element size.
pub fn map1<O: Send + Sync>(
    dev: &Device,
    name: &str,
    out: &mut [O],
    read_bytes: usize,
    f: impl Fn(usize) -> O + Sync,
) {
    let traffic = Traffic::new()
        .read_bytes(read_bytes as u64)
        .writes::<O>(out.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || run_indexed(out, thr, f));
}

/// Launch a kernel writing two output slices of equal length:
/// `(a[i], b[i]) = f(i)`.
pub fn map2<A: Send + Sync, B: Send + Sync>(
    dev: &Device,
    name: &str,
    a: &mut [A],
    b: &mut [B],
    read_bytes: usize,
    f: impl Fn(usize) -> (A, B) + Sync,
) {
    assert_eq!(a.len(), b.len(), "map2 output length mismatch");
    let traffic = Traffic::new()
        .read_bytes(read_bytes as u64)
        .writes::<A>(a.len())
        .writes::<B>(b.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if a.len() < thr {
            for (i, (ai, bi)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                let (x, y) = f(i);
                *ai = x;
                *bi = y;
            }
        } else {
            a.par_iter_mut()
                .zip_eq(b.par_iter_mut())
                .enumerate()
                .for_each(|(i, (ai, bi))| {
                    let (x, y) = f(i);
                    *ai = x;
                    *bi = y;
                });
        }
    });
}

/// Launch a kernel writing three output slices of equal length.
pub fn map3<A: Send + Sync, B: Send + Sync, C: Send + Sync>(
    dev: &Device,
    name: &str,
    a: &mut [A],
    b: &mut [B],
    c: &mut [C],
    read_bytes: usize,
    f: impl Fn(usize) -> (A, B, C) + Sync,
) {
    assert_eq!(a.len(), b.len(), "map3 output length mismatch");
    assert_eq!(a.len(), c.len(), "map3 output length mismatch");
    let traffic = Traffic::new()
        .read_bytes(read_bytes as u64)
        .writes::<A>(a.len())
        .writes::<B>(b.len())
        .writes::<C>(c.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if a.len() < thr {
            for i in 0..a.len() {
                let (x, y, z) = f(i);
                a[i] = x;
                b[i] = y;
                c[i] = z;
            }
        } else {
            a.par_iter_mut()
                .zip_eq(b.par_iter_mut())
                .zip_eq(c.par_iter_mut())
                .enumerate()
                .for_each(|(i, ((ai, bi), ci))| {
                    let (x, y, z) = f(i);
                    *ai = x;
                    *bi = y;
                    *ci = z;
                });
        }
    });
}

/// Launch an *in-place update* kernel: `inout[i] = f(i, inout[i])`.
/// Counts the slice both as read and written.
pub fn update1<T: Send + Sync + Copy>(
    dev: &Device,
    name: &str,
    inout: &mut [T],
    extra_read_bytes: usize,
    f: impl Fn(usize, T) -> T + Sync,
) {
    let traffic = Traffic::new()
        .reads::<T>(inout.len())
        .read_bytes(extra_read_bytes as u64)
        .writes::<T>(inout.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if inout.len() < thr {
            for (i, v) in inout.iter_mut().enumerate() {
                *v = f(i, *v);
            }
        } else {
            inout
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, v)| *v = f(i, *v));
        }
    });
}

/// Launch a side-effect-only kernel over an index space. The closure must
/// be race free by construction (e.g. writes through [`crate::ScatterSlice`]
/// at disjoint indices, or atomics). All traffic is declared explicitly.
pub fn for_each_index(
    dev: &Device,
    name: &str,
    n: usize,
    traffic: Traffic,
    f: impl Fn(usize) + Sync + Send,
) {
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if n < thr {
            for i in 0..n {
                f(i);
            }
        } else {
            (0..n).into_par_iter().for_each(f);
        }
    });
}

/// Fill kernel: `out[i] = value`.
pub fn fill<T: Send + Sync + Clone>(dev: &Device, name: &str, out: &mut [T], value: T) {
    let traffic = Traffic::new().writes::<T>(out.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if out.len() < thr {
            out.fill(value);
        } else {
            out.par_iter_mut().for_each(|o| *o = value.clone());
        }
    });
}

/// Device-to-device copy kernel (the paper's `π' ← π` copies).
pub fn copy<T: Send + Sync + Copy>(dev: &Device, name: &str, dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "copy length mismatch");
    let traffic = Traffic::new().reads::<T>(src.len()).writes::<T>(dst.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if dst.len() < thr {
            dst.copy_from_slice(src);
        } else {
            dst.par_iter_mut()
                .zip_eq(src.par_iter())
                .for_each(|(d, s)| *d = *s);
        }
    });
}

/// Gather kernel: `out[i] = src[idx[i]]`.
pub fn gather<T: Send + Sync + Copy>(
    dev: &Device,
    name: &str,
    out: &mut [T],
    idx: &[u32],
    src: &[T],
) {
    assert_eq!(out.len(), idx.len(), "gather length mismatch");
    let traffic = Traffic::new()
        .reads::<u32>(idx.len())
        .reads::<T>(out.len())
        .writes::<T>(out.len());
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(name, traffic, || {
        if out.len() < thr {
            for (o, &j) in out.iter_mut().zip(idx) {
                *o = src[j as usize];
            }
        } else {
            out.par_iter_mut()
                .zip_eq(idx.par_iter())
                .for_each(|(o, &j)| *o = src[j as usize]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map1_small_and_large() {
        let dev = Device::default();
        for n in [5usize, 10_000] {
            let mut out = vec![0u64; n];
            map1(&dev, "sq", &mut out, 0, |i| (i * i) as u64);
            assert!(out.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
        }
        assert_eq!(dev.stats().launches, 2);
    }

    #[test]
    fn map2_zips() {
        let dev = Device::default();
        let mut a = vec![0u32; 100];
        let mut b = vec![0.0f32; 100];
        map2(&dev, "k", &mut a, &mut b, 0, |i| (i as u32, i as f32 * 0.5));
        assert_eq!(a[10], 10);
        assert_eq!(b[10], 5.0);
    }

    #[test]
    fn map3_zips() {
        let dev = Device::default();
        let n = 5000;
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        let mut c = vec![0u8; n];
        map3(&dev, "k", &mut a, &mut b, &mut c, 0, |i| {
            (i as u32, 2 * i as u32, (i % 251) as u8)
        });
        assert_eq!(a[4999], 4999);
        assert_eq!(b[4999], 9998);
        assert_eq!(c[4999], (4999 % 251) as u8);
    }

    #[test]
    fn update_in_place() {
        let dev = Device::default();
        let mut v: Vec<u32> = (0..4096).collect();
        update1(&dev, "inc", &mut v, 0, |_, x| x + 1);
        assert_eq!(v[0], 1);
        assert_eq!(v[4095], 4096);
        let s = dev.stats();
        // read + write of 4096 u32 each
        assert_eq!(s.traffic.read, 4096 * 4);
        assert_eq!(s.traffic.written, 4096 * 4);
    }

    #[test]
    fn fill_and_copy() {
        let dev = Device::default();
        let mut a = vec![0u16; 3000];
        fill(&dev, "f", &mut a, 7);
        assert!(a.iter().all(|&x| x == 7));
        let mut b = vec![0u16; 3000];
        copy(&dev, "c", &mut b, &a);
        assert_eq!(a, b);
    }

    #[test]
    fn gather_indexes() {
        let dev = Device::default();
        let src: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let idx: Vec<u32> = (0..50).map(|i| 99 - i).collect();
        let mut out = vec![0u64; 50];
        gather(&dev, "g", &mut out, &idx, &src);
        assert_eq!(out[0], 990);
        assert_eq!(out[49], 500);
    }

    #[test]
    fn for_each_scatter() {
        use crate::buffer::ScatterSlice;
        let dev = Device::default();
        let n = 10_000;
        let mut out = vec![0u32; n];
        {
            let view = ScatterSlice::new(&mut out);
            for_each_index(&dev, "scatter", n, Traffic::new().writes::<u32>(n), |i| {
                // SAFETY: bijective index mapping.
                unsafe { view.write((i * 7919) % n, i as u32) };
            });
        }
        let mut seen = vec![false; n];
        for (j, &v) in out.iter().enumerate() {
            assert_eq!((v as usize * 7919) % n, j);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }
}
