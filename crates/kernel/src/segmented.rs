//! Segmented primitives — the `DeviceSegmentedReduce` / `DeviceSegmentedSort`
//! equivalents of CUB that the paper benchmarks against (Sec. 5.2.1).
//! Segments are given CSR-style as an offsets array of length
//! `num_segments + 1`.

use crate::backend::KernelClass;
use crate::device::{Device, Traffic};
use rayon::prelude::*;

/// Reduce every segment independently:
/// `out[s] = identity ⊕ data[offsets[s]] ⊕ … ⊕ data[offsets[s+1]−1]`.
pub fn segmented_reduce<T, A>(
    dev: &Device,
    name: &str,
    offsets: &[usize],
    data: &[T],
    identity: A,
    map: impl Fn(&T) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync,
) -> Vec<A>
where
    T: Sync,
    A: Send + Sync + Clone,
{
    assert!(!offsets.is_empty(), "offsets needs num_segments + 1 entries");
    assert_eq!(*offsets.last().unwrap(), data.len(), "offsets must cover data");
    let nseg = offsets.len() - 1;
    let traffic = Traffic::new()
        .reads::<T>(data.len())
        .reads::<usize>(offsets.len())
        .read_bytes(0)
        .writes::<A>(nseg);
    let thr = dev.par_threshold(KernelClass::Segmented);
    dev.launch(name, traffic, || {
        let body = |s: usize| {
            data[offsets[s]..offsets[s + 1]]
                .iter()
                .fold(identity.clone(), |acc, x| combine(acc, map(x)))
        };
        if nseg < thr {
            (0..nseg).map(body).collect()
        } else {
            (0..nseg).into_par_iter().map(body).collect()
        }
    })
}

/// Sort the `u64` keys of every segment ascending, in place.
pub fn segmented_sort_u64(dev: &Device, name: &str, offsets: &[usize], keys: &mut [u64]) {
    segmented_sort_pairs_u64(dev, name, offsets, keys, &mut []);
}

/// Sort `(key, value)` pairs within every segment by key ascending, in
/// place (stable). `vals` may be empty for key-only sorting; otherwise it
/// must match `keys` in length.
pub fn segmented_sort_pairs_u64(
    dev: &Device,
    name: &str,
    offsets: &[usize],
    keys: &mut [u64],
    vals: &mut [u32],
) {
    assert!(!offsets.is_empty(), "offsets needs num_segments + 1 entries");
    assert_eq!(*offsets.last().unwrap(), keys.len(), "offsets must cover keys");
    let with_vals = !vals.is_empty();
    if with_vals {
        assert_eq!(vals.len(), keys.len(), "key/value length mismatch");
    }
    let nseg = offsets.len() - 1;
    let traffic = Traffic::new()
        .reads::<u64>(keys.len())
        .reads::<usize>(offsets.len())
        .writes::<u64>(keys.len())
        .read_bytes(if with_vals { (vals.len() * 4) as u64 } else { 0 })
        .written_bytes(if with_vals { (vals.len() * 4) as u64 } else { 0 });
    let thr = dev.par_threshold(KernelClass::Segmented);
    dev.launch(name, traffic, || {
        // Parallelize across segments; within a segment sort sequentially
        // (the CUB scheme assigns segments to blocks the same way). Slices
        // are produced by repeated split_at_mut so rayon can own them.
        let mut key_slices: Vec<&mut [u64]> = Vec::with_capacity(nseg);
        let mut val_slices: Vec<&mut [u32]> = Vec::with_capacity(nseg);
        {
            let mut krest: &mut [u64] = keys;
            let mut vrest: &mut [u32] = vals;
            for s in 0..nseg {
                let len = offsets[s + 1] - offsets[s];
                let (k, kr) = krest.split_at_mut(len);
                krest = kr;
                key_slices.push(k);
                if with_vals {
                    let (v, vr) = vrest.split_at_mut(len);
                    vrest = vr;
                    val_slices.push(v);
                }
            }
        }
        let sort_one = |k: &mut [u64], v: Option<&mut [u32]>| match v {
            None => k.sort_unstable(),
            Some(v) => {
                let mut idx: Vec<u32> = (0..k.len() as u32).collect();
                idx.sort_by_key(|&i| k[i as usize]);
                let ks: Vec<u64> = idx.iter().map(|&i| k[i as usize]).collect();
                let vs: Vec<u32> = idx.iter().map(|&i| v[i as usize]).collect();
                k.copy_from_slice(&ks);
                v.copy_from_slice(&vs);
            }
        };
        if with_vals {
            if nseg < thr {
                for (k, v) in key_slices.into_iter().zip(val_slices) {
                    sort_one(k, Some(v));
                }
            } else {
                key_slices
                    .into_par_iter()
                    .zip(val_slices.into_par_iter())
                    .for_each(|(k, v)| sort_one(k, Some(v)));
            }
        } else if nseg < thr {
            for k in key_slices {
                sort_one(k, None);
            }
        } else {
            key_slices.into_par_iter().for_each(|k| sort_one(k, None));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_segments(n: usize, seed: u64) -> (Vec<usize>, Vec<u64>) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut offsets = vec![0usize];
        while *offsets.last().unwrap() < n {
            let next = (offsets.last().unwrap() + rng.random_range(0..20)).min(n);
            offsets.push(next);
        }
        let data: Vec<u64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
        (offsets, data)
    }

    #[test]
    fn segmented_reduce_sums() {
        let dev = Device::default();
        let offsets = vec![0usize, 3, 3, 7];
        let data = vec![1u64, 2, 3, 10, 20, 30, 40];
        let out = segmented_reduce(&dev, "sr", &offsets, &data, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(out, vec![6, 0, 100]);
    }

    #[test]
    fn segmented_reduce_min_random() {
        let dev = Device::default();
        let (offsets, data) = random_segments(5000, 3);
        let out = segmented_reduce(&dev, "sr", &offsets, &data, u64::MAX, |&x| x, |a, b| {
            a.min(b)
        });
        for s in 0..offsets.len() - 1 {
            let want = data[offsets[s]..offsets[s + 1]]
                .iter()
                .copied()
                .min()
                .unwrap_or(u64::MAX);
            assert_eq!(out[s], want, "segment {s}");
        }
    }

    #[test]
    fn segmented_sort_sorts_each_segment_only() {
        let dev = Device::default();
        let (offsets, mut keys) = random_segments(4000, 7);
        let orig = keys.clone();
        segmented_sort_u64(&dev, "ss", &offsets, &mut keys);
        for s in 0..offsets.len() - 1 {
            let seg = &keys[offsets[s]..offsets[s + 1]];
            assert!(seg.windows(2).all(|w| w[0] <= w[1]), "segment {s} unsorted");
            let mut want = orig[offsets[s]..offsets[s + 1]].to_vec();
            want.sort_unstable();
            assert_eq!(seg, &want[..], "segment {s} not a permutation");
        }
    }

    #[test]
    fn segmented_sort_pairs_stable() {
        let dev = Device::default();
        let offsets = vec![0usize, 4, 6];
        let mut keys = vec![2u64, 1, 2, 1, 9, 3];
        let mut vals = vec![0u32, 1, 2, 3, 4, 5];
        segmented_sort_pairs_u64(&dev, "sp", &offsets, &mut keys, &mut vals);
        assert_eq!(keys, vec![1, 1, 2, 2, 3, 9]);
        assert_eq!(vals, vec![1, 3, 0, 2, 5, 4]);
    }

    #[test]
    fn empty_segments_and_data() {
        let dev = Device::default();
        let out = segmented_reduce(&dev, "sr", &[0usize], &[] as &[u64], 0u64, |&x| x, |a, b| a + b);
        assert!(out.is_empty());
        let mut keys: Vec<u64> = vec![];
        segmented_sort_u64(&dev, "ss", &[0usize, 0, 0], &mut keys);
    }
}
