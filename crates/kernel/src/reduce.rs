//! Parallel reductions over device buffers.
//!
//! A reduction is a single kernel launch that reads its input once and
//! writes O(1) output; we account traffic accordingly. Operators must be
//! associative and commutative monoids with an explicit identity (the same
//! contract CUB's `DeviceReduce` imposes).
//!
//! [`map_reduce`] and [`map_max_by_key`] are map→reduce pairs under the
//! peephole fusion pass: fused (the default) the mapped values never
//! touch memory and the pair is one launch; unfused, a first launch
//! materializes the mapped buffer and a second reduces it. Both forms
//! return bit-identical results for the exact (integer / min / max)
//! monoids the pipeline uses.

use crate::backend::KernelClass;
use crate::device::{Device, Traffic};
use crate::plan::{BufId, LaunchPlan, OpClass, PlanOp};
use rayon::prelude::*;

/// Sequential monoid fold, lane-chunked when the backend asks for it:
/// `lanes` independent accumulators make the inner loop branch-free and
/// auto-vectorizable. Chunking reassociates, which is exact for the
/// integer/min/max monoids; backends only enable it knowing that
/// (`f64` sums go through [`sum_f64`], documented as
/// reassociation-sensitive like any parallel GPU reduction).
fn fold_seq<T, A>(
    data: &[T],
    lanes: Option<usize>,
    identity: &A,
    map: &(impl Fn(&T) -> A + Sync),
    combine: &(impl Fn(A, A) -> A + Sync),
) -> A
where
    A: Clone,
{
    match lanes {
        Some(c) if c > 1 && data.len() >= 2 * c => {
            let mut accs: Vec<A> = vec![identity.clone(); c];
            let mut chunks = data.chunks_exact(c);
            for chunk in chunks.by_ref() {
                for (a, x) in accs.iter_mut().zip(chunk) {
                    let prev = a.clone();
                    *a = combine(prev, map(x));
                }
            }
            let mut acc = accs
                .into_iter()
                .reduce(combine)
                .expect("c > 1 accumulators");
            for x in chunks.remainder() {
                acc = combine(acc, map(x));
            }
            acc
        }
        _ => data
            .iter()
            .fold(identity.clone(), |acc, x| combine(acc, map(x))),
    }
}

/// Generic monoid reduction: `identity ⊕ data[0] ⊕ ... ⊕ data[n-1]`.
pub fn reduce<T, A>(
    dev: &Device,
    name: &str,
    data: &[T],
    identity: A,
    map: impl Fn(&T) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync,
) -> A
where
    T: Sync,
    A: Send + Sync + Clone,
{
    let traffic = Traffic::new().reads::<T>(data.len());
    let thr = dev.par_threshold(KernelClass::Reduce);
    let lanes = dev.backend().lane_chunk();
    dev.launch(name, traffic, || {
        if data.len() < thr {
            fold_seq(data, lanes, &identity, &map, &combine)
        } else {
            data.par_iter()
                .fold(
                    || identity.clone(),
                    |acc, x| combine(acc, map(x)),
                )
                .reduce(|| identity.clone(), &combine)
        }
    })
}

/// Fused-by-default map→reduce pair: semantically a `map_name` kernel
/// writing `map(x)` per element followed by a `reduce_name` reduction of
/// that buffer. Under the fusion pass (the default) the intermediate is
/// never materialized and the pair is the single `reduce_name` launch the
/// pipeline always had; with fusion disabled both kernels launch.
pub fn map_reduce<T, A>(
    dev: &Device,
    map_name: &str,
    reduce_name: &str,
    data: &[T],
    identity: A,
    map: impl Fn(&T) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync,
) -> A
where
    T: Sync,
    A: Send + Sync + Clone,
{
    let n = data.len();
    let map_op = PlanOp::new(
        map_name,
        OpClass::Map,
        vec![BufId::of(data)],
        vec![BufId::virtual_of(data)],
        Traffic::new().reads::<T>(n).writes::<A>(n),
    );
    let reduce_op = PlanOp::new(
        reduce_name,
        OpClass::Reduce,
        vec![BufId::virtual_of(data)],
        vec![BufId::raw(0)],
        Traffic::new().reads::<A>(n),
    );
    if dev.plan_fuse(map_op.clone(), reduce_op.clone()) {
        debug_assert_eq!(
            LaunchPlan::fused_traffic(&map_op, &reduce_op),
            Traffic::new().reads::<T>(n),
            "fused map→reduce must match the historical single-launch traffic"
        );
        return reduce(dev, reduce_name, data, identity, map, combine);
    }
    let mut tmp: Vec<A> = vec![identity.clone(); n];
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(&map_op.name, map_op.traffic, || {
        if n < thr {
            for (t, x) in tmp.iter_mut().zip(data) {
                *t = map(x);
            }
        } else {
            tmp.par_iter_mut()
                .zip_eq(data.par_iter())
                .for_each(|(t, x)| *t = map(x));
        }
    });
    reduce(dev, reduce_name, &tmp, identity, |x| x.clone(), combine)
}

/// Sum of an `f64`-convertible slice. Deterministic only up to floating
/// point reassociation, like any parallel GPU reduction.
pub fn sum_f64(dev: &Device, name: &str, data: &[f64]) -> f64 {
    reduce(dev, name, data, 0.0f64, |&x| x, |a, b| a + b)
}

/// Sum of a `u64` slice.
pub fn sum_u64(dev: &Device, name: &str, data: &[u64]) -> u64 {
    reduce(dev, name, data, 0u64, |&x| x, |a, b| a + b)
}

/// Count elements satisfying a predicate.
pub fn count<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> usize {
    reduce(
        dev,
        name,
        data,
        0usize,
        |x| usize::from(pred(x)),
        |a, b| a + b,
    )
}

/// Whether any element satisfies a predicate.
///
/// (No early exit — a GPU reduction reads everything anyway.)
pub fn any<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> bool {
    reduce(
        dev,
        name,
        data,
        false,
        |x| pred(x),
        |a, b| a || b,
    )
}

/// Index of the maximum element by a key function (first occurrence on the
/// sequential path; any argmax on the parallel path, as on a GPU).
/// Returns `None` for empty input.
pub fn max_by_key<T, K>(
    dev: &Device,
    name: &str,
    data: &[T],
    key: impl Fn(&T) -> K + Sync,
) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + Send + Clone,
{
    if data.is_empty() {
        return None;
    }
    let traffic = Traffic::new().reads::<T>(data.len());
    let thr = dev.par_threshold(KernelClass::Reduce);
    Some(dev.launch(name, traffic, || {
        if data.len() < thr {
            let mut bi = 0usize;
            let mut bk = key(&data[0]);
            for (i, x) in data.iter().enumerate().skip(1) {
                let k = key(x);
                if k > bk {
                    bk = k;
                    bi = i;
                }
            }
            bi
        } else {
            data.par_iter()
                .enumerate()
                .map(|(i, x)| (i, key(x)))
                .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
                .map(|(i, _)| i)
                .unwrap()
        }
    }))
}

/// Fused-by-default map→argmax pair (the `cycle_check` shape): a
/// `map_name` kernel computing the key per element feeding a
/// `reduce_name` argmax. Fused it is the single [`max_by_key`] launch;
/// unfused the key buffer is materialized first.
pub fn map_max_by_key<T, K>(
    dev: &Device,
    map_name: &str,
    reduce_name: &str,
    data: &[T],
    key: impl Fn(&T) -> K + Sync,
) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + Send + Sync + Copy + Default,
{
    if data.is_empty() {
        return None;
    }
    let n = data.len();
    let map_op = PlanOp::new(
        map_name,
        OpClass::Map,
        vec![BufId::of(data)],
        vec![BufId::virtual_of(data)],
        Traffic::new().reads::<T>(n).writes::<K>(n),
    );
    let reduce_op = PlanOp::new(
        reduce_name,
        OpClass::Reduce,
        vec![BufId::virtual_of(data)],
        vec![BufId::raw(0)],
        Traffic::new().reads::<K>(n),
    );
    if dev.plan_fuse(map_op.clone(), reduce_op.clone()) {
        return max_by_key(dev, reduce_name, data, key);
    }
    let mut keys: Vec<K> = vec![K::default(); n];
    let thr = dev.par_threshold(KernelClass::Map);
    dev.launch(&map_op.name, map_op.traffic, || {
        if n < thr {
            for (k, x) in keys.iter_mut().zip(data) {
                *k = key(x);
            }
        } else {
            keys.par_iter_mut()
                .zip_eq(data.par_iter())
                .for_each(|(k, x)| *k = key(x));
        }
    });
    max_by_key(dev, reduce_name, &keys, |k| *k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let dev = Device::default();
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = sum_f64(&dev, "sum", &v);
        assert!((s - (9999.0 * 10000.0 / 2.0)).abs() < 1e-6);
        let u: Vec<u64> = (0..100).collect();
        assert_eq!(sum_u64(&dev, "sumu", &u), 4950);
    }

    #[test]
    fn counting_and_any() {
        let dev = Device::default();
        let v: Vec<u32> = (0..50_000).collect();
        assert_eq!(count(&dev, "c", &v, |&x| x % 10 == 0), 5000);
        assert!(any(&dev, "a", &v, |&x| x == 49_999));
        assert!(!any(&dev, "a", &v, |&x| x == 50_000));
    }

    #[test]
    fn empty_reduce_is_identity() {
        let dev = Device::default();
        let v: Vec<f64> = vec![];
        assert_eq!(sum_f64(&dev, "s", &v), 0.0);
        assert_eq!(max_by_key(&dev, "m", &v, |&x| x), None);
    }

    #[test]
    fn max_by_key_finds_argmax() {
        let dev = Device::default();
        let mut v: Vec<i64> = (0..9000).map(|i| (i * 37) % 1000).collect();
        v[7777] = 100_000;
        assert_eq!(max_by_key(&dev, "m", &v, |&x| x), Some(7777));
        // small path
        let w = vec![3i64, 9, 1];
        assert_eq!(max_by_key(&dev, "m", &w, |&x| x), Some(1));
    }

    #[test]
    fn generic_reduce_custom_monoid() {
        let dev = Device::default();
        let v: Vec<u32> = (1..=6000).collect();
        // min-monoid
        let m = reduce(&dev, "min", &v, u32::MAX, |&x| x, |a, b| a.min(b));
        assert_eq!(m, 1);
    }

    #[test]
    fn lane_chunked_fold_matches_plain_fold() {
        let v: Vec<u64> = (0..1003).map(|i| (i * 31) % 257).collect();
        let map = |x: &u64| *x;
        let combine = |a: u64, b: u64| a + b;
        let plain = fold_seq(&v, None, &0u64, &map, &combine);
        for lanes in [2usize, 4, 8, 16] {
            assert_eq!(fold_seq(&v, Some(lanes), &0u64, &map, &combine), plain);
        }
        // min monoid, short input falls back to the plain fold
        let short = vec![9u64, 3];
        assert_eq!(
            fold_seq(&short, Some(8), &u64::MAX, &map, &|a, b| a.min(b)),
            3
        );
    }

    #[test]
    fn map_reduce_fused_is_one_launch_unfused_two_and_equal() {
        let dev = Device::default();
        let v: Vec<u32> = (0..30_000).collect();
        let (fused, df) = dev.scoped(|| {
            map_reduce(&dev, "len_map", "count_slots", &v, 0usize, |&x| {
                (x % 3) as usize
            }, |a, b| a + b)
        });
        assert_eq!(df.launches, 1, "fused pair is one launch");
        assert_eq!(df.traffic.read, 30_000 * 4, "historical reduce traffic");
        assert_eq!(df.traffic.written, 0);
        dev.set_fusion(false);
        let (unfused, du) = dev.scoped(|| {
            map_reduce(&dev, "len_map", "count_slots", &v, 0usize, |&x| {
                (x % 3) as usize
            }, |a, b| a + b)
        });
        assert_eq!(du.launches, 2, "unfused pair launches both kernels");
        assert_eq!(du.kernels["len_map"].launches, 1);
        assert_eq!(du.kernels["count_slots"].launches, 1);
        assert_eq!(fused, unfused);
        assert_eq!(dev.fusion_stats().map_reduce, 1);
        assert_eq!(dev.fusion_stats().attempted, 2);
    }

    #[test]
    fn map_max_by_key_agrees_fused_and_unfused() {
        let dev = Device::default();
        let mut v: Vec<i64> = (0..9000).map(|i| (i * 37) % 1000).collect();
        v[4567] = 100_000;
        let fused = map_max_by_key(&dev, "key_map", "cycle_check", &v, |&x| x);
        dev.set_fusion(false);
        let unfused = map_max_by_key(&dev, "key_map", "cycle_check", &v, |&x| x);
        assert_eq!(fused, Some(4567));
        assert_eq!(fused, unfused);
        let empty: Vec<i64> = vec![];
        assert_eq!(map_max_by_key(&dev, "k", "m", &empty, |&x| x), None);
    }
}
