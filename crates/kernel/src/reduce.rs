//! Parallel reductions over device buffers.
//!
//! A reduction is a single kernel launch that reads its input once and
//! writes O(1) output; we account traffic accordingly. Operators must be
//! associative and commutative monoids with an explicit identity (the same
//! contract CUB's `DeviceReduce` imposes).

use crate::device::{Device, Traffic};
use rayon::prelude::*;

const PAR_THRESHOLD: usize = 4096;

/// Generic monoid reduction: `identity ⊕ data[0] ⊕ ... ⊕ data[n-1]`.
pub fn reduce<T, A>(
    dev: &Device,
    name: &str,
    data: &[T],
    identity: A,
    map: impl Fn(&T) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync,
) -> A
where
    T: Sync,
    A: Send + Sync + Clone,
{
    let traffic = Traffic::new().reads::<T>(data.len());
    dev.launch(name, traffic, || {
        if data.len() < PAR_THRESHOLD {
            data.iter()
                .fold(identity.clone(), |acc, x| combine(acc, map(x)))
        } else {
            data.par_iter()
                .fold(
                    || identity.clone(),
                    |acc, x| combine(acc, map(x)),
                )
                .reduce(|| identity.clone(), &combine)
        }
    })
}

/// Sum of an `f64`-convertible slice. Deterministic only up to floating
/// point reassociation, like any parallel GPU reduction.
pub fn sum_f64(dev: &Device, name: &str, data: &[f64]) -> f64 {
    reduce(dev, name, data, 0.0f64, |&x| x, |a, b| a + b)
}

/// Sum of a `u64` slice.
pub fn sum_u64(dev: &Device, name: &str, data: &[u64]) -> u64 {
    reduce(dev, name, data, 0u64, |&x| x, |a, b| a + b)
}

/// Count elements satisfying a predicate.
pub fn count<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> usize {
    reduce(
        dev,
        name,
        data,
        0usize,
        |x| usize::from(pred(x)),
        |a, b| a + b,
    )
}

/// Whether any element satisfies a predicate.
///
/// (No early exit — a GPU reduction reads everything anyway.)
pub fn any<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> bool {
    reduce(
        dev,
        name,
        data,
        false,
        |x| pred(x),
        |a, b| a || b,
    )
}

/// Index of the maximum element by a key function (first occurrence on the
/// sequential path; any argmax on the parallel path, as on a GPU).
/// Returns `None` for empty input.
pub fn max_by_key<T, K>(
    dev: &Device,
    name: &str,
    data: &[T],
    key: impl Fn(&T) -> K + Sync,
) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + Send + Clone,
{
    if data.is_empty() {
        return None;
    }
    let traffic = Traffic::new().reads::<T>(data.len());
    Some(dev.launch(name, traffic, || {
        if data.len() < PAR_THRESHOLD {
            let mut bi = 0usize;
            let mut bk = key(&data[0]);
            for (i, x) in data.iter().enumerate().skip(1) {
                let k = key(x);
                if k > bk {
                    bk = k;
                    bi = i;
                }
            }
            bi
        } else {
            data.par_iter()
                .enumerate()
                .map(|(i, x)| (i, key(x)))
                .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
                .map(|(i, _)| i)
                .unwrap()
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let dev = Device::default();
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = sum_f64(&dev, "sum", &v);
        assert!((s - (9999.0 * 10000.0 / 2.0)).abs() < 1e-6);
        let u: Vec<u64> = (0..100).collect();
        assert_eq!(sum_u64(&dev, "sumu", &u), 4950);
    }

    #[test]
    fn counting_and_any() {
        let dev = Device::default();
        let v: Vec<u32> = (0..50_000).collect();
        assert_eq!(count(&dev, "c", &v, |&x| x % 10 == 0), 5000);
        assert!(any(&dev, "a", &v, |&x| x == 49_999));
        assert!(!any(&dev, "a", &v, |&x| x == 50_000));
    }

    #[test]
    fn empty_reduce_is_identity() {
        let dev = Device::default();
        let v: Vec<f64> = vec![];
        assert_eq!(sum_f64(&dev, "s", &v), 0.0);
        assert_eq!(max_by_key(&dev, "m", &v, |&x| x), None);
    }

    #[test]
    fn max_by_key_finds_argmax() {
        let dev = Device::default();
        let mut v: Vec<i64> = (0..9000).map(|i| (i * 37) % 1000).collect();
        v[7777] = 100_000;
        assert_eq!(max_by_key(&dev, "m", &v, |&x| x), Some(7777));
        // small path
        let w = vec![3i64, 9, 1];
        assert_eq!(max_by_key(&dev, "m", &w, |&x| x), Some(1));
    }

    #[test]
    fn generic_reduce_custom_monoid() {
        let dev = Device::default();
        let v: Vec<u32> = (1..=6000).collect();
        // min-monoid
        let m = reduce(&dev, "min", &v, u32::MAX, |&x| x, |a, b| a.min(b));
        assert_eq!(m, 1);
    }
}
