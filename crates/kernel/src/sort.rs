//! Parallel LSD radix sort.
//!
//! The paper sorts vertex IDs by a key composed of (path ID, position)
//! using CUB's radix sort (Sec. 4.3). CUB is unavailable here, so this is
//! the from-scratch substitute: a stable least-significant-digit radix sort
//! with 8-bit digits, per-chunk histograms, a digit-major offset scan, and
//! a disjoint scatter — the standard GPU formulation executed on the
//! simulated device.

use crate::backend::KernelClass;
use crate::buffer::ScatterSlice;
use crate::device::{Device, Traffic};
use rayon::prelude::*;

const RADIX_BITS: u32 = 8;
const RADIX: usize = 1 << RADIX_BITS;

/// Number of 8-bit digit passes needed to cover `max_key`.
fn passes_for(max_key: u64) -> u32 {
    if max_key == 0 {
        1
    } else {
        (64 - max_key.leading_zeros()).div_ceil(RADIX_BITS)
    }
}

/// Stable sort of `(key, value)` pairs by `u64` key, ascending.
///
/// Sorts in place (ping-pongs through internal scratch buffers). One kernel
/// launch is recorded per digit pass (histogram + scatter are fused into
/// the launch's traffic declaration, as a GPU onesweep pass would be).
pub fn sort_pairs_u64(dev: &Device, keys: &mut Vec<u64>, vals: &mut Vec<u32>) {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let n = keys.len();
    if n <= 1 {
        return;
    }
    if n < dev.par_threshold(KernelClass::Sort) {
        // Small problems: one launch, sequential LSD radix sort. A direct
        // digit sort beats a comparison sort through an index permutation
        // here — counting passes are linear, branch-light, and gather-free.
        let traffic = Traffic::new()
            .reads::<u64>(n)
            .reads::<u32>(n)
            .writes::<u64>(n)
            .writes::<u32>(n);
        dev.launch("radix_sort_small", traffic, || {
            let max_key = keys.iter().copied().max().unwrap_or(0);
            let passes = passes_for(max_key);
            let mut kin = std::mem::take(keys);
            let mut vin = std::mem::take(vals);
            let mut kout = vec![0u64; n];
            let mut vout = vec![0u32; n];
            for pass in 0..passes {
                let shift = pass * RADIX_BITS;
                let mut hist = [0u32; RADIX];
                for &k in &kin {
                    hist[((k >> shift) as usize) & (RADIX - 1)] += 1;
                }
                let mut acc = 0u32;
                for h in hist.iter_mut() {
                    let c = *h;
                    *h = acc;
                    acc += c;
                }
                for (&k, &v) in kin.iter().zip(&vin) {
                    let d = ((k >> shift) as usize) & (RADIX - 1);
                    let pos = hist[d] as usize;
                    hist[d] += 1;
                    kout[pos] = k;
                    vout[pos] = v;
                }
                std::mem::swap(&mut kin, &mut kout);
                std::mem::swap(&mut vin, &mut vout);
            }
            *keys = kin;
            *vals = vin;
        });
        return;
    }

    let max_key = keys.par_iter().copied().max().unwrap_or(0);
    let passes = passes_for(max_key);

    let mut kin = std::mem::take(keys);
    let mut vin = std::mem::take(vals);
    let mut kout = vec![0u64; n];
    let mut vout = vec![0u32; n];

    let nchunks = (rayon::current_num_threads().max(1) * 4).min(n);
    let chunk = n.div_ceil(nchunks);

    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        let traffic = Traffic::new()
            .reads::<u64>(n)
            .reads::<u32>(n)
            .writes::<u64>(n)
            .writes::<u32>(n);
        dev.launch("radix_sort_pass", traffic, || {
            // Per-chunk histograms.
            let hists: Vec<[u32; RADIX]> = kin
                .par_chunks(chunk)
                .map(|ch| {
                    let mut h = [0u32; RADIX];
                    for &k in ch {
                        h[((k >> shift) as usize) & (RADIX - 1)] += 1;
                    }
                    h
                })
                .collect();
            // Digit-major exclusive scan: offset[digit][chunk].
            let nch = hists.len();
            let mut offsets = vec![0u32; RADIX * nch];
            let mut acc = 0u32;
            for d in 0..RADIX {
                for (c, h) in hists.iter().enumerate() {
                    offsets[d * nch + c] = acc;
                    acc += h[d];
                }
            }
            debug_assert_eq!(acc as usize, n);
            // Scatter: each chunk owns disjoint output slots per digit.
            let kview = ScatterSlice::new(&mut kout);
            let vview = ScatterSlice::new(&mut vout);
            kin.par_chunks(chunk)
                .zip(vin.par_chunks(chunk))
                .enumerate()
                .for_each(|(c, (kch, vch))| {
                    let mut cursor = [0u32; RADIX];
                    for d in 0..RADIX {
                        cursor[d] = offsets[d * nch + c];
                    }
                    for (&k, &v) in kch.iter().zip(vch) {
                        let d = ((k >> shift) as usize) & (RADIX - 1);
                        let pos = cursor[d] as usize;
                        cursor[d] += 1;
                        // SAFETY: positions are disjoint — each (digit,
                        // chunk) range is exclusive by the offset scan and
                        // `cursor` walks it without overlap.
                        unsafe {
                            kview.write(pos, k);
                            vview.write(pos, v);
                        }
                    }
                });
        });
        std::mem::swap(&mut kin, &mut kout);
        std::mem::swap(&mut vin, &mut vout);
    }
    *keys = kin;
    *vals = vin;
}

/// Stable ascending sort of bare `u32` keys.
pub fn sort_u32(dev: &Device, keys: &mut [u32]) {
    let mut wide: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let mut vals: Vec<u32> = vec![0; keys.len()];
    sort_pairs_u64(dev, &mut wide, &mut vals);
    for (k, w) in keys.iter_mut().zip(&wide) {
        *k = *w as u32;
    }
}

/// Produce the permutation that sorts `keys` ascending (stable):
/// `perm[rank] = original_index`.
pub fn sort_permutation_u64(dev: &Device, keys: &[u64]) -> Vec<u32> {
    let mut k = keys.to_vec();
    let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
    sort_pairs_u64(dev, &mut k, &mut idx);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn check_sorted_stable(orig_k: &[u64], orig_v: &[u32], k: &[u64], v: &[u32]) {
        assert!(k.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        // Same multiset.
        let mut a: Vec<(u64, u32)> = orig_k.iter().copied().zip(orig_v.iter().copied()).collect();
        let mut b: Vec<(u64, u32)> = k.iter().copied().zip(v.iter().copied()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "not a permutation of the input");
        // Stability: equal keys keep input order of their values (here
        // values encode original index).
        for w in k.windows(2).zip(v.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "instability at equal keys");
            }
        }
    }

    #[test]
    fn sorts_random_large() {
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let n = 200_000;
        let ko: Vec<u64> = (0..n).map(|_| rng.random_range(0..5000u64)).collect();
        let vo: Vec<u32> = (0..n as u32).collect();
        let (mut k, mut v) = (ko.clone(), vo.clone());
        sort_pairs_u64(&dev, &mut k, &mut v);
        check_sorted_stable(&ko, &vo, &k, &v);
    }

    #[test]
    fn sorts_small_path() {
        let dev = Device::default();
        let ko = vec![9u64, 3, 3, 7, 0];
        let vo = vec![0u32, 1, 2, 3, 4];
        let (mut k, mut v) = (ko.clone(), vo.clone());
        sort_pairs_u64(&dev, &mut k, &mut v);
        assert_eq!(k, vec![0, 3, 3, 7, 9]);
        assert_eq!(v, vec![4, 1, 2, 3, 0]);
    }

    #[test]
    fn sorts_full_64bit_keys() {
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let n = 50_000;
        let ko: Vec<u64> = (0..n).map(|_| rng.random::<u64>()).collect();
        let vo: Vec<u32> = (0..n as u32).collect();
        let (mut k, mut v) = (ko.clone(), vo.clone());
        sort_pairs_u64(&dev, &mut k, &mut v);
        check_sorted_stable(&ko, &vo, &k, &v);
    }

    #[test]
    fn empty_and_single() {
        let dev = Device::default();
        let mut k: Vec<u64> = vec![];
        let mut v: Vec<u32> = vec![];
        sort_pairs_u64(&dev, &mut k, &mut v);
        assert!(k.is_empty());
        let mut k = vec![5u64];
        let mut v = vec![1u32];
        sort_pairs_u64(&dev, &mut k, &mut v);
        assert_eq!(k, vec![5]);
    }

    #[test]
    fn all_equal_keys_stable() {
        let dev = Device::default();
        let n = 100_000;
        let mut k = vec![7u64; n];
        let mut v: Vec<u32> = (0..n as u32).collect();
        sort_pairs_u64(&dev, &mut k, &mut v);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sort_u32_works() {
        let dev = Device::default();
        let mut k = vec![3u32, 1, 2];
        sort_u32(&dev, &mut k);
        assert_eq!(k, vec![1, 2, 3]);
    }

    #[test]
    fn permutation_output() {
        let dev = Device::default();
        let keys = vec![30u64, 10, 20];
        let perm = sort_permutation_u64(&dev, &keys);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    fn passes_counted() {
        assert_eq!(passes_for(0), 1);
        assert_eq!(passes_for(255), 1);
        assert_eq!(passes_for(256), 2);
        assert_eq!(passes_for(u64::MAX), 8);
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_std_sort(mut keys in proptest::collection::vec(0u64..1_000_000, 0..3000)) {
            let dev = Device::default();
            let vals: Vec<u32> = (0..keys.len() as u32).collect();
            let mut want: Vec<(u64, u32)> =
                keys.iter().copied().zip(vals.iter().copied()).collect();
            want.sort(); // stable by (key, original index)
            let mut v = vals.clone();
            sort_pairs_u64(&dev, &mut keys, &mut v);
            let got: Vec<(u64, u32)> = keys.into_iter().zip(v).collect();
            proptest::prop_assert_eq!(got, want);
        }
    }
}
