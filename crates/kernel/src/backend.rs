//! Execution backends: how kernel bodies are *scheduled* on the host.
//!
//! A [`Backend`] does not change what a kernel computes — bodies live with
//! the primitives ([`crate::launch`], [`crate::reduce`], …) and are shared
//! by all backends. It changes *how* the body runs: the sequential/parallel
//! cutoff per kernel class, cache blocking of row traversals, and whether
//! lane-chunked (auto-vectorizable) inner loops are used. Two backends
//! exist:
//!
//! * [`ModelBackend`] — the historical behavior, bit-for-bit: the single
//!   global [`crate::PAR_THRESHOLD`] family of constants the primitives
//!   used before the trait existed. The deterministic perf gate
//!   (`results/BENCH_gate.json`) is defined against this backend.
//! * [`CpuBackend`] — tuned for real wall clock on the host CPU:
//!   per-class thresholds derived from the rayon thread count (a 1-thread
//!   pool never forks), cache-blocked CSR traversal, chunked lanes, and
//!   `total_cmp`-free comparison fast paths where keys are pre-sanitized.
//!
//! Per-class thresholds are overridable via `LF_PAR_THRESHOLD_<CLASS>`
//! environment variables (e.g. `LF_PAR_THRESHOLD_SCAN=100000`), read once
//! when [`CpuBackend::tuned`] is constructed. Unset classes fall back to
//! the tuned default, which itself falls back to the legacy
//! [`crate::PAR_THRESHOLD`] scale.

use crate::PAR_THRESHOLD;
use std::sync::Arc;

/// The scheduling class of a kernel. Every launch site in the workspace
/// maps to exactly one class; the backend supplies one parallel threshold
/// per class (replacing the single global `PAR_THRESHOLD`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Elementwise maps, fills, copies, gathers, for-each loops.
    Map,
    /// Monoid reductions (including fused map→reduce and argmax).
    Reduce,
    /// Blocked prefix scans.
    Scan,
    /// Stream compaction (flag scan + scatter).
    Compact,
    /// Segmented reductions / sorts (threshold applies to segment count).
    Segmented,
    /// Radix sorts (threshold selects single-launch host sort).
    Sort,
    /// Generalized SpMV row traversals (threshold applies to row count).
    GeSpmv,
    /// Mutual-confirmation kernels of the [0,n]-factor pipeline.
    Confirm,
}

impl KernelClass {
    /// All classes, in a fixed order (indexes the threshold tables).
    pub const ALL: [KernelClass; 8] = [
        KernelClass::Map,
        KernelClass::Reduce,
        KernelClass::Scan,
        KernelClass::Compact,
        KernelClass::Segmented,
        KernelClass::Sort,
        KernelClass::GeSpmv,
        KernelClass::Confirm,
    ];

    /// Suffix of the `LF_PAR_THRESHOLD_<CLASS>` override variable.
    pub fn env_suffix(self) -> &'static str {
        match self {
            KernelClass::Map => "MAP",
            KernelClass::Reduce => "REDUCE",
            KernelClass::Scan => "SCAN",
            KernelClass::Compact => "COMPACT",
            KernelClass::Segmented => "SEGMENTED",
            KernelClass::Sort => "SORT",
            KernelClass::GeSpmv => "GESPMV",
            KernelClass::Confirm => "CONFIRM",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelClass::Map => 0,
            KernelClass::Reduce => 1,
            KernelClass::Scan => 2,
            KernelClass::Compact => 3,
            KernelClass::Segmented => 4,
            KernelClass::Sort => 5,
            KernelClass::GeSpmv => 6,
            KernelClass::Confirm => 7,
        }
    }
}

/// Identifies a backend implementation (CLI `--backend` values).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The historical model device (perf-gate reference).
    #[default]
    Model,
    /// The tuned host-CPU backend.
    Cpu,
}

impl BackendKind {
    /// Parse a CLI `--backend` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "model" => Some(BackendKind::Model),
            "cpu" => Some(BackendKind::Cpu),
            _ => None,
        }
    }

    /// The CLI name of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Model => "model",
            BackendKind::Cpu => "cpu",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How kernel bodies are scheduled on the host. Implementations must be
/// pure configuration: two calls with the same argument return the same
/// value for the lifetime of the backend (bodies may be re-executed and
/// must make identical seq/par decisions).
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Minimum element count at which a kernel of `class` runs its
    /// rayon-parallel path instead of the sequential one. `usize::MAX`
    /// means "always sequential".
    fn par_threshold(&self, class: KernelClass) -> usize;

    /// Row-block size for cache-blocked CSR/SRCSR traversal, or `None`
    /// for the unblocked (per-element) historical traversal.
    fn row_block(&self) -> Option<usize> {
        None
    }

    /// Lane-chunk width for branch-free chunked inner loops (reductions
    /// keep `lane_chunk` independent accumulators), or `None` for the
    /// plain fold. Chunking reassociates: exact for the integer/min/max
    /// monoids the factor pipeline relies on, not for `f64` sums.
    fn lane_chunk(&self) -> Option<usize> {
        None
    }

    /// Whether comparison keys reaching this backend's min/max combines
    /// are pre-sanitized (no NaN, no `-0.0`), allowing a `total_cmp`-free
    /// `<` fast path. The factor pipeline guarantees this by construction
    /// (proposal weights pass through `abs()`); the model backend still
    /// uses the NaN-lawful `total_cmp` ordering as the reference.
    fn sanitized_keys(&self) -> bool {
        false
    }
}

/// The historical model device scheduling, bit-for-bit: the same
/// thresholds the primitives used when they read global constants.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelBackend;

impl Backend for ModelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Model
    }

    fn par_threshold(&self, class: KernelClass) -> usize {
        // Exactly the pre-trait constants: global PAR_THRESHOLD (2048),
        // reduce.rs 4096, scan.rs/compact.rs SEQ_THRESHOLD 8192, and
        // sort.rs 1 << 14. Do not "tune" these — the deterministic perf
        // gate and every recorded launch stream depend on them.
        match class {
            KernelClass::Map
            | KernelClass::Segmented
            | KernelClass::GeSpmv
            | KernelClass::Confirm => PAR_THRESHOLD,
            KernelClass::Reduce => 2 * PAR_THRESHOLD,
            KernelClass::Scan | KernelClass::Compact => 4 * PAR_THRESHOLD,
            KernelClass::Sort => 8 * PAR_THRESHOLD,
        }
    }
}

/// Tuned host-CPU scheduling: thresholds derived from the rayon pool
/// size at construction, env-overridable per class; cache-blocked rows
/// and chunked lanes on.
#[derive(Clone, Debug)]
pub struct CpuBackend {
    thresholds: [usize; 8],
    row_block: usize,
    lane_chunk: usize,
}

impl CpuBackend {
    /// Rows per cache block. 1024 rows of row-pointer + slot data stay
    /// within L1/L2 while the gathered `x` entries retain locality.
    pub const ROW_BLOCK: usize = 1024;

    /// Accumulator lanes of chunked reductions — wide enough for one
    /// AVX2 register of `u32`/`f32`.
    pub const LANE_CHUNK: usize = 8;

    /// Construct with thresholds tuned for the current rayon pool and
    /// `LF_PAR_THRESHOLD_<CLASS>` overrides applied.
    pub fn tuned() -> Self {
        Self::for_threads(rayon::current_num_threads())
    }

    /// Construct for an explicit thread count (tests).
    pub fn for_threads(threads: usize) -> Self {
        let mut thresholds = [0usize; 8];
        for class in KernelClass::ALL {
            let var = format!("LF_PAR_THRESHOLD_{}", class.env_suffix());
            thresholds[class.index()] = std::env::var(&var)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or_else(|| Self::default_threshold(class, threads));
        }
        Self {
            thresholds,
            row_block: Self::ROW_BLOCK,
            lane_chunk: Self::LANE_CHUNK,
        }
    }

    /// Tuned default threshold for `class` on a `threads`-wide pool.
    ///
    /// With one thread rayon's fork-join machinery is pure overhead, so
    /// every class is pinned sequential. With more threads the cutoff is
    /// a per-class multiple of the legacy [`PAR_THRESHOLD`] scale — the
    /// fallback the satellite contract requires — grown with the pool so
    /// each worker gets enough elements to amortize a steal: memory-bound
    /// streaming classes (scan, reduce, sort) need larger grains than the
    /// compute-heavier gather/SpMV classes.
    pub fn default_threshold(class: KernelClass, threads: usize) -> usize {
        if threads <= 1 {
            return usize::MAX;
        }
        let mult = match class {
            KernelClass::Map | KernelClass::Confirm => 4,
            KernelClass::Reduce | KernelClass::Scan | KernelClass::Compact => 8,
            KernelClass::Sort => 4,
            KernelClass::Segmented | KernelClass::GeSpmv => 2,
        };
        mult * PAR_THRESHOLD.saturating_mul(threads.max(1))
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::tuned()
    }
}

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn par_threshold(&self, class: KernelClass) -> usize {
        self.thresholds[class.index()]
    }

    fn row_block(&self) -> Option<usize> {
        Some(self.row_block)
    }

    fn lane_chunk(&self) -> Option<usize> {
        Some(self.lane_chunk)
    }

    fn sanitized_keys(&self) -> bool {
        true
    }
}

/// Construct the backend for a [`BackendKind`].
pub fn make(kind: BackendKind) -> Arc<dyn Backend> {
    match kind {
        BackendKind::Model => Arc::new(ModelBackend),
        BackendKind::Cpu => Arc::new(CpuBackend::tuned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_thresholds_are_the_legacy_constants() {
        let b = ModelBackend;
        assert_eq!(b.par_threshold(KernelClass::Map), 2048);
        assert_eq!(b.par_threshold(KernelClass::Segmented), 2048);
        assert_eq!(b.par_threshold(KernelClass::GeSpmv), 2048);
        assert_eq!(b.par_threshold(KernelClass::Confirm), 2048);
        assert_eq!(b.par_threshold(KernelClass::Reduce), 4096);
        assert_eq!(b.par_threshold(KernelClass::Scan), 8192);
        assert_eq!(b.par_threshold(KernelClass::Compact), 8192);
        assert_eq!(b.par_threshold(KernelClass::Sort), 1 << 14);
        assert!(b.row_block().is_none());
        assert!(b.lane_chunk().is_none());
        assert!(!b.sanitized_keys());
    }

    #[test]
    fn single_thread_cpu_backend_never_forks() {
        let b = CpuBackend::for_threads(1);
        for class in KernelClass::ALL {
            assert_eq!(b.par_threshold(class), usize::MAX, "{class:?}");
        }
    }

    #[test]
    fn multi_thread_cpu_backend_scales_with_pool() {
        let b2 = CpuBackend::default_threshold(KernelClass::Map, 2);
        let b8 = CpuBackend::default_threshold(KernelClass::Map, 8);
        assert!(b8 > b2);
        assert_eq!(b2, 4 * 2048 * 2);
    }

    #[test]
    fn env_override_wins() {
        // Env mutation: unique variable per test binary run; restore after.
        std::env::set_var("LF_PAR_THRESHOLD_SCAN", "12345");
        let b = CpuBackend::for_threads(4);
        assert_eq!(b.par_threshold(KernelClass::Scan), 12345);
        assert_eq!(
            b.par_threshold(KernelClass::Reduce),
            CpuBackend::default_threshold(KernelClass::Reduce, 4)
        );
        std::env::remove_var("LF_PAR_THRESHOLD_SCAN");
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [BackendKind::Model, BackendKind::Cpu] {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(make(BackendKind::Cpu).kind(), BackendKind::Cpu);
        assert_eq!(make(BackendKind::Model).kind(), BackendKind::Model);
    }
}
