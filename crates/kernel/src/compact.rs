//! Stream compaction and histograms — the `DeviceSelect` / `DeviceHistogram`
//! equivalents of CUB, built on the blocked scan from [`crate::scan`].
//!
//! [`compact_indices_into`] is a scan→scatter pair under the peephole
//! fusion pass: fused (the default) it is one launch that keeps the
//! scanned flags in registers per chunk; unfused it materializes the
//! scanned-flag buffer in a first launch and scatters from it in a
//! second, exactly like a textbook two-kernel GPU compaction. Both forms
//! produce bit-identical output.

use crate::backend::KernelClass;
use crate::buffer::ScatterSlice;
use crate::device::{Device, Traffic};
use crate::plan::{BufId, LaunchPlan, OpClass, PlanOp};
use rayon::prelude::*;

/// Keep the elements satisfying `pred`, preserving order.
pub fn compact<T: Copy + Send + Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> Vec<T> {
    let n = data.len();
    let traffic = Traffic::new().reads::<T>(n).writes::<T>(n);
    let thr = dev.par_threshold(KernelClass::Compact);
    dev.launch(name, traffic, || {
        if n < thr {
            return data.iter().copied().filter(|x| pred(x)).collect();
        }
        let nchunks = (rayon::current_num_threads().max(1) * 4).min(n);
        let chunk = n.div_ceil(nchunks);
        let mut counts: Vec<usize> = data
            .par_chunks(chunk)
            .map(|ch| ch.iter().filter(|x| pred(x)).count())
            .collect();
        let mut acc = 0usize;
        for c in counts.iter_mut() {
            let x = *c;
            *c = acc;
            acc += x;
        }
        let total = acc;
        let mut out: Vec<T> = Vec::with_capacity(total);
        // SAFETY: every slot in 0..total is written exactly once below.
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(total)
        };
        {
            let view = ScatterSlice::new(&mut out);
            data.par_chunks(chunk)
                .zip(counts.par_iter())
                .for_each(|(ch, &start)| {
                    let mut pos = start;
                    for x in ch {
                        if pred(x) {
                            // SAFETY: disjoint ranges per chunk; `pos` walks
                            // [start, start+count) without overlap.
                            unsafe { view.write(pos, *x) };
                            pos += 1;
                        }
                    }
                });
        }
        out
    })
}

/// Indices of the elements satisfying `pred`, ascending.
pub fn compact_indices<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> Vec<u32> {
    let mut out = Vec::new();
    compact_indices_into(dev, name, data, pred, &mut out);
    out
}

/// Like [`compact_indices`], but writes into a caller-owned vector so hot
/// loops can reuse one allocation across iterations. `out` is cleared
/// first; on return it holds the ascending indices of elements satisfying
/// `pred`.
///
/// A scan→scatter pair under the fusion pass: fused, the flag scan runs
/// directly over the index space and no identity/flag buffer is
/// materialized; unfused, a first launch writes the exclusively-scanned
/// flags and a second launch scatters the surviving indices from them.
pub fn compact_indices_into<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    pred: impl Fn(&T) -> bool + Sync,
    out: &mut Vec<u32>,
) {
    let n = data.len();
    let scan_op = PlanOp::new(
        name,
        OpClass::Scan,
        vec![BufId::of(data)],
        vec![BufId::virtual_of(data)],
        Traffic::new().reads::<T>(n).writes::<u32>(n),
    );
    let scatter_op = PlanOp::new(
        format!("{name}_scatter"),
        OpClass::Scatter,
        vec![BufId::virtual_of(data)],
        vec![BufId::raw(out.as_ptr() as usize)],
        Traffic::new().reads::<u32>(n).writes::<u32>(n),
    );
    let thr = dev.par_threshold(KernelClass::Compact);
    if dev.plan_fuse(scan_op.clone(), scatter_op.clone()) {
        let traffic = LaunchPlan::fused_traffic(&scan_op, &scatter_op);
        dev.launch(name, traffic, || {
            out.clear();
            if n < thr {
                out.extend((0..n as u32).filter(|&i| pred(&data[i as usize])));
                return;
            }
            let nchunks = (rayon::current_num_threads().max(1) * 4).min(n);
            let chunk = n.div_ceil(nchunks);
            let mut counts: Vec<usize> = (0..nchunks)
                .into_par_iter()
                .map(|c| {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    data[lo..hi].iter().filter(|x| pred(x)).count()
                })
                .collect();
            let mut acc = 0usize;
            for c in counts.iter_mut() {
                let x = *c;
                *c = acc;
                acc += x;
            }
            out.resize(acc, 0);
            let view = ScatterSlice::new(out);
            counts.par_iter().enumerate().for_each(|(c, &start)| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n);
                let mut pos = start;
                for (i, x) in data.iter().enumerate().take(hi).skip(lo) {
                    if pred(x) {
                        // SAFETY: disjoint ranges per chunk; `pos` walks
                        // [start, start+count) without overlap.
                        unsafe { view.write(pos, i as u32) };
                        pos += 1;
                    }
                }
            });
        });
        return;
    }
    // Unfused: launch 1 materializes the exclusive scan of the 0/1 flags,
    // launch 2 scatters index i to `flags[i]` wherever the scan stepped.
    let mut flags: Vec<u32> = vec![0; n];
    let total = dev.launch(&scan_op.name, scan_op.traffic, || {
        if n < thr {
            let mut acc = 0u32;
            for (i, fl) in flags.iter_mut().enumerate() {
                *fl = acc;
                acc += u32::from(pred(&data[i]));
            }
            acc
        } else {
            let nchunks = (rayon::current_num_threads().max(1) * 4).min(n);
            let chunk = n.div_ceil(nchunks);
            let mut counts: Vec<u32> = flags
                .par_chunks_mut(chunk)
                .enumerate()
                .map(|(c, fl)| {
                    let lo = c * chunk;
                    let mut acc = 0u32;
                    for (j, fl) in fl.iter_mut().enumerate() {
                        *fl = acc;
                        acc += u32::from(pred(&data[lo + j]));
                    }
                    acc
                })
                .collect();
            let mut acc = 0u32;
            for c in counts.iter_mut() {
                let x = *c;
                *c = acc;
                acc += x;
            }
            flags
                .par_chunks_mut(chunk)
                .zip(counts.par_iter())
                .for_each(|(fl, &off)| {
                    for v in fl.iter_mut() {
                        *v += off;
                    }
                });
            acc
        }
    });
    dev.launch(&scatter_op.name, scatter_op.traffic, || {
        out.clear();
        out.resize(total as usize, 0);
        let kept = |i: usize| {
            let next = if i + 1 < n { flags[i + 1] } else { total };
            next > flags[i]
        };
        if n < thr {
            for i in 0..n {
                if kept(i) {
                    out[flags[i] as usize] = i as u32;
                }
            }
        } else {
            let view = ScatterSlice::new(out);
            (0..n).into_par_iter().for_each(|i| {
                if kept(i) {
                    // SAFETY: scan offsets are strictly increasing over the
                    // kept elements, so every target slot is written once.
                    unsafe { view.write(flags[i] as usize, i as u32) };
                }
            });
        }
    });
}

/// Histogram of `nbins` bins; `key` must return a bin index `< nbins`.
pub fn histogram<T: Sync>(
    dev: &Device,
    name: &str,
    data: &[T],
    nbins: usize,
    key: impl Fn(&T) -> usize + Sync,
) -> Vec<u64> {
    let traffic = Traffic::new()
        .reads::<T>(data.len())
        .writes::<u64>(nbins);
    let thr = dev.par_threshold(KernelClass::Compact);
    dev.launch(name, traffic, || {
        if data.len() < thr {
            let mut h = vec![0u64; nbins];
            for x in data {
                h[key(x)] += 1;
            }
            return h;
        }
        data.par_chunks(data.len().div_ceil(rayon::current_num_threads().max(1) * 4))
            .map(|ch| {
                let mut h = vec![0u64; nbins];
                for x in ch {
                    h[key(x)] += 1;
                }
                h
            })
            .reduce(
                || vec![0u64; nbins],
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(b) {
                        *ai += bi;
                    }
                    a
                },
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_preserves_order() {
        let dev = Device::default();
        for n in [100usize, 100_000] {
            let v: Vec<u32> = (0..n as u32).collect();
            let got = compact(&dev, "c", &v, |&x| x % 3 == 0);
            let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn compact_empty_and_none_match() {
        let dev = Device::default();
        let v: Vec<u32> = vec![];
        assert!(compact(&dev, "c", &v, |_| true).is_empty());
        let v: Vec<u32> = (0..20_000).collect();
        assert!(compact(&dev, "c", &v, |_| false).is_empty());
    }

    #[test]
    fn compact_indices_works() {
        let dev = Device::default();
        let v = vec![5u32, 0, 7, 0, 9];
        assert_eq!(compact_indices(&dev, "ci", &v, |&x| x > 0), vec![0, 2, 4]);
    }

    #[test]
    fn compact_indices_into_reuses_buffer() {
        let dev = Device::default();
        let mut out = vec![99u32; 7]; // stale contents must be discarded
        for n in [100usize, 50_000] {
            let v: Vec<u32> = (0..n as u32).collect();
            compact_indices_into(&dev, "ci", &v, |&x| x % 5 == 0, &mut out);
            let want: Vec<u32> = (0..n as u32).filter(|&x| x % 5 == 0).collect();
            assert_eq!(out, want, "n={n}");
        }
        compact_indices_into(&dev, "ci", &[] as &[u32], |_| true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unfused_compact_is_bit_identical_and_two_launches() {
        let dev = Device::default();
        for n in [100usize, 50_000] {
            let v: Vec<u32> = (0..n as u32).collect();
            let fused = compact_indices(&dev, "ci", &v, |&x| x % 7 == 0);
            assert_eq!(dev.scoped(|| ()).1.launches, 0);
            dev.set_fusion(false);
            let (unfused, d) = dev.scoped(|| {
                compact_indices(&dev, "ci", &v, |&x| x % 7 == 0)
            });
            dev.set_fusion(true);
            assert_eq!(d.launches, 2, "n={n}: scan + scatter");
            assert_eq!(d.kernels["ci"].launches, 1);
            assert_eq!(d.kernels["ci_scatter"].launches, 1);
            assert_eq!(fused, unfused, "n={n}");
        }
        // fused traffic equals the historical single-launch declaration,
        // and the pass recorded the scan→scatter rule firing
        let dev = Device::default();
        let v: Vec<u32> = (0..1000).collect();
        compact_indices(&dev, "ci", &v, |&x| x % 2 == 0);
        let s = dev.stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.traffic.read, 4000);
        assert_eq!(s.traffic.written, 4000);
        assert_eq!(dev.fusion_stats().scan_scatter, 1);
    }

    #[test]
    fn histogram_counts() {
        let dev = Device::default();
        for n in [500usize, 60_000] {
            let v: Vec<u32> = (0..n as u32).collect();
            let h = histogram(&dev, "h", &v, 4, |&x| (x % 4) as usize);
            let total: u64 = h.iter().sum();
            assert_eq!(total, n as u64);
            for (b, c) in h.iter().enumerate() {
                let want = v.iter().filter(|&&x| x % 4 == b as u32).count() as u64;
                assert_eq!(*c, want);
            }
        }
    }
}
