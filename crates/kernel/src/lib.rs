//! # lf-kernel — simulated GPU device substrate
//!
//! The paper ("Highly Parallel Linear Forest Extraction from a Weighted
//! Graph on GPUs", ICPP '22) implements everything as CUDA kernels on an
//! RTX 2080 Ti. This reproduction has no GPU, so this crate provides the
//! closest faithful substitute: a **device execution model** in which
//! algorithms are expressed as *kernel launches* over an index space, with
//!
//! * data-parallel execution on CPU threads (via rayon, playing the role of
//!   the CUDA thread grid),
//! * per-launch **global-memory traffic accounting** (bytes read/written),
//!   which reproduces the paper's Table 2 analysis, and
//! * a configurable **bandwidth + launch-overhead model** that converts the
//!   recorded traffic into a *model time*, so throughput figures
//!   (paper Fig. 3 and Fig. 5) can be reproduced in shape.
//!
//! On top of the raw launch API the crate implements the parallel
//! primitives the paper takes from CUB/Thrust (which we must build from
//! scratch, just as the paper had to build its scan from scratch):
//! reductions, prefix scans, LSD radix sort, stream compaction, and
//! histograms.
//!
//! ## Example
//!
//! ```
//! use lf_kernel::{Device, launch};
//!
//! let dev = Device::default();
//! let xs: Vec<f64> = (0..1024).map(|i| i as f64).collect();
//! let mut ys = vec![0.0f64; 1024];
//! launch::map1(&dev, "saxpy", &mut ys, xs.len() * 8, |i| 2.0 * xs[i] + 1.0);
//! assert_eq!(ys[3], 7.0);
//! assert_eq!(dev.stats().launches, 1);
//! ```

pub mod backend;
pub mod buffer;
pub mod compact;
pub mod device;
pub mod launch;
pub mod plan;
pub mod reduce;
pub mod scan;
pub mod segmented;
pub mod sort;

pub use backend::{Backend, BackendKind, CpuBackend, KernelClass, ModelBackend};
pub use buffer::{PingPong, Reusable, ScatterSlice};
pub use device::{Device, DeviceConfig, DeviceStats, KernelStats, LaunchSample, Traffic};
pub use plan::{FusionStats, LaunchPlan, PlanOp};

/// Re-export of the [`lf_trace`] telemetry crate, so downstream crates can
/// open spans and install sinks (`dev.tracer()`, `lf_kernel::trace::…`)
/// without a manifest dependency of their own.
pub use lf_trace as trace;

/// Legacy sequential fallback scale: below this many elements the rayon
/// fork-join overhead dominates, so kernel bodies run serially. The
/// launch is still recorded. (GPU analog: tiny grids don't fill the
/// device either.)
///
/// Kept as the documented fallback for the per-kernel-class thresholds in
/// [`backend`]: [`ModelBackend`] reproduces the historical per-primitive
/// constants as fixed multiples of this value, and [`CpuBackend`] scales
/// it by the rayon pool size (env-overridable per class via
/// `LF_PAR_THRESHOLD_<CLASS>`). Primitives now consult
/// [`Device::par_threshold`] instead of reading this directly.
pub const PAR_THRESHOLD: usize = 2048;

/// Commonly used items.
pub mod prelude {
    pub use crate::backend::{Backend, BackendKind, KernelClass};
    pub use crate::buffer::{PingPong, ScatterSlice};
    pub use crate::device::{Device, DeviceConfig, Traffic};
    pub use crate::{compact, launch, reduce, scan, segmented, sort};
}
