//! The simulated device: launch bookkeeping, traffic accounting, and the
//! bandwidth model that converts traffic into *model time*.
//!
//! Every parallel operation in this workspace goes through
//! [`Device::launch`] (usually via the typed wrappers in [`crate::launch`]).
//! A launch records:
//!
//! * the number of kernel launches (the paper's Alg. 2/3 count launches
//!   explicitly — e.g. the bidirectional scan is exactly `log2(N)` launches),
//! * declared global-memory traffic ([`Traffic`]), mirroring the paper's
//!   Table 2 "read/written buffers" analysis,
//! * wall-clock time of the parallel CPU execution, and
//! * *model time*: `launch_overhead + bytes / bandwidth`, i.e. the time the
//!   kernel would take on a memory-bound GPU with the configured bandwidth.
//!
//! Model time is what we use to reproduce the *shape* of the paper's GPU
//! throughput figures (Fig. 3, Fig. 5, Fig. 6); wall time gives the real
//! parallel-CPU numbers.

use crate::backend::{self, Backend, BackendKind, KernelClass};
use crate::plan::{FusionCounters, FusionStats, LaunchPlan, PlanOp, Rule};
use lf_trace::Tracer;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bytes read and written from/to simulated global memory by one kernel.
///
/// Construct with the builder-style helpers so element counts and types
/// stay readable at the call site:
///
/// ```
/// use lf_kernel::Traffic;
/// let t = Traffic::new().reads::<f32>(1000).writes::<u32>(500);
/// assert_eq!(t.read, 4000);
/// assert_eq!(t.written, 2000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes read from global memory.
    pub read: u64,
    /// Bytes written to global memory.
    pub written: u64,
}

impl Traffic {
    /// An empty traffic record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from raw byte counts.
    pub fn bytes(read: u64, written: u64) -> Self {
        Self { read, written }
    }

    /// Add `n` elements of type `T` to the read side.
    pub fn reads<T>(mut self, n: usize) -> Self {
        self.read += (n * std::mem::size_of::<T>()) as u64;
        self
    }

    /// Add `n` elements of type `T` to the written side.
    pub fn writes<T>(mut self, n: usize) -> Self {
        self.written += (n * std::mem::size_of::<T>()) as u64;
        self
    }

    /// Add raw bytes to the read side.
    pub fn read_bytes(mut self, bytes: u64) -> Self {
        self.read += bytes;
        self
    }

    /// Add raw bytes to the written side.
    pub fn written_bytes(mut self, bytes: u64) -> Self {
        self.written += bytes;
        self
    }

    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.read + self.written
    }
}

impl std::ops::Add for Traffic {
    type Output = Traffic;
    fn add(self, rhs: Traffic) -> Traffic {
        Traffic {
            read: self.read + rhs.read,
            written: self.written + rhs.written,
        }
    }
}

impl std::ops::AddAssign for Traffic {
    fn add_assign(&mut self, rhs: Traffic) {
        self.read += rhs.read;
        self.written += rhs.written;
    }
}

/// Static configuration of the simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable device name (appears in reports).
    pub name: String,
    /// Peak global-memory bandwidth in GB/s used by the model.
    ///
    /// The default is parameterized like the paper's GeForce RTX 2080 Ti
    /// (616 GB/s theoretical).
    pub bandwidth_gbps: f64,
    /// Fixed per-launch overhead in microseconds (CUDA launch latency).
    pub launch_overhead_us: f64,
    /// Record an individual [`LaunchSample`] per kernel launch (capped at
    /// [`DeviceConfig::max_samples`]) — needed for distribution statistics
    /// like the paper\'s Fig. 5 throughput boxplots. Off by default.
    pub record_samples: bool,
    /// Sample-buffer cap when `record_samples` is on.
    pub max_samples: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            name: "sim-rtx2080ti".to_string(),
            bandwidth_gbps: 616.0,
            launch_overhead_us: 3.0,
            record_samples: false,
            max_samples: 1 << 20,
        }
    }
}

impl DeviceConfig {
    /// Same configuration with per-launch sampling enabled.
    pub fn with_sampling(mut self) -> Self {
        self.record_samples = true;
        self
    }
}

/// One recorded kernel launch (when sampling is enabled).
#[derive(Clone, Debug)]
pub struct LaunchSample {
    /// Kernel name.
    pub name: String,
    /// Declared traffic of this launch.
    pub traffic: Traffic,
    /// Model time of this launch (seconds).
    pub model_time_s: f64,
    /// Wall time of this launch (seconds).
    pub wall_time_s: f64,
}

impl LaunchSample {
    /// Model throughput of this single launch (GB/s).
    pub fn model_throughput_gbps(&self) -> f64 {
        if self.model_time_s == 0.0 {
            0.0
        } else {
            self.traffic.total() as f64 / 1e9 / self.model_time_s
        }
    }
}

impl DeviceConfig {
    /// Model time in seconds for a kernel moving `traffic` bytes.
    pub fn model_time(&self, traffic: Traffic) -> f64 {
        self.launch_overhead_us * 1e-6 + traffic.total() as f64 / (self.bandwidth_gbps * 1e9)
    }
}

/// Accumulated statistics for a single kernel name.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Total declared traffic.
    pub traffic: Traffic,
    /// Total model time (seconds).
    pub model_time_s: f64,
    /// Total measured wall-clock time of the parallel CPU execution (s).
    pub wall_time_s: f64,
}

impl KernelStats {
    /// Effective model throughput (GB/s) over all launches of this kernel.
    pub fn model_throughput_gbps(&self) -> f64 {
        if self.model_time_s == 0.0 {
            0.0
        } else {
            self.traffic.total() as f64 / 1e9 / self.model_time_s
        }
    }

    /// Effective wall-clock throughput (GB/s) over all launches.
    pub fn wall_throughput_gbps(&self) -> f64 {
        if self.wall_time_s == 0.0 {
            0.0
        } else {
            self.traffic.total() as f64 / 1e9 / self.wall_time_s
        }
    }
}

/// Aggregate statistics for a device, plus a per-kernel-name breakdown.
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Individual launches (only populated when the device records
    /// samples; excluded from `scoped` diffs).
    pub samples: Vec<LaunchSample>,
    /// Total number of kernel launches.
    pub launches: u64,
    /// Total declared traffic.
    pub traffic: Traffic,
    /// Total model time (seconds).
    pub model_time_s: f64,
    /// Total wall-clock time spent inside kernels (seconds).
    pub wall_time_s: f64,
    /// Per-kernel-name breakdown (ordered by name).
    pub kernels: BTreeMap<String, KernelStats>,
}

impl DeviceStats {
    fn record(&mut self, name: &str, traffic: Traffic, model_s: f64, wall_s: f64, sample: bool, cap: usize) {
        if sample && self.samples.len() < cap {
            self.samples.push(LaunchSample {
                name: name.to_string(),
                traffic,
                model_time_s: model_s,
                wall_time_s: wall_s,
            });
        }
        self.launches += 1;
        self.traffic += traffic;
        self.model_time_s += model_s;
        self.wall_time_s += wall_s;
        let k = self.kernels.entry(name.to_string()).or_default();
        k.launches += 1;
        k.traffic += traffic;
        k.model_time_s += model_s;
        k.wall_time_s += wall_s;
    }
}

/// Feed one launch into the process-wide metrics registry (per-kernel
/// latency/traffic histograms plus the running effective-throughput
/// gauge). Only called when `lf_metrics::enabled()` — the disabled path
/// of [`Device::launch`] pays a single relaxed atomic load.
fn record_launch_metrics(name: &str, traffic: Traffic, model_s: f64, wall_s: f64) {
    use lf_metrics::{global, Unit};
    let m = global();
    m.counter_with("lf_kernel_launches_total", "Kernel launches.", ("kernel", name))
        .inc();
    m.histogram_with(
        "lf_kernel_model_seconds",
        "Modeled kernel execution time (launch overhead + traffic / bandwidth).",
        Unit::Nanos,
        ("kernel", name),
    )
    .record_f64(model_s * 1e9);
    m.histogram_with(
        "lf_kernel_wall_seconds",
        "Wall-clock time of the parallel CPU execution of a kernel.",
        Unit::Nanos,
        ("kernel", name),
    )
    .record_f64(wall_s * 1e9);
    m.histogram_with(
        "lf_kernel_traffic_bytes",
        "Declared global-memory traffic per kernel launch.",
        Unit::Bytes,
        ("kernel", name),
    )
    .record(traffic.total());
    // Running totals, from which the effective device throughput is
    // derived: bytes / nanos is dimensionally GB/s.
    let nanos = m
        .counter("lf_kernel_model_nanos_total", "Total modeled kernel time.")
        .add((model_s * 1e9) as u64);
    let bytes = m
        .counter("lf_kernel_traffic_bytes_total", "Total declared kernel traffic.")
        .add(traffic.total());
    if nanos > 0 {
        m.gauge(
            "lf_kernel_effective_gbps",
            "Effective model throughput over all launches so far (GB/s).",
        )
        .set(bytes as f64 / nanos as f64);
    }
}

/// The simulated GPU device.
///
/// Cheap to clone (shared stats). All kernels in this workspace take a
/// `&Device` and record their launches here.
#[derive(Clone)]
pub struct Device {
    config: Arc<DeviceConfig>,
    stats: Arc<Mutex<DeviceStats>>,
    tracer: Tracer,
    backend: Arc<dyn Backend>,
    fusion_enabled: Arc<AtomicBool>,
    fusion: Arc<FusionCounters>,
}

impl Default for Device {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", &*self.config)
            .field("backend", &self.backend.kind())
            .finish_non_exhaustive()
    }
}

impl Device {
    /// Create a device with the given configuration, on the model backend
    /// with fusion enabled (the historical launch stream, bit-for-bit).
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_tracer(config, Tracer::new())
    }

    /// Create a device with the given configuration and tracing handle.
    /// The tracer starts inactive unless a sink was already installed;
    /// either way it can be (de)activated later via [`Device::tracer`]
    /// (tracers use interior mutability and clones share state).
    pub fn with_tracer(config: DeviceConfig, tracer: Tracer) -> Self {
        Self::with_backend_tracer(config, backend::make(BackendKind::Model), tracer)
    }

    /// Create a device on an explicit execution [`Backend`].
    pub fn with_backend(config: DeviceConfig, backend: Arc<dyn Backend>) -> Self {
        Self::with_backend_tracer(config, backend, Tracer::new())
    }

    /// Create a device on an explicit backend with a tracing handle.
    pub fn with_backend_tracer(
        config: DeviceConfig,
        backend: Arc<dyn Backend>,
        tracer: Tracer,
    ) -> Self {
        Self {
            config: Arc::new(config),
            stats: Arc::new(Mutex::new(DeviceStats::default())),
            tracer,
            backend,
            fusion_enabled: Arc::new(AtomicBool::new(true)),
            fusion: Arc::new(FusionCounters::default()),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The execution backend scheduling kernel bodies on this device.
    pub fn backend(&self) -> &dyn Backend {
        &*self.backend
    }

    /// Parallel threshold for a kernel class on the current backend:
    /// bodies run their rayon path only for at least this many elements.
    pub fn par_threshold(&self, class: KernelClass) -> usize {
        self.backend.par_threshold(class)
    }

    /// Whether the peephole fusion pass rewrites planned pairs (on by
    /// default; the CLI's `--no-fuse` turns it off).
    pub fn fusion_enabled(&self) -> bool {
        self.fusion_enabled.load(Ordering::Relaxed)
    }

    /// Enable/disable the fusion pass. Shared by clones.
    pub fn set_fusion(&self, enabled: bool) {
        self.fusion_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Fusion-pass counters since the last [`Device::reset_stats`].
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion.snapshot()
    }

    /// Submit the adjacent pair `(a, b)` to the peephole pass and return
    /// whether the call site should execute the fused form. Records the
    /// attempt (and the rule fired, when fusion is enabled) in
    /// [`Device::fusion_stats`].
    pub fn plan_fuse(&self, a: PlanOp, b: PlanOp) -> bool {
        let mut plan = LaunchPlan::new();
        plan.push(a);
        plan.push(b);
        let rule: Option<Rule> = plan.peephole().first().map(|&(_, r)| r);
        let fuse = self.fusion_enabled() && rule.is_some();
        self.fusion.record(if fuse { rule } else { None });
        fuse
    }

    /// The device's tracing handle. Inactive (zero overhead) until a sink
    /// is installed with [`Tracer::install`]; pipeline code uses it to open
    /// phase spans and sample metrics, and every [`Device::launch`] reports
    /// itself here, attributed to the innermost open span.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats.lock().clone()
    }

    /// Reset all accumulated statistics (e.g. between benchmark phases).
    /// Also clears the backend-local fusion counters so warm-up fusions
    /// never leak into measured reps (fig3 warm-up boundary, `repro`
    /// reps); the fusion *enabled* flag is configuration and survives.
    pub fn reset_stats(&self) {
        *self.stats.lock() = DeviceStats::default();
        self.fusion.reset();
    }

    /// Run `body` as one kernel launch named `name` with the declared
    /// `traffic`, recording launch count, model time and wall time.
    ///
    /// `body` is expected to perform the actual (rayon-)parallel work; the
    /// typed wrappers in [`crate::launch`] do this for the common shapes.
    pub fn launch<R>(&self, name: &str, traffic: Traffic, body: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = body();
        let wall = t0.elapsed().as_secs_f64();
        let model = self.config.model_time(traffic);
        self.stats.lock().record(
            name,
            traffic,
            model,
            wall,
            self.config.record_samples,
            self.config.max_samples,
        );
        if self.tracer.is_active() {
            self.tracer
                .launch(name, traffic.read, traffic.written, model, wall);
        }
        if lf_metrics::enabled() {
            record_launch_metrics(name, traffic, model, wall);
        }
        if lf_flight::enabled() {
            // Deterministic fields only (no wall time): the flight event
            // stream of a replay run must compare bit-exactly.
            lf_flight::record(lf_flight::FlightEvent::Launch {
                kernel: name.to_string(),
                backend: self.backend.kind().as_str().to_string(),
                fused: self.fusion_enabled(),
                read: traffic.read,
                written: traffic.written,
                model_ns: (model * 1e9).round() as u64,
            });
        }
        out
    }

    /// Run a sub-computation and return the *difference* in stats it caused,
    /// i.e. a scoped measurement. Useful for per-phase breakdowns (Fig. 6).
    pub fn scoped<R>(&self, body: impl FnOnce() -> R) -> (R, DeviceStats) {
        let before = self.stats();
        let out = body();
        let after = self.stats();
        let mut diff = DeviceStats {
            samples: Vec::new(),
            launches: after.launches - before.launches,
            traffic: Traffic::bytes(
                after.traffic.read - before.traffic.read,
                after.traffic.written - before.traffic.written,
            ),
            model_time_s: after.model_time_s - before.model_time_s,
            wall_time_s: after.wall_time_s - before.wall_time_s,
            kernels: BTreeMap::new(),
        };
        for (name, ka) in &after.kernels {
            let kb = before.kernels.get(name).copied().unwrap_or_default();
            if ka.launches > kb.launches {
                diff.kernels.insert(
                    name.clone(),
                    KernelStats {
                        launches: ka.launches - kb.launches,
                        traffic: Traffic::bytes(
                            ka.traffic.read - kb.traffic.read,
                            ka.traffic.written - kb.traffic.written,
                        ),
                        model_time_s: ka.model_time_s - kb.model_time_s,
                        wall_time_s: ka.wall_time_s - kb.wall_time_s,
                    },
                );
            }
        }
        (out, diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_builder_counts_bytes() {
        let t = Traffic::new().reads::<u64>(10).writes::<u8>(3);
        assert_eq!(t.read, 80);
        assert_eq!(t.written, 3);
        assert_eq!(t.total(), 83);
    }

    #[test]
    fn traffic_add() {
        let t = Traffic::bytes(1, 2) + Traffic::bytes(10, 20);
        assert_eq!(t, Traffic::bytes(11, 22));
    }

    #[test]
    fn model_time_includes_overhead_and_bandwidth() {
        let cfg = DeviceConfig {
            name: "t".into(),
            bandwidth_gbps: 1.0, // 1 GB/s
            launch_overhead_us: 1.0,
            ..DeviceConfig::default()
        };
        let t = cfg.model_time(Traffic::bytes(500_000_000, 500_000_000));
        // 1e-6 overhead + 1 GB / 1 GB/s = 1.000001 s
        assert!((t - 1.000001).abs() < 1e-9);
    }

    #[test]
    fn launch_records_stats() {
        let dev = Device::default();
        let r = dev.launch("k1", Traffic::bytes(100, 50), || 42);
        assert_eq!(r, 42);
        dev.launch("k1", Traffic::bytes(1, 1), || ());
        dev.launch("k2", Traffic::bytes(0, 0), || ());
        let s = dev.stats();
        assert_eq!(s.launches, 3);
        assert_eq!(s.traffic.read, 101);
        assert_eq!(s.traffic.written, 51);
        assert_eq!(s.kernels["k1"].launches, 2);
        assert_eq!(s.kernels["k2"].launches, 1);
        assert!(s.model_time_s > 0.0);
    }

    #[test]
    fn reset_clears() {
        let dev = Device::default();
        dev.launch("k", Traffic::bytes(5, 5), || ());
        dev.reset_stats();
        assert_eq!(dev.stats().launches, 0);
    }

    #[test]
    fn scoped_reports_difference() {
        let dev = Device::default();
        dev.launch("a", Traffic::bytes(10, 0), || ());
        let (_, d) = dev.scoped(|| {
            dev.launch("a", Traffic::bytes(5, 0), || ());
            dev.launch("b", Traffic::bytes(0, 7), || ());
        });
        assert_eq!(d.launches, 2);
        assert_eq!(d.traffic.read, 5);
        assert_eq!(d.traffic.written, 7);
        assert_eq!(d.kernels["a"].launches, 1);
        assert_eq!(d.kernels["b"].launches, 1);
        assert!(!d.kernels.contains_key("c"));
    }

    #[test]
    fn kernel_stats_throughput() {
        let k = KernelStats {
            launches: 1,
            traffic: Traffic::bytes(1_000_000_000, 1_000_000_000),
            model_time_s: 2.0,
            wall_time_s: 4.0,
        };
        assert!((k.model_throughput_gbps() - 1.0).abs() < 1e-12);
        assert!((k.wall_throughput_gbps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_records_individual_launches() {
        let dev = Device::new(DeviceConfig::default().with_sampling());
        dev.launch("a", Traffic::bytes(100, 0), || ());
        dev.launch("b", Traffic::bytes(0, 200), || ());
        let s = dev.stats();
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].name, "a");
        assert_eq!(s.samples[1].traffic.written, 200);
        assert!(s.samples[0].model_throughput_gbps() > 0.0);
        // off by default
        let dev = Device::default();
        dev.launch("a", Traffic::bytes(1, 1), || ());
        assert!(dev.stats().samples.is_empty());
    }

    #[test]
    fn sample_cap_respected() {
        let dev = Device::new(DeviceConfig {
            record_samples: true,
            max_samples: 3,
            ..DeviceConfig::default()
        });
        for _ in 0..10 {
            dev.launch("k", Traffic::new(), || ());
        }
        assert_eq!(dev.stats().samples.len(), 3);
        assert_eq!(dev.stats().launches, 10);
    }

    #[test]
    fn launch_reports_to_installed_tracer() {
        use lf_trace::RecordingSink;
        let dev = Device::default();
        assert!(!dev.tracer().is_active());
        dev.launch("before_install", Traffic::bytes(1, 1), || ());
        let sink = Arc::new(RecordingSink::new());
        dev.tracer().install(sink.clone());
        {
            let _phase = dev.tracer().span("phase");
            dev.launch("traced", Traffic::bytes(100, 50), || ());
        }
        dev.launch("untraced", Traffic::bytes(7, 0), || ());
        let data = sink.snapshot();
        assert_eq!(data.launches.len(), 2, "pre-install launch not reported");
        assert_eq!(data.launches[0].name, "traced");
        assert_eq!(data.launches[0].span, Some(data.spans[0].id));
        assert_eq!(data.launches[0].read, 100);
        assert_eq!(data.launches[1].span, None);
        // device stats see all three launches regardless of tracing
        assert_eq!(dev.stats().launches, 3);
        // tracer-reported model time matches the device model
        let model = dev.config().model_time(Traffic::bytes(100, 50));
        assert!((data.launches[0].model_s - model).abs() < 1e-15);
    }

    #[test]
    fn launch_feeds_metrics_registry_when_enabled() {
        // The registry is process-global and other tests in this binary
        // run concurrently, so use unique kernel names and only assert on
        // our own series.
        let dev = Device::default();
        let find = |kernel: &str| {
            lf_metrics::global()
                .snapshot()
                .families
                .iter()
                .find(|f| f.name == "lf_kernel_launches_total")
                .and_then(|f| {
                    f.series
                        .iter()
                        .find(|s| s.label.as_deref() == Some(kernel))
                        .map(|s| s.value.clone())
                })
        };
        dev.launch("metrics_gate_off_k", Traffic::bytes(1, 1), || ());
        assert!(find("metrics_gate_off_k").is_none(), "recorded while disabled");
        lf_metrics::enable();
        dev.launch("metrics_gate_on_k", Traffic::bytes(100, 50), || ());
        dev.launch("metrics_gate_on_k", Traffic::bytes(10, 0), || ());
        lf_metrics::disable();
        match find("metrics_gate_on_k") {
            Some(lf_metrics::ValueSnapshot::Counter(n)) => assert!(n >= 2),
            other => panic!("missing launch counter: {other:?}"),
        }
        let s = lf_metrics::global().snapshot();
        let hist = s
            .families
            .iter()
            .find(|f| f.name == "lf_kernel_model_seconds")
            .expect("latency histogram family");
        assert_eq!(hist.label_key.as_deref(), Some("kernel"));
        assert!(hist
            .series
            .iter()
            .any(|x| x.label.as_deref() == Some("metrics_gate_on_k")));
    }

    #[test]
    fn device_is_cloneable_and_shares_stats() {
        let dev = Device::default();
        let dev2 = dev.clone();
        dev2.launch("k", Traffic::new(), || ());
        assert_eq!(dev.stats().launches, 1);
    }

    #[test]
    fn default_device_is_model_backend_with_fusion_on() {
        let dev = Device::default();
        assert_eq!(dev.backend().kind(), BackendKind::Model);
        assert!(dev.fusion_enabled());
        assert_eq!(dev.par_threshold(KernelClass::Map), crate::PAR_THRESHOLD);
    }

    fn fusable_pair() -> (PlanOp, PlanOp) {
        use crate::plan::{BufId, OpClass};
        let a = PlanOp::new(
            "m",
            OpClass::Map,
            vec![BufId::raw(1)],
            vec![BufId::raw(2)],
            Traffic::bytes(8, 8),
        );
        let b = PlanOp::new(
            "r",
            OpClass::Reduce,
            vec![BufId::raw(2)],
            vec![BufId::raw(3)],
            Traffic::bytes(8, 8),
        );
        (a, b)
    }

    #[test]
    fn plan_fuse_fires_and_respects_no_fuse() {
        let dev = Device::default();
        let (a, b) = fusable_pair();
        assert!(dev.plan_fuse(a.clone(), b.clone()));
        assert_eq!(dev.fusion_stats().map_reduce, 1);
        dev.set_fusion(false);
        assert!(!dev.plan_fuse(a, b));
        let s = dev.fusion_stats();
        assert_eq!(s.attempted, 2, "attempts counted either way");
        assert_eq!(s.fused(), 1, "disabled pass fuses nothing");
    }

    #[test]
    fn reset_stats_clears_fusion_counters_but_not_the_flag() {
        // Regression test (PR-5 pattern): backend-local counters must be
        // cleared at the fig3 warm-up boundary / between repro reps.
        let dev = Device::default();
        dev.set_fusion(false);
        let (a, b) = fusable_pair();
        dev.plan_fuse(a, b);
        assert_eq!(dev.fusion_stats().attempted, 1);
        dev.reset_stats();
        assert_eq!(dev.fusion_stats(), crate::plan::FusionStats::default());
        assert!(!dev.fusion_enabled(), "enabled flag is config, not stats");
    }

    #[test]
    fn backend_device_shares_fusion_state_across_clones() {
        let dev = Device::with_backend(
            DeviceConfig::default(),
            crate::backend::make(BackendKind::Cpu),
        );
        assert_eq!(dev.backend().kind(), BackendKind::Cpu);
        let dev2 = dev.clone();
        dev2.set_fusion(false);
        assert!(!dev.fusion_enabled());
        let (a, b) = fusable_pair();
        dev2.plan_fuse(a, b);
        assert_eq!(dev.fusion_stats().attempted, 1);
    }
}
