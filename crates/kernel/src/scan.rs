//! Parallel prefix scans over *random-access* buffers.
//!
//! These are the ordinary scans (as in Thrust/CUB) used by the substrate —
//! CSR row-pointer construction, stream compaction, radix-sort digit
//! offsets. They are distinct from the paper's *bidirectional* scan over
//! linked [0,2]-factor connectivity, which lives in `lf-core::scan` and is
//! precisely the thing Thrust/CUB *cannot* express (Sec. 4.2).
//!
//! Implementation: classic three-phase blocked scan (per-block sequential
//! scan in parallel, sequential scan of block totals, parallel add-offsets),
//! i.e. work-efficient O(N), matching a single-pass GPU scan in traffic:
//! one read + one write of the data.

use crate::backend::KernelClass;
use crate::device::{Device, Traffic};
use rayon::prelude::*;

/// In-place **exclusive** scan with a custom associative operator and
/// identity. Returns the total (the "carry-out").
///
/// `out[i] = identity ⊕ in[0] ⊕ ... ⊕ in[i-1]`
pub fn exclusive_scan_in_place<T>(
    dev: &Device,
    name: &str,
    data: &mut [T],
    identity: T,
    op: impl Fn(T, T) -> T + Sync,
) -> T
where
    T: Copy + Send + Sync,
{
    let n = data.len();
    let traffic = Traffic::new().reads::<T>(n).writes::<T>(n);
    let thr = dev.par_threshold(KernelClass::Scan);
    dev.launch(name, traffic, || {
        if n == 0 {
            return identity;
        }
        if n < thr {
            let mut acc = identity;
            for v in data.iter_mut() {
                let x = *v;
                *v = acc;
                acc = op(acc, x);
            }
            return acc;
        }
        let nblocks = rayon::current_num_threads().max(1) * 4;
        let block = n.div_ceil(nblocks);
        // Phase 1: per-block inclusive totals (scan each block exclusively,
        // remember the block total).
        let mut totals: Vec<T> = data
            .par_chunks_mut(block)
            .map(|chunk| {
                let mut acc = identity;
                for v in chunk.iter_mut() {
                    let x = *v;
                    *v = acc;
                    acc = op(acc, x);
                }
                acc
            })
            .collect();
        // Phase 2: exclusive scan of block totals (sequential; few blocks).
        let mut acc = identity;
        for t in totals.iter_mut() {
            let x = *t;
            *t = acc;
            acc = op(acc, x);
        }
        let grand_total = acc;
        // Phase 3: add block offsets.
        data.par_chunks_mut(block)
            .zip(totals.par_iter())
            .for_each(|(chunk, &off)| {
                for v in chunk.iter_mut() {
                    *v = op(off, *v);
                }
            });
        grand_total
    })
}

/// In-place **inclusive** scan. `out[i] = in[0] ⊕ ... ⊕ in[i]`.
pub fn inclusive_scan_in_place<T>(
    dev: &Device,
    name: &str,
    data: &mut [T],
    identity: T,
    op: impl Fn(T, T) -> T + Sync,
) where
    T: Copy + Send + Sync,
{
    let n = data.len();
    let traffic = Traffic::new().reads::<T>(n).writes::<T>(n);
    let thr = dev.par_threshold(KernelClass::Scan);
    dev.launch(name, traffic, || {
        if n == 0 {
            return;
        }
        if n < thr {
            let mut acc = identity;
            for v in data.iter_mut() {
                acc = op(acc, *v);
                *v = acc;
            }
            return;
        }
        let nblocks = rayon::current_num_threads().max(1) * 4;
        let block = n.div_ceil(nblocks);
        let mut totals: Vec<T> = data
            .par_chunks_mut(block)
            .map(|chunk| {
                let mut acc = identity;
                for v in chunk.iter_mut() {
                    acc = op(acc, *v);
                    *v = acc;
                }
                acc
            })
            .collect();
        let mut acc = identity;
        for t in totals.iter_mut() {
            let x = *t;
            *t = acc;
            acc = op(acc, x);
        }
        data.par_chunks_mut(block)
            .zip(totals.par_iter())
            .for_each(|(chunk, &off)| {
                for v in chunk.iter_mut() {
                    *v = op(off, *v);
                }
            });
    });
}

/// Exclusive prefix-sum of `u32` counts into `u32` offsets; the common
/// CSR-building shape. Returns the total.
pub fn exclusive_sum_u32(dev: &Device, name: &str, data: &mut [u32]) -> u32 {
    exclusive_scan_in_place(dev, name, data, 0u32, |a, b| a + b)
}

/// Exclusive prefix-sum of `usize` counts. Returns the total.
pub fn exclusive_sum_usize(dev: &Device, name: &str, data: &mut [usize]) -> usize {
    exclusive_scan_in_place(dev, name, data, 0usize, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_exclusive(v: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(v.len());
        let mut acc = 0u64;
        for &x in v {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_matches_reference_small_and_large() {
        let dev = Device::default();
        for n in [0usize, 1, 2, 100, 8192, 100_003] {
            let v: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 97).collect();
            let (want, want_total) = ref_exclusive(&v);
            let mut got = v.clone();
            let total =
                exclusive_scan_in_place(&dev, "scan", &mut got, 0u64, |a, b| a + b);
            assert_eq!(got, want, "n={n}");
            assert_eq!(total, want_total, "n={n}");
        }
    }

    #[test]
    fn inclusive_matches_reference() {
        let dev = Device::default();
        for n in [0usize, 3, 50_000] {
            let v: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
            let mut got = v.clone();
            inclusive_scan_in_place(&dev, "scan", &mut got, 0u64, |a, b| a + b);
            let mut acc = 0;
            for (i, &x) in v.iter().enumerate() {
                acc += x;
                assert_eq!(got[i], acc);
            }
        }
    }

    #[test]
    fn max_scan_operator() {
        let dev = Device::default();
        let mut v: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        inclusive_scan_in_place(&dev, "maxscan", &mut v, 0u32, |a, b| a.max(b));
        assert_eq!(v, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn u32_offsets() {
        let dev = Device::default();
        let mut counts = vec![2u32, 0, 5, 1];
        let total = exclusive_sum_u32(&dev, "off", &mut counts);
        assert_eq!(counts, vec![0, 2, 2, 7]);
        assert_eq!(total, 8);
    }
}
