//! Parallel [0,n]-factor computation (paper Algorithm 2, Sec. 3.2 / 4.1).
//!
//! Each iteration `k`:
//!
//! 1. optionally charge vertices (`k mod m ≠ k_m`) with the MD5 hash;
//! 2. **edge proposition**: every vertex proposes its `n − |π(v)|` heaviest
//!    eligible incident edges — expressed as a generalized SpMV whose
//!    accumulator keeps the top-n (weight, column) pairs per row
//!    ([`crate::topk::TopK`]), with indirect lookups excluding full
//!    vertices, same-charge vertices, and already-confirmed partners;
//! 3. **maximality check** on uncharged iterations: if no new slot was
//!    proposed, the factor is maximal and the algorithm returns `k + 1`;
//! 4. **confirmation**: only mutually proposed edges survive
//!    (`π(v) ← {w ∈ π(v) | v ∈ π(w)}`).
//!
//! Confirmed edges persist across iterations, so `|π(V)|` grows
//! monotonically toward a maximal factor.

use crate::charge::{charge, salted_key};
use crate::error::PipelineError;
use crate::factor::Factor;
use crate::topk::TopK;
use lf_kernel::plan::{BufId, OpClass, PlanOp};
use lf_kernel::{compact, launch, reduce, Device, KernelClass, Reusable, ScatterSlice, Traffic};
use lf_sparse::{
    gespmv_with, subset_row_ptr, Csr, CsrRowView, GeSpmvOps, Scalar, SpmvEngine, SrcsrScratch,
};
use rayon::prelude::*;

/// Parameters of Algorithm 2. The paper's default (Sec. 5.1) is
/// configuration (2): `M = 5`, `m = 5`, `k_m = 0`, `p = 0.5`.
#[derive(Clone, Copy, Debug)]
pub struct FactorConfig {
    /// Degree bound n. The paper implements and evaluates n ≤ 4; this
    /// reproduction additionally supports 5..=8 as an extension (the
    /// Top-K accumulator is const-generic).
    pub n: usize,
    /// Iteration limit M.
    pub max_iters: usize,
    /// Charging period m: charging is *disabled* when `k mod m == k_m`.
    pub m: usize,
    /// Offset k_m of the uncharged iterations.
    pub k_m: usize,
    /// Probability of a positive charge.
    pub p: f64,
    /// Which generalized-SpMV engine runs the proposition kernel.
    pub engine: SpmvEngine,
    /// Active-frontier execution: after each confirmation, stream-compact
    /// the non-full vertices and run the proposition kernel only over that
    /// row subset (scattering the finalized rows back). Bit-identical to
    /// the dense mode — confirmed rows cannot change — but the proposition
    /// traffic shrinks with the frontier. Orthogonal to [`Self::engine`].
    pub frontier: bool,
    /// Per-graph charge salt. `0` (the default everywhere) charges on the
    /// raw vertex ID — the paper's derivation, bit-for-bit. A nonzero salt
    /// re-keys every vertex through [`crate::charge::salted_key`] before
    /// charging, giving this graph its own charge stream. Block-diagonal
    /// batching relies on this: a fused run passes explicit per-vertex
    /// keys (see [`try_parallel_factor_keyed`]) built from each member
    /// graph's salt, and each member's solo run under
    /// [`Self::with_charge_salt`] then charges — and therefore factors —
    /// identically.
    pub charge_salt: u32,
}

impl FactorConfig {
    /// The paper's default configuration (2): no charging on
    /// k = 0, 5, 10, …, with `M = 5`.
    pub fn paper_default(n: usize) -> Self {
        Self {
            n,
            max_iters: 5,
            m: 5,
            k_m: 0,
            p: 0.5,
            engine: SpmvEngine::SrCsr,
            frontier: false,
            charge_salt: 0,
        }
    }

    /// Configuration (1) of Table 4: charging disabled for every k
    /// (`m = 1`, `k_m = 0`).
    pub fn config1(n: usize) -> Self {
        Self {
            m: 1,
            ..Self::paper_default(n)
        }
    }

    /// Configuration (2) of Table 4: no charging on k = 0, 5, 10, ….
    pub fn config2(n: usize) -> Self {
        Self::paper_default(n)
    }

    /// Configuration (3) of Table 4: no charging on k = 1, 6, 11, ….
    pub fn config3(n: usize) -> Self {
        Self {
            k_m: 1,
            ..Self::paper_default(n)
        }
    }

    /// Same configuration with a different iteration limit M.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Same configuration with a different SpMV engine.
    pub fn with_engine(mut self, engine: SpmvEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Same configuration with active-frontier execution on or off.
    pub fn with_frontier(mut self, frontier: bool) -> Self {
        self.frontier = frontier;
        self
    }

    /// Same configuration with a per-graph charge salt (`0` = the paper's
    /// unsalted derivation).
    pub fn with_charge_salt(mut self, charge_salt: u32) -> Self {
        self.charge_salt = charge_salt;
        self
    }
}

/// Result of a parallel factor computation.
#[derive(Clone, Debug)]
pub struct FactorOutcome<T> {
    /// The computed [0,n]-factor π.
    pub factor: Factor<T>,
    /// Number of proposition iterations executed (`M_max` if the factor
    /// became provably maximal, otherwise `max_iters`).
    pub iterations: usize,
    /// Whether maximality was detected (Alg. 2 line 23).
    pub maximal: bool,
}

/// The proposition functor: a generalized-SpMV parameterization whose `⊗`
/// performs the eligibility lookups of Alg. 2 lines 15–19 and whose `⊕`
/// keeps the top-n candidates.
struct PropOps<'a, T, const K: usize> {
    confirmed: &'a [TopK<T, K>],
    full: &'a [bool],
    charges: &'a [bool],
    charging: bool,
}

impl<'a, T: Scalar, const K: usize> GeSpmvOps<T> for PropOps<'a, T, K> {
    type Acc = TopK<T, K>;
    type Out = TopK<T, K>;

    #[inline]
    fn identity(&self) -> Self::Acc {
        TopK::empty()
    }

    #[inline]
    fn multiply(&self, row: u32, col: u32, val: T) -> Self::Acc {
        // W = V_v \ {full vertices} (line 15), minus same-charge vertices
        // when charging (line 17); Θ additionally excludes confirmed
        // partners (line 19). Self-loops are gone from A' already, but
        // guard anyway.
        if col == row
            || self.full[col as usize]
            || (self.charging && self.charges[col as usize] == self.charges[row as usize])
            || self.confirmed[row as usize].contains(col)
        {
            return TopK::empty();
        }
        TopK::singleton(val.abs(), col)
    }

    #[inline]
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc {
        a.merge(&b)
    }

    #[inline]
    fn finalize(&self, row: u32, acc: Self::Acc) -> Self::Out {
        // π(v) ← confirmed ∪ top (n − |π(v)|) proposals (lines 19–21).
        let mut out = self.confirmed[row as usize];
        let free = K - out.len();
        for (w, c) in acc.iter().take(free) {
            out.insert(w, c);
        }
        out
    }

    fn extra_read_bytes(&self, nrows: usize, nnz: usize) -> u64 {
        // per-entry: full flag + charge of the column; per-row: the
        // confirmed slots (Table 2's "confirmed edges" buffer) + own charge.
        (nnz * 2 + nrows * (std::mem::size_of::<TopK<T, K>>() + 1)) as u64
    }
}

/// Reusable working memory for [`parallel_factor_with_workspace`]: every
/// per-iteration buffer of Algorithm 2 (proposal/confirmed slot tables,
/// full flags, charges, the frontier gather list and its virtual row
/// pointer, and the SRCSR partial-accumulator scratch). The paper allocates
/// all device buffers once up front; holding one of these across calls —
/// e.g. across the factor levels of the preconditioner pipeline — gives
/// host loops the same allocation-free steady state.
pub struct FactorWorkspace<T: Scalar, const K: usize> {
    confirmed: Reusable<TopK<T, K>>,
    proposals: Reusable<TopK<T, K>>,
    fout: Reusable<TopK<T, K>>,
    full: Reusable<bool>,
    charges: Reusable<bool>,
    frontier: Reusable<u32>,
    vrow_ptr: Reusable<usize>,
    scratch: SrcsrScratch<TopK<T, K>>,
}

impl<T: Scalar, const K: usize> FactorWorkspace<T, K> {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            confirmed: Reusable::new(),
            proposals: Reusable::new(),
            fout: Reusable::new(),
            full: Reusable::new(),
            charges: Reusable::new(),
            frontier: Reusable::new(),
            vrow_ptr: Reusable::new(),
            scratch: SrcsrScratch::new(),
        }
    }
}

impl<T: Scalar, const K: usize> Default for FactorWorkspace<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

/// The proposition phase, shared by [`run`] and the Fig. 3 benchmark hook.
///
/// Dense mode runs the generalized SpMV over the full matrix. Frontier mode
/// stream-compacts the non-full rows, builds a row-subset view of the CSR,
/// multiplies only that subset, and scatters the finalized rows back into
/// `proposals` through the gather list; full rows keep their stale
/// `proposals` entry, which (by confirmed-edge persistence) is a superset
/// of the row's confirmed set and is the only part ever consulted again.
/// Returns the number of refreshed rows (`nv` in dense mode).
#[allow(clippy::too_many_arguments)]
fn propose_into<T: Scalar, const K: usize>(
    dev: &Device,
    aprime: &Csr<T>,
    engine: SpmvEngine,
    use_frontier: bool,
    ops: &PropOps<'_, T, K>,
    full: &[bool],
    proposals: &mut [TopK<T, K>],
    frontier: &mut Reusable<u32>,
    vrow_ptr: &mut Reusable<usize>,
    fout: &mut Reusable<TopK<T, K>>,
    scratch: &mut SrcsrScratch<TopK<T, K>>,
) -> usize {
    if !use_frontier {
        gespmv_with(dev, "edge_proposition", engine, aprime, ops, proposals, scratch);
        return proposals.len();
    }
    compact::compact_indices_into(
        dev,
        "frontier_compact",
        full,
        |f| !*f,
        frontier.cleared(full.len()),
    );
    let flen = frontier.len();
    let rows = frontier.as_slice();
    {
        // Virtual row pointer of the subset (a row-length gather plus an
        // exclusive scan on the device).
        let vp = vrow_ptr.cleared(flen + 1);
        let traffic = Traffic::new()
            .reads::<u32>(flen)
            .reads::<usize>(2 * flen)
            .writes::<usize>(flen + 1);
        dev.launch("frontier_view", traffic, || subset_row_ptr(aprime, rows, vp));
    }
    let view = CsrRowView::new(aprime, rows, vrow_ptr.as_slice());
    let fo = fout.filled(flen, TopK::empty());
    gespmv_with(dev, "edge_proposition", engine, &view, ops, fo, scratch);
    {
        let fo: &[TopK<T, K>] = fo;
        let sc = ScatterSlice::new(proposals);
        let traffic = Traffic::new()
            .reads::<u32>(flen)
            .reads::<TopK<T, K>>(flen)
            .writes::<TopK<T, K>>(flen);
        launch::for_each_index(dev, "frontier_scatter", flen, traffic, |k| {
            // SAFETY: frontier indices are strictly ascending, so disjoint.
            unsafe { sc.write(rows[k] as usize, fo[k]) };
        });
    }
    flen
}

/// Mutual-proposal confirmation over every row (Alg. 2 line 26), a
/// confirm→count pair under the fusion pass: fused (the default, and the
/// PR-1 hand-fusion this rule generalizes), the confirm kernel carries an
/// `atomicAdd`-style slot counter so the maximality check needs no
/// separate reduce; unfused, a plain confirm launch is followed by a
/// `count_confirmed` reduction over the slot table. Returns the new
/// Σ_v |π(v)| either way, bit-identically.
fn confirm_dense<T: Scalar, const K: usize>(
    dev: &Device,
    confirmed: &mut [TopK<T, K>],
    proposals: &[TopK<T, K>],
) -> usize {
    let nv = confirmed.len();
    let confirm_op = PlanOp::new(
        "confirm",
        OpClass::Confirm,
        vec![BufId::of(proposals)],
        vec![BufId::of(confirmed)],
        Traffic::new()
            .read_bytes((2 * nv * std::mem::size_of::<TopK<T, K>>()) as u64)
            .writes::<TopK<T, K>>(nv),
    );
    let count_op = PlanOp::new(
        "count_confirmed",
        OpClass::Count,
        vec![BufId::of(confirmed)],
        vec![BufId::raw(0)],
        Traffic::new().reads::<TopK<T, K>>(nv),
    );
    let thr = dev.par_threshold(KernelClass::Confirm);
    let body = |v: usize, slot: &mut TopK<T, K>| {
        let mut out = TopK::empty();
        for (w, c) in proposals[v].iter() {
            if proposals[c as usize].contains(v as u32) {
                out.insert(w, c);
            }
        }
        let n = out.len();
        *slot = out;
        n
    };
    if dev.plan_fuse(confirm_op.clone(), count_op.clone()) {
        // The confirmed table is a real output (not an elided
        // intermediate), so the fused traffic is the confirm launch plus
        // the fused slot counter (atomicAdd analog) — the count's re-read
        // of the table is what fusion saves.
        let traffic = confirm_op.traffic.writes::<usize>(1);
        return dev.launch("confirm", traffic, || {
            if nv < thr {
                confirmed
                    .iter_mut()
                    .enumerate()
                    .map(|(v, s)| body(v, s))
                    .sum()
            } else {
                confirmed
                    .par_iter_mut()
                    .enumerate()
                    .map(|(v, s)| body(v, s))
                    .sum()
            }
        });
    }
    dev.launch("confirm", confirm_op.traffic, || {
        if nv < thr {
            for (v, s) in confirmed.iter_mut().enumerate() {
                body(v, s);
            }
        } else {
            confirmed
                .par_iter_mut()
                .enumerate()
                .for_each(|(v, s)| {
                    body(v, s);
                });
        }
    });
    reduce::reduce(
        dev,
        "count_confirmed",
        confirmed,
        0usize,
        |t| t.len(),
        |a, b| a + b,
    )
}

/// Frontier-restricted confirmation: only non-full rows can change, so only
/// they are recomputed (full rows keep their `K` confirmed slots — their
/// partners keep proposing back by confirmed-edge persistence). Returns the
/// new slot count over the *frontier rows only*.
fn confirm_frontier<T: Scalar, const K: usize>(
    dev: &Device,
    confirmed: &mut [TopK<T, K>],
    proposals: &[TopK<T, K>],
    frontier: &[u32],
) -> usize {
    let flen = frontier.len();
    let confirm_op = PlanOp::new(
        "confirm",
        OpClass::Confirm,
        vec![BufId::of(frontier), BufId::of(proposals)],
        vec![BufId::of(confirmed)],
        Traffic::new()
            .reads::<u32>(flen)
            .read_bytes((2 * flen * std::mem::size_of::<TopK<T, K>>()) as u64)
            .writes::<TopK<T, K>>(flen),
    );
    let count_op = PlanOp::new(
        "count_confirmed",
        OpClass::Count,
        vec![BufId::of(confirmed), BufId::of(frontier)],
        vec![BufId::raw(0)],
        Traffic::new().reads::<u32>(flen),
    );
    let thr = dev.par_threshold(KernelClass::Confirm);
    let make_slot = |v: usize| {
        let mut out = TopK::empty();
        for (w, c) in proposals[v].iter() {
            if proposals[c as usize].contains(v as u32) {
                out.insert(w, c);
            }
        }
        out
    };
    if dev.plan_fuse(confirm_op.clone(), count_op.clone()) {
        let traffic = confirm_op.traffic.writes::<usize>(1);
        return dev.launch("confirm", traffic, || {
            let sc = ScatterSlice::new(confirmed);
            let body = |&v: &u32| {
                let v = v as usize;
                let out = make_slot(v);
                let n = out.len();
                // SAFETY: frontier indices are strictly ascending, so disjoint.
                unsafe { sc.write(v, out) };
                n
            };
            if flen < thr {
                frontier.iter().map(body).sum()
            } else {
                frontier.par_iter().map(body).sum()
            }
        });
    }
    dev.launch("confirm", confirm_op.traffic, || {
        let sc = ScatterSlice::new(confirmed);
        let body = |&v: &u32| {
            let v = v as usize;
            // SAFETY: frontier indices are strictly ascending, so disjoint.
            unsafe { sc.write(v, make_slot(v)) };
        };
        if flen < thr {
            frontier.iter().for_each(body);
        } else {
            frontier.par_iter().for_each(body);
        }
    });
    let confirmed: &[TopK<T, K>] = confirmed;
    reduce::reduce(
        dev,
        "count_confirmed",
        frontier,
        0usize,
        |&v| confirmed[v as usize].len(),
        |a, b| a + b,
    )
}

/// Handles into the process-wide metrics registry for the factor loop,
/// fetched once per [`run`] so the per-iteration hot path records through
/// `Arc`s instead of re-looking families up by name.
struct FactorMetrics {
    frontier: std::sync::Arc<lf_metrics::Histogram>,
    proposed: std::sync::Arc<lf_metrics::Histogram>,
    confirmed: std::sync::Arc<lf_metrics::Histogram>,
    rounds: std::sync::Arc<lf_metrics::Histogram>,
    runs: std::sync::Arc<lf_metrics::Counter>,
    maximal_runs: std::sync::Arc<lf_metrics::Counter>,
    iterations: std::sync::Arc<lf_metrics::Counter>,
}

impl FactorMetrics {
    fn fetch() -> Self {
        use lf_metrics::Unit;
        let m = lf_metrics::global();
        Self {
            frontier: m.histogram(
                "lf_factor_frontier",
                "Active (non-full) vertices per factor iteration.",
                Unit::Count,
            ),
            proposed: m.histogram(
                "lf_factor_proposed_slots",
                "Proposed slots per factor iteration.",
                Unit::Count,
            ),
            confirmed: m.histogram(
                "lf_factor_confirmed_slots",
                "Confirmed slots after each confirmation kernel.",
                Unit::Count,
            ),
            rounds: m.histogram(
                "lf_factor_rounds",
                "Iterations executed per factor run (rounds to maximality when maximal).",
                Unit::Count,
            ),
            runs: m.counter("lf_factor_runs_total", "Factor runs."),
            maximal_runs: m.counter(
                "lf_factor_maximal_runs_total",
                "Factor runs that proved maximality before the iteration limit.",
            ),
            iterations: m.counter("lf_factor_iterations_total", "Factor iterations executed."),
        }
    }
}

fn run<T: Scalar, const K: usize>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    keys: Option<&[u32]>,
    ws: &mut FactorWorkspace<T, K>,
) -> FactorOutcome<T> {
    let nv = aprime.nrows();
    let FactorWorkspace {
        confirmed,
        proposals,
        fout,
        full,
        charges,
        frontier,
        vrow_ptr,
        scratch,
    } = ws;
    let confirmed = confirmed.filled(nv, TopK::empty());
    let proposals = proposals.filled(nv, TopK::empty());
    let full = full.filled(nv, false);
    let charges = charges.filled(nv, false);

    let mut iterations = cfg.max_iters;
    let mut maximal = false;
    // Σ_v |π(v)|, maintained incrementally by the confirm kernel — the
    // maximality check's `before` count without its own reduce pass.
    let mut slots = 0usize;

    // Tracing: one span for the whole factor phase, one child span per
    // Alg. 2 iteration. Inactive tracers make all of this free; the
    // per-iteration metrics below are computed host-side only when a sink
    // is installed, so the device traffic model is unperturbed.
    let tracer = dev.tracer().clone();
    let _factor_span = tracer.span("factor");
    // Like the tracer, the metrics gate is one relaxed load; handles are
    // fetched once so iterations don't pay registry lookups.
    let metrics = lf_metrics::enabled().then(FactorMetrics::fetch);
    // Hoisted like the metrics gate; per-iteration flight events carry
    // only deterministic counts so a replay's stream compares bit-exactly.
    let flight = lf_flight::enabled();

    for k in 0..cfg.max_iters {
        let _iter_span = tracer.span_dyn(|| format!("iter_{k}"));
        let charging = k % cfg.m != cfg.k_m;
        if charging {
            let p = cfg.p;
            match keys {
                // Explicit per-vertex keys (fused block-diagonal run):
                // one extra u32 read per vertex.
                Some(keys) => {
                    launch::map1(dev, "charge", charges, keys.len() * 4, |v| {
                        charge(keys[v], k as u32, p)
                    });
                }
                None => {
                    let salt = cfg.charge_salt;
                    launch::map1(dev, "charge", charges, 0, |v| {
                        charge(salted_key(v as u32, salt), k as u32, p)
                    });
                }
            }
        }
        {
            // |π'(w)| = n lookup table (line 15)
            let c: &[TopK<T, K>] = confirmed;
            launch::map1(
                dev,
                "full_flags",
                full,
                nv * std::mem::size_of::<TopK<T, K>>(),
                |v| c[v].len() == K,
            );
        }
        let flen = {
            let ops = PropOps::<T, K> {
                confirmed: &*confirmed,
                full: &*full,
                charges: &*charges,
                charging,
            };
            propose_into(
                dev,
                aprime,
                cfg.engine,
                cfg.frontier,
                &ops,
                full,
                proposals,
                frontier,
                vrow_ptr,
                fout,
                scratch,
            )
        };
        let mut proposed: usize = 0;
        if tracer.is_active() || metrics.is_some() || flight {
            proposed = if cfg.frontier {
                fout.as_slice().iter().map(|t| t.len()).sum::<usize>() + (nv - flen) * K
            } else {
                proposals.iter().map(|t| t.len()).sum()
            };
            if tracer.is_active() {
                tracer.metric("frontier", flen as f64);
                tracer.metric("proposed_slots", proposed as f64);
            }
            if let Some(m) = &metrics {
                m.frontier.record(flen as u64);
                m.proposed.record(proposed as u64);
            }
        }

        if !charging {
            // |π(V)| = |π'(V)| on an uncharged iteration ⇒ maximal
            // (line 23). Full rows contribute exactly K slots to both
            // sides, so in frontier mode the count runs over the frontier
            // outputs only and the full rows are added back in closed form.
            // A map→reduce pair under the fusion pass: fused (default) the
            // slot-count map stays in registers and this is the historical
            // single `count_slots` launch; unfused a `count_slots_map`
            // launch materializes the per-row counts first.
            let after = if cfg.frontier {
                let af = reduce::map_reduce(
                    dev,
                    "count_slots_map",
                    "count_slots",
                    fout.as_slice(),
                    0usize,
                    |t| t.len(),
                    |a, b| a + b,
                );
                af + (nv - flen) * K
            } else {
                reduce::map_reduce(
                    dev,
                    "count_slots_map",
                    "count_slots",
                    proposals,
                    0usize,
                    |t| t.len(),
                    |a, b| a + b,
                )
            };
            if slots == after {
                if flight {
                    lf_flight::record(lf_flight::FlightEvent::FactorIter {
                        iter: k as u64,
                        frontier: flen as u64,
                        proposed: proposed as u64,
                        confirmed: after as u64,
                    });
                }
                iterations = k + 1;
                maximal = true;
                break;
            }
        }

        // Remove non-mutual propositions (line 26), counting the surviving
        // slots in the same launch.
        slots = if cfg.frontier {
            confirm_frontier(dev, confirmed, proposals, frontier.as_slice()) + (nv - flen) * K
        } else {
            confirm_dense(dev, confirmed, proposals)
        };
        if let Some(m) = &metrics {
            m.confirmed.record(slots as u64);
        }
        if flight {
            lf_flight::record(lf_flight::FlightEvent::FactorIter {
                iter: k as u64,
                frontier: flen as u64,
                proposed: proposed as u64,
                confirmed: slots as u64,
            });
        }
        if tracer.is_active() {
            tracer.metric("confirmed_slots", slots as f64);
            tracer.metric("edges_confirmed", (slots / 2) as f64);
            // Σ over confirmed slots of |a_vw|, halved because each edge
            // appears in both endpoints' slots. Host-side O(nv) sum —
            // deliberately tracer-only, not a registry metric.
            let covered: f64 = confirmed
                .iter()
                .flat_map(|t| t.iter().map(|(w, _)| w.to_f64()))
                .sum();
            tracer.metric("covered_weight", covered / 2.0);
        }
    }

    if let Some(m) = &metrics {
        m.runs.inc();
        m.iterations.add(iterations as u64);
        m.rounds.record(iterations as u64);
        if maximal {
            m.maximal_runs.inc();
        }
    }

    // flatten confirmed slots into the Factor representation
    let mut cols = vec![crate::factor::INVALID; nv * K];
    let mut wvals = vec![T::ZERO; nv * K];
    for (v, t) in confirmed.iter().enumerate() {
        for (s, (w, c)) in t.iter().enumerate() {
            cols[v * K + s] = c;
            wvals[v * K + s] = w;
        }
    }
    FactorOutcome {
        factor: Factor::from_slots(nv, K, cols, wvals),
        iterations,
        maximal,
    }
}

fn proposition_stats_impl<T: Scalar, const K: usize>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    warmup: usize,
) -> lf_kernel::DeviceStats {
    let nv = aprime.nrows();
    // Warm-up iterations produce the k > 0 confirmed-edge state.
    let mut ws = FactorWorkspace::<T, K>::new();
    let warm = run::<T, K>(dev, aprime, &cfg.with_max_iters(warmup), None, &mut ws);
    let mut confirmed: Vec<TopK<T, K>> = vec![TopK::empty(); nv];
    for (v, slot) in confirmed.iter_mut().enumerate() {
        for (c, w) in warm.factor.partners(v) {
            slot.insert(w, c);
        }
    }
    let full: Vec<bool> = confirmed.iter().map(|t| t.len() == K).collect();
    let charges = vec![false; nv];
    let ops = PropOps::<T, K> {
        confirmed: &confirmed,
        full: &full,
        charges: &charges,
        charging: false,
    };
    let mut proposals: Vec<TopK<T, K>> = vec![TopK::empty(); nv];
    let mut frontier = Reusable::new();
    let mut vrow_ptr = Reusable::new();
    let mut fout = Reusable::new();
    let mut scratch = SrcsrScratch::new();
    // The scoped region covers the whole per-iteration proposition phase:
    // in frontier mode that includes the compaction, view build and
    // scatter-back, so the stats reflect the real cost of the mode.
    let (_, stats) = dev.scoped(|| {
        propose_into(
            dev,
            aprime,
            cfg.engine,
            cfg.frontier,
            &ops,
            &full,
            &mut proposals,
            &mut frontier,
            &mut vrow_ptr,
            &mut fout,
            &mut scratch,
        )
    });
    stats
}

/// Benchmark hook for the paper's Fig. 3: run `warmup` full Algorithm-2
/// iterations (producing a realistic `k > 0` confirmed-edge state), then
/// execute **one isolated edge-proposition kernel** with charging disabled
/// (`m = 1`, `k_m = 0`) and return the device statistics of exactly that
/// launch group.
pub fn proposition_kernel_stats<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    warmup: usize,
) -> lf_kernel::DeviceStats {
    match cfg.n {
        1 => proposition_stats_impl::<T, 1>(dev, aprime, cfg, warmup),
        2 => proposition_stats_impl::<T, 2>(dev, aprime, cfg, warmup),
        3 => proposition_stats_impl::<T, 3>(dev, aprime, cfg, warmup),
        4 => proposition_stats_impl::<T, 4>(dev, aprime, cfg, warmup),
        5 => proposition_stats_impl::<T, 5>(dev, aprime, cfg, warmup),
        6 => proposition_stats_impl::<T, 6>(dev, aprime, cfg, warmup),
        7 => proposition_stats_impl::<T, 7>(dev, aprime, cfg, warmup),
        8 => proposition_stats_impl::<T, 8>(dev, aprime, cfg, warmup),
        n => panic!("degree bound n = {n} unsupported (1..=8; the paper implements n ≤ 4)"),
    }
}

/// Compute a [0,n]-factor of the undirected weighted graph `aprime` in
/// parallel (Algorithm 2). `aprime` must be a symmetric nonnegative matrix
/// with empty diagonal — see [`crate::prepare_undirected`].
///
/// # Errors
///
/// [`PipelineError::NonSquareMatrix`] when `aprime` is not square, and
/// [`PipelineError::UnsupportedDegreeBound`] when `cfg.n` is outside
/// `1..=8`.
pub fn try_parallel_factor<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
) -> Result<FactorOutcome<T>, PipelineError> {
    try_parallel_factor_keyed(dev, aprime, cfg, None)
}

/// [`try_parallel_factor`] with explicit per-vertex charge keys, the fused
/// block-diagonal entry point: `keys[v]` replaces the vertex ID in the
/// charge hash, so a disjoint-union graph whose keys are
/// `salted_key(local_v, salt_of_block)` charges every block exactly as the
/// blocks' solo runs would.
///
/// # Errors
///
/// Everything [`try_parallel_factor`] reports, plus
/// [`PipelineError::ChargeKeyCount`] when `keys` is present but does not
/// have one key per vertex.
pub fn try_parallel_factor_keyed<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    keys: Option<&[u32]>,
) -> Result<FactorOutcome<T>, PipelineError> {
    if aprime.nrows() != aprime.ncols() {
        return Err(PipelineError::NonSquareMatrix {
            nrows: aprime.nrows(),
            ncols: aprime.ncols(),
        });
    }
    if let Some(k) = keys {
        if k.len() != aprime.nrows() {
            return Err(PipelineError::ChargeKeyCount {
                expected: aprime.nrows(),
                got: k.len(),
            });
        }
    }
    Ok(match cfg.n {
        1 => run::<T, 1>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        2 => run::<T, 2>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        3 => run::<T, 3>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        4 => run::<T, 4>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        5 => run::<T, 5>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        6 => run::<T, 6>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        7 => run::<T, 7>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        8 => run::<T, 8>(dev, aprime, cfg, keys, &mut FactorWorkspace::new()),
        n => return Err(PipelineError::UnsupportedDegreeBound { n }),
    })
}

/// [`try_parallel_factor_keyed`] with a caller-owned workspace whose degree
/// bound `K` is checked against `cfg.n` — the batching service's factor
/// entry: keys, workspace reuse, and typed errors in one call.
pub fn try_parallel_factor_with_workspace<T: Scalar, const K: usize>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    keys: Option<&[u32]>,
    ws: &mut FactorWorkspace<T, K>,
) -> Result<FactorOutcome<T>, PipelineError> {
    if aprime.nrows() != aprime.ncols() {
        return Err(PipelineError::NonSquareMatrix {
            nrows: aprime.nrows(),
            ncols: aprime.ncols(),
        });
    }
    if cfg.n != K {
        return Err(PipelineError::UnsupportedDegreeBound { n: cfg.n });
    }
    if let Some(k) = keys {
        if k.len() != aprime.nrows() {
            return Err(PipelineError::ChargeKeyCount {
                expected: aprime.nrows(),
                got: k.len(),
            });
        }
    }
    Ok(run::<T, K>(dev, aprime, cfg, keys, ws))
}

/// [`try_parallel_factor`] for call sites with statically valid
/// configurations: panics on the errors the checked variant reports.
pub fn parallel_factor<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
) -> FactorOutcome<T> {
    match try_parallel_factor(dev, aprime, cfg) {
        Ok(out) => out,
        Err(e) => panic!("{e} (unsupported input; use try_parallel_factor to handle)"),
    }
}

/// [`parallel_factor`] with a caller-owned [`FactorWorkspace`], for loops
/// that compute many factors (the preconditioner pipeline, benchmarks): all
/// per-iteration buffers are reused across calls instead of reallocated.
/// The workspace degree bound `K` must equal `cfg.n`.
pub fn parallel_factor_with_workspace<T: Scalar, const K: usize>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    ws: &mut FactorWorkspace<T, K>,
) -> FactorOutcome<T> {
    assert_eq!(aprime.nrows(), aprime.ncols(), "graph matrix must be square");
    assert_eq!(
        cfg.n, K,
        "workspace degree bound K = {K} must equal cfg.n = {}",
        cfg.n
    );
    run::<T, K>(dev, aprime, cfg, None, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::weight_coverage;
    use crate::greedy::greedy_factor;
    use crate::prepare_undirected;
    use lf_sparse::random::random_symmetric;
    use lf_sparse::stencil::{grid2d, ANISO1, FIVE_POINT};
    use lf_sparse::Coo;

    #[test]
    fn factor_loop_feeds_metrics_registry_when_enabled() {
        // The registry is process-global and tests run concurrently, so
        // assert only lower bounds caused by this run.
        let a = prepare_undirected(&grid2d::<f64>(16, 16, &FIVE_POINT));
        let dev = Device::default();
        let m = lf_metrics::global();
        let runs_before = m.counter("lf_factor_runs_total", "Factor runs.").get();
        let rounds_before = m
            .histogram("lf_factor_rounds", "", lf_metrics::Unit::Count)
            .count();
        lf_metrics::enable();
        let out = parallel_factor(&dev, &a, &FactorConfig::paper_default(2));
        lf_metrics::disable();
        let runs_after = m.counter("lf_factor_runs_total", "Factor runs.").get();
        assert!(runs_after > runs_before, "run counter did not advance");
        assert!(
            m.histogram("lf_factor_rounds", "", lf_metrics::Unit::Count).count() > rounds_before,
            "rounds histogram did not record"
        );
        assert!(out.iterations >= 1);
        // Frontier/proposal histograms recorded at least one iteration.
        let snap = m.snapshot();
        for name in ["lf_factor_frontier", "lf_factor_proposed_slots", "lf_factor_confirmed_slots"] {
            assert!(
                snap.families.iter().any(|f| f.name == name),
                "missing family {name}"
            );
        }
    }

    #[test]
    fn charge_salt_zero_is_legacy_and_keys_match_salt() {
        // Regression for the per-graph charge salt: salt 0 must reproduce
        // the pre-salt pipeline bit-for-bit, and explicit per-vertex keys
        // built with `salted_key` must reproduce the salted solo run —
        // the identity block-diagonal fusion is built on.
        let a = prepare_undirected(&random_symmetric::<f64>(400, 5.0, 0.1, 1.0, 11));
        let dev = Device::default();
        let cfg = FactorConfig::paper_default(2);
        let legacy = parallel_factor(&dev, &a, &cfg);
        assert_eq!(cfg.charge_salt, 0, "default salt is the identity");
        let salt0 = parallel_factor(&dev, &a, &cfg.with_charge_salt(0));
        assert_eq!(legacy.factor, salt0.factor);

        let salt = 0x00c0_ffee;
        let salted = parallel_factor(&dev, &a, &cfg.with_charge_salt(salt));
        let keys: Vec<u32> = (0..400).map(|v| crate::charge::salted_key(v, salt)).collect();
        let keyed = try_parallel_factor_keyed(&dev, &a, &cfg, Some(&keys)).unwrap();
        assert_eq!(salted.factor, keyed.factor);
        assert_eq!(salted.iterations, keyed.iterations);
        // A different salt draws a different charge stream: on a random
        // graph with this many tie-less weights the factor changes.
        assert_ne!(salted.factor, legacy.factor, "salt had no effect");
    }

    #[test]
    fn keyed_factor_rejects_bad_key_count() {
        let a = prepare_undirected(&random_symmetric::<f64>(50, 3.0, 0.1, 1.0, 3));
        let keys = vec![0u32; 49];
        let err = try_parallel_factor_keyed(
            &Device::default(),
            &a,
            &FactorConfig::paper_default(2),
            Some(&keys),
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::ChargeKeyCount { expected: 50, got: 49 });
    }

    #[test]
    fn fig1_worked_example() {
        // Paper Figure 1: 10 vertices; after one uncharged proposition +
        // confirmation with n = 2, the strongest mutual pairs survive.
        // We reproduce the qualitative behaviour on a small weighted graph:
        // a 4-cycle with distinct weights confirms all 4 edges for n = 2.
        let mut coo = Coo::<f32>::new(4, 4);
        coo.push_sym(0, 1, 0.9);
        coo.push_sym(1, 2, 0.8);
        coo.push_sym(2, 3, 0.7);
        coo.push_sym(3, 0, 0.6);
        let a = Csr::from_coo(coo);
        let out = parallel_factor(
            &Device::default(),
            &a,
            &FactorConfig::paper_default(2).with_max_iters(11),
        );
        assert_eq!(out.factor.edges().len(), 4);
        out.factor.validate(&a).unwrap();
        // maximality can only be detected on an uncharged iteration
        // (k = 5 is the first one after the work is done at k = 0)
        assert!(out.maximal);
        assert_eq!(out.iterations, 6);
    }

    #[test]
    fn invariants_on_random_graphs_all_n() {
        let dev = Device::default();
        for seed in 0..3 {
            let a: Csr<f64> = random_symmetric(300, 7.0, 0.1, 1.0, seed);
            let ap = prepare_undirected(&a);
            for n in 1..=4 {
                let cfg = FactorConfig::paper_default(n).with_max_iters(30);
                let out = parallel_factor(&dev, &ap, &cfg);
                out.factor.validate(&ap).unwrap();
                for v in 0..300 {
                    assert!(out.factor.degree(v) <= n);
                }
            }
        }
    }

    #[test]
    fn reaches_maximality_and_detects_it() {
        let dev = Device::default();
        let a: Csr<f64> = random_symmetric(400, 6.0, 0.1, 1.0, 3);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2).with_max_iters(500);
        let out = parallel_factor(&dev, &ap, &cfg);
        assert!(out.maximal, "should detect maximality");
        assert!(out.iterations < 500);
        assert!(out.factor.is_maximal(&ap));
    }

    #[test]
    fn coverage_close_to_greedy() {
        // Table 5: parallel c_π(5) within a few percent of sequential.
        let dev = Device::default();
        let a: Csr<f64> = grid2d(24, 24, &ANISO1);
        let ap = prepare_undirected(&a);
        for n in 1..=4 {
            let par = parallel_factor(&dev, &ap, &FactorConfig::paper_default(n));
            let seq = greedy_factor(&ap, n);
            let cp = weight_coverage(&par.factor, &a);
            let cs = weight_coverage(&seq, &a);
            assert!(
                cp >= cs - 0.08,
                "n={n}: parallel {cp:.3} far below sequential {cs:.3}"
            );
        }
    }

    #[test]
    fn uniform_weights_stall_without_charging() {
        // The ECOLOGY effect (Table 4): equal weights + no charging makes
        // confirmation crawl; charging fixes it.
        let dev = Device::default();
        let a: Csr<f64> = grid2d(24, 24, &FIVE_POINT);
        let ap = prepare_undirected(&a);
        let stalled = parallel_factor(&dev, &ap, &FactorConfig::config1(2));
        let charged = parallel_factor(&dev, &ap, &FactorConfig::config2(2));
        let c_stall = weight_coverage(&stalled.factor, &a);
        let c_charged = weight_coverage(&charged.factor, &a);
        assert!(
            c_stall < 0.25,
            "uncharged should stall after 5 iters, got {c_stall:.3}"
        );
        assert!(
            c_charged > 0.35,
            "charged should progress, got {c_charged:.3}"
        );
        // ... but the uncharged version eventually becomes maximal
        let long = parallel_factor(&dev, &ap, &FactorConfig::config1(2).with_max_iters(5000));
        assert!(long.maximal);
        assert!(long.iterations > 20, "wave takes ~diameter iterations");
        assert!(weight_coverage(&long.factor, &a) > 0.4);
    }

    #[test]
    fn engines_agree() {
        let dev = Device::default();
        let a: Csr<f64> = random_symmetric(500, 8.0, 0.1, 1.0, 9);
        let ap = prepare_undirected(&a);
        let r1 = parallel_factor(
            &dev,
            &ap,
            &FactorConfig::paper_default(2).with_engine(SpmvEngine::RowParallel),
        );
        let r2 = parallel_factor(
            &dev,
            &ap,
            &FactorConfig::paper_default(2).with_engine(SpmvEngine::SrCsr),
        );
        assert_eq!(r1.factor, r2.factor, "engines must be bit-identical");
    }

    #[test]
    fn frontier_identical_to_dense_both_engines() {
        let dev = Device::default();
        for seed in [1u64, 42] {
            let a: Csr<f64> = random_symmetric(600, 8.0, 0.1, 1.0, seed);
            let ap = prepare_undirected(&a);
            for n in [1usize, 2, 4] {
                for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
                    let cfg = FactorConfig::paper_default(n)
                        .with_max_iters(40)
                        .with_engine(engine);
                    let dense = parallel_factor(&dev, &ap, &cfg);
                    let front = parallel_factor(&dev, &ap, &cfg.with_frontier(true));
                    assert_eq!(
                        dense.factor, front.factor,
                        "seed={seed} n={n} engine={engine:?}: factors must be bit-identical"
                    );
                    assert_eq!(dense.iterations, front.iterations);
                    assert_eq!(dense.maximal, front.maximal);
                }
            }
        }
    }

    #[test]
    fn frontier_reduces_proposition_reads_when_half_full() {
        // Acceptance bound: once the frontier holds < half the vertices,
        // the proposition phase must read ≥ 25% fewer bytes than dense.
        let dev = Device::default();
        let a: Csr<f64> = grid2d(48, 48, &ANISO1);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2).with_max_iters(40);
        // Find a warmup depth with frontier < nv/2 (confirmed slots say
        // how many vertices are full; warmup until most are).
        let warm = parallel_factor(&dev, &ap, &cfg.with_max_iters(40));
        assert!(warm.maximal, "grid should reach maximality");
        let warmup = warm.iterations; // maximal state: frontier is smallest
        let nv = ap.nrows();
        let full_now = (0..nv)
            .filter(|&v| warm.factor.degree(v) == 2)
            .count();
        assert!(
            nv - full_now < nv / 2,
            "test premise: frontier ({}) must be under half of {nv}",
            nv - full_now
        );
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            let cfg = cfg.with_engine(engine);
            let dense = proposition_kernel_stats(&dev, &ap, &cfg, warmup);
            let front =
                proposition_kernel_stats(&dev, &ap, &cfg.with_frontier(true), warmup);
            assert!(
                (front.traffic.read as f64) <= 0.75 * dense.traffic.read as f64,
                "engine {engine:?}: frontier read {} vs dense {} (< 25% saved)",
                front.traffic.read,
                dense.traffic.read
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let dev = Device::default();
        let mut ws = FactorWorkspace::<f64, 2>::new();
        // Different graphs and sizes through one workspace, interleaved
        // with fresh-allocation runs.
        for (i, nv) in [300usize, 120, 500].iter().enumerate() {
            let a: Csr<f64> = random_symmetric(*nv, 6.0, 0.1, 1.0, i as u64 + 10);
            let ap = prepare_undirected(&a);
            for frontier in [false, true] {
                let cfg = FactorConfig::paper_default(2)
                    .with_max_iters(25)
                    .with_frontier(frontier);
                let fresh = parallel_factor(&dev, &ap, &cfg);
                let reused = parallel_factor_with_workspace(&dev, &ap, &cfg, &mut ws);
                assert_eq!(fresh.factor, reused.factor, "nv={nv} frontier={frontier}");
                assert_eq!(fresh.iterations, reused.iterations);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must equal cfg.n")]
    fn workspace_wrong_k_rejected() {
        let a: Csr<f64> = random_symmetric(10, 2.0, 0.1, 1.0, 1);
        let mut ws = FactorWorkspace::<f64, 3>::new();
        parallel_factor_with_workspace(
            &Device::default(),
            &a,
            &FactorConfig::paper_default(2),
            &mut ws,
        );
    }

    #[test]
    fn n_one_is_a_matching() {
        let dev = Device::default();
        let a: Csr<f64> = random_symmetric(200, 10.0, 0.1, 1.0, 5);
        let ap = prepare_undirected(&a);
        let out = parallel_factor(&dev, &ap, &FactorConfig::paper_default(1).with_max_iters(50));
        for v in 0..200 {
            assert!(out.factor.degree(v) <= 1);
        }
        out.factor.validate(&ap).unwrap();
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn n_nine_rejected() {
        let a: Csr<f64> = random_symmetric(10, 2.0, 0.1, 1.0, 1);
        parallel_factor(&Device::default(), &a, &FactorConfig::paper_default(9));
    }

    #[test]
    fn try_variant_reports_typed_errors() {
        let dev = Device::default();
        let a: Csr<f64> = random_symmetric(10, 2.0, 0.1, 1.0, 1);
        let err = try_parallel_factor(&dev, &a, &FactorConfig::paper_default(9)).unwrap_err();
        assert_eq!(err, PipelineError::UnsupportedDegreeBound { n: 9 });
        let mut coo = Coo::<f64>::new(2, 3);
        coo.push(0, 2, 1.0);
        let rect = Csr::from_coo(coo);
        let err = try_parallel_factor(&dev, &rect, &FactorConfig::paper_default(2)).unwrap_err();
        assert_eq!(err, PipelineError::NonSquareMatrix { nrows: 2, ncols: 3 });
    }

    #[test]
    fn extension_n_up_to_eight() {
        // beyond the paper's n ≤ 4: invariants and monotone coverage
        let dev = Device::default();
        let a: Csr<f64> = random_symmetric(250, 12.0, 0.1, 1.0, 77);
        let ap = prepare_undirected(&a);
        let mut last = 0.0;
        for n in [4usize, 6, 8] {
            let out = parallel_factor(&dev, &ap, &FactorConfig::paper_default(n));
            out.factor.validate(&ap).unwrap();
            for v in 0..250 {
                assert!(out.factor.degree(v) <= n);
            }
            let c = weight_coverage(&out.factor, &a);
            assert!(c + 1e-9 >= last, "coverage must grow with n");
            last = c;
        }
    }
}
