//! Step (2) of the linear-forest extraction (paper Sec. 3.3, Algorithm 3):
//! compute, for every vertex of an **acyclic** [0,2]-factor, the ID of its
//! path and its position within the path.
//!
//! The bidirectional scan with the `+` operator and initial value 1
//! determines the distance to both path ends; the **path ID is the smaller
//! end vertex's ID**, which also fixes the orientation: the smaller end is
//! at position 1 (paper Sec. 3.3).

use crate::factor::Factor;
use crate::scan::{bidirectional_scan, BidirResult};
use lf_kernel::{launch, reduce, Device};
use lf_sparse::Scalar;

/// Path IDs and positions of a linear forest, as produced by Algorithm 3.
#[derive(Clone, Debug, PartialEq)]
pub struct PathInfo {
    /// `l(v)`: the path ID — the smaller of the two path-end vertex IDs.
    pub path_id: Vec<u32>,
    /// `p(v)`: 1-based position of `v` within its path, counted from the
    /// end vertex `l(v)`.
    pub position: Vec<u32>,
}

impl PathInfo {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.path_id.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.path_id.is_empty()
    }

    /// Number of distinct paths (vertices that are their own path ID at
    /// position 1 — i.e. the chosen path ends).
    pub fn num_paths(&self) -> usize {
        self.path_id
            .iter()
            .zip(&self.position)
            .enumerate()
            .filter(|&(v, (&l, &p))| l as usize == v && p == 1)
            .count()
    }

    /// Length of each path (indexed by path ID order of appearance in
    /// [`PathInfo::to_paths`]); the mean/max are quality diagnostics —
    /// longer paths mean better tridiagonal coverage.
    pub fn path_lengths(&self) -> Vec<usize> {
        self.to_paths().iter().map(|p| p.len()).collect()
    }

    /// Histogram of path lengths as (length, count), ascending by length.
    pub fn length_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for l in self.path_lengths() {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }

    /// Group vertices into explicit paths, each ordered by position.
    /// O(N log N); for inspection, tests and examples.
    pub fn to_paths(&self) -> Vec<Vec<u32>> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.sort_unstable_by_key(|&v| {
            ((self.path_id[v as usize] as u64) << 32) | self.position[v as usize] as u64
        });
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut cur_id = u32::MAX;
        for v in idx {
            let l = self.path_id[v as usize];
            if l != cur_id {
                out.push(Vec::new());
                cur_id = l;
            }
            out.last_mut().expect("pushed above").push(v);
        }
        out
    }
}

/// Errors from path identification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The factor still contains a cycle (vertex given); run
    /// [`crate::cycles::break_cycles`] first.
    CycleDetected(u32),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::CycleDetected(v) => {
                write!(f, "vertex {v} lies on a cycle; break cycles first")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Compute path IDs and positions for an acyclic [0,2]-factor
/// (Algorithm 3). Returns an error naming a vertex on a cycle if the
/// factor is not acyclic.
pub fn identify_paths<T: Scalar>(
    dev: &Device,
    factor: &Factor<T>,
) -> Result<PathInfo, PathError> {
    let nv = factor.num_vertices();
    let res: BidirResult<u32> =
        bidirectional_scan(dev, factor, "identify_paths", |_, _| 1u32, |a, b| a + b);

    // Cycle check: a positive (non-end) stride-q_max link after all steps
    // means the vertex never reached a path end (Sec. 4.2).
    // A map→reduce pair under the fusion pass: fused (default) the 0/1
    // cycle flag is computed inside the max-reduction; unfused a
    // `cycle_check_map` launch materializes the flags first.
    let cyc = reduce::map_max_by_key(dev, "cycle_check_map", "cycle_check", &res.links, |l| {
        u32::from(!l[0].is_end() || !l[1].is_end())
    });
    if let Some(v) = cyc {
        if res.in_cycle(v) {
            return Err(PathError::CycleDetected(v as u32));
        }
    }

    let mut path_id = vec![0u32; nv];
    let mut position = vec![0u32; nv];
    let links = &res.links;
    let values = &res.values;
    launch::map2(
        dev,
        "assign_path_ids",
        &mut path_id,
        &mut position,
        nv * (std::mem::size_of::<[crate::scan::Link; 2]>() + 8),
        |v| {
            // l(v) ← min end ID; p(v) ← distance toward that end
            // (Alg. 3 lines 27–33)
            let (e0, e1) = (links[v][0].id(), links[v][1].id());
            if e0 <= e1 {
                (e0, values[v][0])
            } else {
                (e1, values[v][1])
            }
        },
    );
    Ok(PathInfo { path_id, position })
}

/// Sequential reference implementation: walk every path from its smaller
/// end. Used for testing and for the paper's Fig. 5 CPU/GPU comparison —
/// note it does strictly less work than the scan (no log factor), exactly
/// as the paper describes for its sequential version.
pub fn identify_paths_sequential<T: Scalar>(factor: &Factor<T>) -> Result<PathInfo, PathError> {
    let nv = factor.num_vertices();
    let mut path_id = vec![u32::MAX; nv];
    let mut position = vec![0u32; nv];
    // find path ends: degree ≤ 1
    for start in 0..nv {
        if factor.degree(start) > 1 || path_id[start] != u32::MAX {
            continue;
        }
        // walk to the other end, collecting vertices
        let mut verts = vec![start as u32];
        let mut prev = u32::MAX;
        let mut cur = start as u32;
        while let Some(next) = factor
            .partners(cur as usize)
            .map(|(w, _)| w)
            .find(|&w| w != prev)
        {
            prev = cur;
            cur = next;
            verts.push(cur);
        }
        let id = (*verts.first().expect("nonempty")).min(*verts.last().expect("nonempty"));
        if id != verts[0] {
            verts.reverse();
        }
        for (i, &v) in verts.iter().enumerate() {
            path_id[v as usize] = id;
            position[v as usize] = i as u32 + 1;
        }
    }
    // all remaining vertices (degree 2 everywhere) are on cycles
    if let Some(v) = path_id.iter().position(|&l| l == u32::MAX) {
        return Err(PathError::CycleDetected(v as u32));
    }
    Ok(PathInfo { path_id, position })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::factor_from_edges;

    #[test]
    fn three_path_positions() {
        let f = factor_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        assert_eq!(p.path_id, vec![0, 0, 0]);
        assert_eq!(p.position, vec![1, 2, 3]);
        assert_eq!(p.num_paths(), 1);
    }

    #[test]
    fn orientation_from_smaller_end() {
        // path 5-2-7: ends {5, 7}, so path id 5, positions 5→1, 2→2, 7→3
        let f = factor_from_edges(8, &[(5, 2, 1.0), (2, 7, 1.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        assert_eq!(p.path_id[5], 5);
        assert_eq!(p.path_id[2], 5);
        assert_eq!(p.path_id[7], 5);
        assert_eq!(p.position[5], 1);
        assert_eq!(p.position[2], 2);
        assert_eq!(p.position[7], 3);
        // isolated vertices are their own paths
        assert_eq!(p.path_id[0], 0);
        assert_eq!(p.position[0], 1);
        assert_eq!(p.num_paths(), 6);
    }

    #[test]
    fn cycle_rejected() {
        let f = factor_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let dev = Device::default();
        match identify_paths(&dev, &f) {
            Err(PathError::CycleDetected(v)) => assert!(v < 3),
            other => panic!("expected cycle error, got {other:?}"),
        }
        assert!(identify_paths_sequential(&f).is_err());
    }

    #[test]
    fn matches_sequential_on_random_forests() {
        use rand::{Rng, SeedableRng};
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(33);
        for trial in 0..20 {
            let nv = 200;
            let mut perm: Vec<u32> = (0..nv as u32).collect();
            for i in (1..nv).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            let mut edges = Vec::new();
            let mut i = 0;
            while i < nv {
                let len = rng.random_range(1..=17).min(nv - i);
                for t in 0..len - 1 {
                    edges.push((perm[i + t], perm[i + t + 1], 1.0f32));
                }
                i += len;
            }
            let f = factor_from_edges(nv, &edges);
            let par = identify_paths(&dev, &f).unwrap();
            let seq = identify_paths_sequential(&f).unwrap();
            assert_eq!(par, seq, "trial {trial}");
        }
    }

    #[test]
    fn length_histogram_counts() {
        let f = factor_from_edges(6, &[(0, 3, 1.0), (3, 1, 1.0), (2, 4, 1.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        // paths: {0,3,1}, {2,4}, {5} → lengths 3, 2, 1
        assert_eq!(p.length_histogram(), vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(p.path_lengths().iter().sum::<usize>(), 6);
    }

    #[test]
    fn to_paths_groups_in_order() {
        let f = factor_from_edges(5, &[(0, 3, 1.0), (3, 1, 1.0), (2, 4, 1.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        let paths = p.to_paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![0, 3, 1]));
        assert!(paths.contains(&vec![2, 4]));
    }
}
