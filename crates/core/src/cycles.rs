//! Step (1) of the linear-forest extraction (paper Sec. 3.3): identify the
//! cycles of a [0,2]-factor and break each by removing its **weakest
//! edge**, keeping the forest weight ω_π large.
//!
//! The weakest edge is found with the bidirectional scan parameterized on
//! a lexicographic minimum over `(|weight|, v_min, v_max)` — the weight
//! plus the incident vertex IDs identify the edge uniquely (Sec. 3.3), so
//! both endpoints of the weakest edge agree on which edge to drop and the
//! removal needs no synchronization.

use crate::factor::Factor;
use crate::scan::{bidirectional_scan, BidirResult};
use lf_kernel::{Device, Traffic};
use lf_sparse::Scalar;
use rayon::prelude::*;

/// A candidate weakest edge: weight plus canonical (min, max) endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinEdge<T> {
    /// |weight| of the edge.
    pub w: T,
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
}

impl<T: Scalar> Default for MinEdge<T> {
    fn default() -> Self {
        Self::infinity()
    }
}

impl<T: Scalar> MinEdge<T> {
    /// The identity of the min-combine: an edge heavier than everything.
    pub fn infinity() -> Self {
        Self {
            w: T::from_f64(f64::INFINITY),
            u: u32::MAX,
            v: u32::MAX,
        }
    }

    /// Canonicalized edge.
    pub fn new(w: T, a: u32, b: u32) -> Self {
        Self {
            w: w.abs(),
            u: a.min(b),
            v: a.max(b),
        }
    }

    /// Lexicographic minimum on `(w, u, v)` — a total order on distinct
    /// edges, hence an idempotent, associative, commutative combine.
    ///
    /// The weight comparison uses [`Scalar::total_cmp`] (IEEE 754
    /// `totalOrder`), not `PartialOrd`: a NaN weight under tuple
    /// `PartialOrd` compares as neither smaller nor greater, which
    /// silently destroys associativity and makes the scan result depend
    /// on combine order. Under `total_cmp`, NaN sorts above +∞, so a NaN
    /// edge simply never wins the minimum. (Non-finite weights are
    /// rejected at input by `lf-sparse`; this keeps the combine lawful
    /// even if one sneaks in through an unchecked path.)
    pub fn min(self, other: Self) -> Self {
        let cmp = other
            .w
            .total_cmp(self.w)
            .then(other.u.cmp(&self.u))
            .then(other.v.cmp(&self.v));
        if cmp == std::cmp::Ordering::Less {
            other
        } else {
            self
        }
    }

    /// `total_cmp`-free fast path of [`MinEdge::min`] for **pre-sanitized
    /// keys**: weights stored by [`MinEdge::new`] pass through `abs()`, so
    /// on inputs whose weights are finite (enforced at ingestion by
    /// `lf-sparse`) every key is a non-negative, non-NaN float — plus the
    /// `+∞` combine identity. On that domain a plain `PartialOrd` compare
    /// decides exactly like IEEE `totalOrder` (no NaNs to order, no `-0.0`
    /// after `abs()`).
    ///
    /// Written branch-free on purpose: both the weight compares and the
    /// packed endpoint tie-break are evaluated unconditionally (`|`/`&`,
    /// not `||`/`&&`), so the only data-dependent select is the final one
    /// and meshes with many duplicate weights don't stall on tie-break
    /// mispredictions the way `total_cmp`'s `Ordering` chain does.
    /// Bit-identical to [`MinEdge::min`] on the sanitized domain; backends
    /// advertise eligibility via `Backend::sanitized_keys()`.
    #[inline]
    pub fn min_sanitized(self, other: Self) -> Self {
        let pack = |e: &Self| ((e.u as u64) << 32) | e.v as u64;
        let better = (other.w < self.w) | ((other.w == self.w) & (pack(&other) < pack(&self)));
        if better {
            other
        } else {
            self
        }
    }

    /// Whether `x` is an endpoint.
    pub fn touches(&self, x: u32) -> bool {
        self.u == x || self.v == x
    }
}

/// Outcome of cycle breaking.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Number of cycles found (= number of removed edges).
    pub cycles: usize,
    /// The removed edges, one per cycle, as `(u, v)` with `u < v`.
    pub removed: Vec<(u32, u32)>,
}

/// Identify all cycles of the [0,2]-factor and remove each cycle's weakest
/// edge in place. Returns which edges were removed.
///
/// Kernel structure matches the paper: one bidirectional min-scan
/// (`identify_cycles` kernels, `⌈log₂ N⌉` launches) followed by one edge
/// removal kernel.
pub fn break_cycles<T: Scalar>(dev: &Device, factor: &mut Factor<T>) -> CycleReport {
    let nv = factor.num_vertices();
    // Backends that guarantee pre-sanitized keys (weights are `abs()`'d by
    // `MinEdge::new` and finite by `lf-sparse` ingestion) may take the
    // `total_cmp`-free combine; the result is bit-identical on that domain.
    let sanitized = dev.backend().sanitized_keys();
    let res: BidirResult<MinEdge<T>> = bidirectional_scan(
        dev,
        factor,
        "identify_cycles",
        |v, s| match factor.partners(v).nth(s) {
            Some((w, x)) => MinEdge::new(x, v as u32, w),
            None => MinEdge::infinity(),
        },
        move |a, b| {
            if sanitized {
                a.min_sanitized(b)
            } else {
                a.min(b)
            }
        },
    );

    // Collect the removed edges: the min edge of each cycle, reported by
    // its smaller endpoint (each cycle has exactly one weakest edge).
    let removed: Vec<(u32, u32)> = dev.launch(
        "collect_cycle_edges",
        Traffic::new()
            .read_bytes((nv * std::mem::size_of::<[MinEdge<T>; 2]>()) as u64),
        || {
            (0..nv)
                .into_par_iter()
                .filter_map(|v| {
                    if !res.in_cycle(v) {
                        return None;
                    }
                    let e = res.values[v][0].min(res.values[v][1]);
                    (e.u == v as u32).then_some((e.u, e.v))
                })
                .collect()
        },
    );

    // Removal kernel: every cycle vertex checks whether it is incident to
    // its cycle's weakest edge and clears the corresponding slot. Both
    // endpoints see the same edge, so the removal is mutual without
    // synchronization.
    let n = factor.degree_bound();
    let (cols, ws) = factor_slots_mut(factor);
    let traffic = Traffic::new()
        .read_bytes((nv * std::mem::size_of::<[MinEdge<T>; 2]>()) as u64)
        .reads::<u32>(nv * n)
        .writes::<u32>(nv * n)
        .writes::<T>(nv * n);
    dev.launch("remove_cycle_edges", traffic, || {
        cols.par_chunks_mut(n)
            .zip(ws.par_chunks_mut(n))
            .enumerate()
            .for_each(|(v, (vc, vw))| {
                if !res.in_cycle(v) {
                    return;
                }
                let e = res.values[v][0].min(res.values[v][1]);
                if !e.touches(v as u32) {
                    return;
                }
                let other = if e.u == v as u32 { e.v } else { e.u };
                for s in 0..n {
                    if vc[s] == other {
                        vc[s] = crate::factor::INVALID;
                        vw[s] = T::ZERO;
                    }
                }
            });
    });

    CycleReport {
        cycles: removed.len(),
        removed,
    }
}

/// Internal accessor splitting the factor's slot arrays for the removal
/// kernel. Kept private to `lf-core`.
fn factor_slots_mut<T: Scalar>(f: &mut Factor<T>) -> (&mut [u32], &mut [T]) {
    f.slots_mut()
}

/// Sequential reference: find cycles by walking, remove weakest edges.
/// Used for testing and the paper's Fig. 5 CPU-vs-GPU comparison.
pub fn break_cycles_sequential<T: Scalar>(factor: &mut Factor<T>) -> CycleReport {
    let nv = factor.num_vertices();
    let mut visited = vec![false; nv];
    let mut removed = Vec::new();
    for start in 0..nv {
        if visited[start] || factor.degree(start) == 0 {
            continue;
        }
        // walk the component
        let mut comp = vec![start as u32];
        visited[start] = true;
        let mut prev = start as u32;
        let mut cur = match factor.partners(start).next() {
            Some((w, _)) => w,
            None => continue,
        };
        let mut is_cycle = false;
        loop {
            if cur == start as u32 {
                is_cycle = true;
                break;
            }
            visited[cur as usize] = true;
            comp.push(cur);
            let next = factor
                .partners(cur as usize)
                .map(|(w, _)| w)
                .find(|&w| w != prev);
            match next {
                Some(n) => {
                    prev = cur;
                    cur = n;
                }
                None => break,
            }
        }
        // For paths started mid-way, walk the other direction to mark all.
        if !is_cycle {
            let mut prev = start as u32;
            let mut cur = factor.partners(start).map(|(w, _)| w).nth(1);
            while let Some(c) = cur {
                visited[c as usize] = true;
                comp.push(c);
                let next = factor
                    .partners(c as usize)
                    .map(|(w, _)| w)
                    .find(|&w| w != prev);
                prev = c;
                cur = next;
            }
            continue;
        }
        // cycle: find weakest edge
        let mut best = MinEdge::<T>::infinity();
        for &v in &comp {
            for (w, x) in factor.partners(v as usize) {
                best = best.min(MinEdge::new(x, v, w));
            }
        }
        factor.remove_edge(best.u as usize, best.v as usize);
        removed.push((best.u, best.v));
    }
    CycleReport {
        cycles: removed.len(),
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::factor_from_edges;

    #[test]
    fn minedge_order_and_identity() {
        let a = MinEdge::new(0.5f32, 3, 1);
        assert_eq!((a.u, a.v), (1, 3));
        let b = MinEdge::new(0.5f32, 0, 2);
        assert_eq!(a.min(b), b, "tie on weight → smaller u wins");
        assert_eq!(a.min(MinEdge::infinity()), a);
        assert!(a.touches(1) && a.touches(3) && !a.touches(2));
    }

    #[test]
    fn minedge_min_total_even_with_nan() {
        // Regression: under tuple PartialOrd a NaN weight made `min`
        // non-associative (NaN compares as neither less nor greater, so
        // whichever operand sat on the left always "won"). total_cmp
        // places NaN above +∞: a NaN edge loses to any finite edge from
        // either side, and two NaNs tie-break on vertex IDs.
        let nan = MinEdge::new(f32::NAN, 0, 1);
        let fin = MinEdge::new(0.5f32, 2, 3);
        assert_eq!(nan.min(fin), fin, "finite beats NaN from the right");
        assert_eq!(fin.min(nan), fin, "finite beats NaN from the left");
        // NaN-weighted edges can't be compared with PartialEq (NaN != NaN),
        // so check endpoints and NaN-ness field-wise.
        let nan2 = MinEdge::new(f32::NAN, 0, 2);
        let m = nan.min(nan2);
        assert!((m.u, m.v) == (0, 1) && m.w.is_nan(), "NaN ties break on (u, v)");
        let m = nan2.min(nan);
        assert!((m.u, m.v) == (0, 1) && m.w.is_nan(), "…commutatively");
        // NaN sorts above +∞ in totalOrder, so even the combine identity
        // beats it: a NaN edge can never be selected for removal.
        assert!(nan.min(MinEdge::infinity()).w.is_infinite());
        assert!(MinEdge::infinity().min(nan).w.is_infinite());
    }

    #[test]
    fn min_sanitized_matches_min_on_sanitized_domain() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut pool: Vec<MinEdge<f32>> = (0..200)
            .map(|_| {
                MinEdge::new(
                    rng.random_range(-100.0f32..100.0),
                    rng.random_range(0..50),
                    rng.random_range(0..50),
                )
            })
            .collect();
        pool.push(MinEdge::infinity());
        pool.push(MinEdge::new(0.0, 1, 2));
        pool.push(MinEdge::new(-0.0, 1, 2)); // abs() folds to +0.0
        for a in &pool {
            for b in &pool {
                assert_eq!(a.min(*b), a.min_sanitized(*b), "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn break_cycles_agrees_across_backends() {
        use lf_kernel::{BackendKind, Device, DeviceConfig};
        let cpu = Device::with_backend(
            DeviceConfig::default(),
            lf_kernel::backend::make(BackendKind::Cpu),
        );
        let model = Device::default();
        let edges = [
            (0, 1, 0.5f32),
            (1, 2, 0.4),
            (2, 0, 0.6),
            (3, 4, 1.0),
            (4, 5, 0.9),
            (5, 6, 0.8),
            (6, 3, 0.7),
            (7, 8, 0.2),
        ];
        let f0 = factor_from_edges(9, &edges);
        let mut fa = f0.clone();
        let mut fb = f0.clone();
        let ra = break_cycles(&model, &mut fa);
        let rb = break_cycles(&cpu, &mut fb);
        assert_eq!(ra.removed, rb.removed);
        assert_eq!(fa, fb);
    }

    #[test]
    fn breaks_triangle_at_weakest() {
        let dev = Device::default();
        let mut f = factor_from_edges(3, &[(0, 1, 0.5), (1, 2, 0.3), (2, 0, 0.9)]);
        let rep = break_cycles(&dev, &mut f);
        assert_eq!(rep.cycles, 1);
        assert_eq!(rep.removed, vec![(1, 2)]);
        assert!(!f.contains(1, 2));
        assert!(!f.contains(2, 1));
        assert!(f.contains(0, 1) && f.contains(2, 0));
    }

    #[test]
    fn multiple_cycles_and_paths() {
        let dev = Device::default();
        // triangle {0,1,2}, square {3,4,5,6}, path {7,8}
        let mut f = factor_from_edges(
            9,
            &[
                (0, 1, 0.5),
                (1, 2, 0.4),
                (2, 0, 0.6),
                (3, 4, 1.0),
                (4, 5, 0.9),
                (5, 6, 0.8),
                (6, 3, 0.7),
                (7, 8, 0.2),
            ],
        );
        let rep = break_cycles(&dev, &mut f);
        assert_eq!(rep.cycles, 2);
        assert!(rep.removed.contains(&(1, 2)));
        assert!(rep.removed.contains(&(3, 6)), "square weakest is (6,3)=0.7");
        assert!(f.contains(7, 8), "path untouched");
        // everything now acyclic: sequential pass finds nothing
        let rep2 = break_cycles_sequential(&mut f.clone());
        assert_eq!(rep2.cycles, 0);
    }

    #[test]
    fn parallel_matches_sequential_on_random_factors() {
        use rand::{Rng, SeedableRng};
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        for _ in 0..20 {
            // random union of disjoint cycles and paths with unique weights
            let nv = 60;
            let mut perm: Vec<u32> = (0..nv as u32).collect();
            for i in (1..nv).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            let mut edges = Vec::new();
            let mut wsq = 0;
            let mut i = 0;
            while i < nv {
                let len = rng.random_range(1..=8).min(nv - i);
                let cyc = len >= 3 && rng.random::<bool>();
                for t in 0..len - 1 {
                    wsq += 1;
                    edges.push((perm[i + t], perm[i + t + 1], wsq as f32 * 0.1));
                }
                if cyc {
                    wsq += 1;
                    edges.push((perm[i + len - 1], perm[i], wsq as f32 * 0.1));
                }
                i += len;
            }
            let f0 = factor_from_edges(nv, &edges);
            let mut fp = f0.clone();
            let mut fs = f0.clone();
            let rp = break_cycles(&dev, &mut fp);
            let rs = break_cycles_sequential(&mut fs);
            assert_eq!(rp.cycles, rs.cycles);
            let mut a = rp.removed.clone();
            let mut b = rs.removed.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            assert_eq!(fp, fs);
        }
    }

    #[test]
    fn no_cycles_noop() {
        let dev = Device::default();
        let mut f = factor_from_edges(4, &[(0, 1, 1.0), (1, 2, 0.5)]);
        let before = f.clone();
        let rep = break_cycles(&dev, &mut f);
        assert_eq!(rep.cycles, 0);
        assert_eq!(f, before);
    }
}
