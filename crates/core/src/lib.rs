//! # lf-core — highly parallel linear forest extraction
//!
//! The primary contribution of *"Highly Parallel Linear Forest Extraction
//! from a Weighted Graph on GPUs"* (Klein & Strzodka, ICPP '22),
//! implemented on the simulated device of `lf-kernel`:
//!
//! * **[0,n]-factors** (`n ≤ 4`): spanning subgraphs of maximum degree n,
//!   computed sequentially ([`greedy::greedy_factor`], Alg. 1) or in
//!   parallel ([`parallel::parallel_factor`], Alg. 2) via a generalized
//!   SpMV with a Top-n accumulator and MD5 vertex charging;
//! * the **bidirectional scan** ([`scan::bidirectional_scan`], Alg. 3) —
//!   a parallel scan requiring only bidirectional connectivity, not a
//!   random-access iterator;
//! * the **linear-forest pipeline** ([`forest::extract_linear_forest`]):
//!   break cycles at their weakest edge, compute path IDs/positions, sort
//!   into a tridiagonalizing permutation, extract coefficients;
//! * **[0,1]-factor coarsening** ([`coarsen`]) for the 2×2 block
//!   tridiagonal preconditioner of the paper's application section.
//!
//! ```
//! use lf_core::prelude::*;
//! use lf_kernel::Device;
//! use lf_sparse::prelude::*;
//!
//! let dev = Device::default();
//! let a: Csr<f64> = grid2d(16, 16, &ANISO1);
//! let (forest, timings) = extract_linear_forest(
//!     &dev,
//!     &prepare_undirected(&a),
//!     &FactorConfig::paper_default(2),
//! ).expect("valid [0,2]-factor configuration");
//! assert!(forest.num_paths() > 0);
//! assert!(timings.total_model_s() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod alternatives;
pub mod charge;
pub mod coarsen;
pub mod cycles;
pub mod error;
pub mod extract;
pub mod factor;
pub mod forest;
pub mod greedy;
pub mod merged;
pub mod parallel;
pub mod paths;
pub mod permute;
pub mod ranking;
pub mod scan;
pub mod topk;

pub use error::PipelineError;
pub use factor::{graph_weight, identity_coverage, weight_coverage, Factor, INVALID};
pub use forest::{
    extract_linear_forest, extract_linear_forest_with, tridiagonal_from_matrix, LinearForest,
    PipelineTimings, QualityReport,
};
pub use parallel::{
    parallel_factor, parallel_factor_with_workspace, try_parallel_factor,
    try_parallel_factor_keyed, try_parallel_factor_with_workspace, FactorConfig, FactorOutcome,
    FactorWorkspace,
};

use lf_sparse::{Csr, Scalar};

/// The paper's preprocessing (Sec. 4 / 5.1): `A' = |A| − diag(|A|)`,
/// symmetrized as `A' + A'ᵀ` when the input is not symmetric. The result
/// is the undirected weight matrix all factor computations run on, while
/// coverage metrics stay defined against the original `A`.
pub fn prepare_undirected<T: Scalar>(a: &Csr<T>) -> Csr<T> {
    let ap = a.abs_offdiag();
    if ap.is_symmetric() {
        ap
    } else {
        ap.plus_transpose()
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::coarsen::{coarsen_by_matching, expand_block_permutation};
    pub use crate::cycles::{break_cycles, break_cycles_sequential};
    pub use crate::error::PipelineError;
    pub use crate::extract::{extract_tridiagonal, Tridiag};
    pub use crate::factor::{identity_coverage, weight_coverage, Factor};
    pub use crate::forest::{
        extract_linear_forest, tridiagonal_from_matrix, LinearForest, QualityReport,
    };
    pub use crate::greedy::greedy_factor;
    pub use crate::merged::break_cycles_and_identify_paths;
    pub use crate::parallel::{
        parallel_factor, parallel_factor_with_workspace, try_parallel_factor, FactorConfig,
    };
    pub use crate::paths::{identify_paths, identify_paths_sequential, PathInfo};
    pub use crate::permute::forest_permutation;
    pub use crate::ranking::identify_paths_workefficient;
    pub use crate::prepare_undirected;
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::factor::Factor;

    /// Build a [0,2]-factor from explicit undirected edges.
    pub fn factor_from_edges(nv: usize, edges: &[(u32, u32, f32)]) -> Factor<f32> {
        let mut f = Factor::new(nv, 2);
        for &(u, v, w) in edges {
            assert!(f.insert(u as usize, v, w));
            assert!(f.insert(v as usize, u, w));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Coo;

    #[test]
    fn prepare_undirected_symmetric_input() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 0, 5.0);
        coo.push_sym(0, 1, -2.0);
        let ap = prepare_undirected(&Csr::from_coo(coo));
        assert_eq!(ap.get(0, 0), 0.0, "diagonal removed");
        assert_eq!(ap.get(0, 1), 2.0, "absolute value");
        assert!(ap.is_symmetric());
    }

    #[test]
    fn prepare_undirected_nonsymmetric_sums_directions() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 1, -3.0);
        coo.push(1, 0, 1.0);
        let ap = prepare_undirected(&Csr::from_coo(coo));
        assert_eq!(ap.get(0, 1), 4.0, "|A'| + |A'|ᵀ");
        assert!(ap.is_symmetric());
    }
}
