//! Alternative top-n row-selection implementations — the approaches the
//! paper evaluated and rejected (Sec. 5.2.1: "Other implementations to
//! find the columns of the n maximal values within each matrix row with
//! CUB's segmented reduction or segmented sort are approximately one
//! order of magnitude slower for 2 ≤ n ≤ 4").
//!
//! Three ways to compute, for every row of `A'`, the `n` largest
//! (|weight|, column) pairs:
//!
//! * [`top_n_fused`] — the paper's choice: one generalized-SpMV pass with
//!   the [`TopK`] accumulator (what the proposition kernel does);
//! * [`top_n_segmented_sort`] — sort **all** nonzeros by (row, weight)
//!   with the radix sort, then take each row's first n (the CUB
//!   segmented-sort strategy);
//! * [`top_n_repeated_reduce`] — n successive segmented max-reductions,
//!   each excluding the columns already selected (the CUB segmented-
//!   reduce strategy).
//!
//! All three produce identical results; `repro ablation` measures their
//! traffic and model time.

use crate::topk::TopK;
use lf_kernel::{launch, Device, Traffic};
use lf_sparse::{gespmv_rowpar, Csr, GeSpmvOps, Scalar};

/// Plain top-n selection as a generalized SpMV (single fused pass).
struct TopNOps<const K: usize>;

impl<T: Scalar, const K: usize> GeSpmvOps<T> for TopNOps<K> {
    type Acc = TopK<T, K>;
    type Out = TopK<T, K>;
    fn identity(&self) -> Self::Acc {
        TopK::empty()
    }
    fn multiply(&self, row: u32, col: u32, val: T) -> Self::Acc {
        if col == row {
            TopK::empty()
        } else {
            TopK::singleton(val.abs(), col)
        }
    }
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc {
        a.merge(&b)
    }
    fn finalize(&self, _row: u32, acc: Self::Acc) -> Self::Out {
        acc
    }
}

/// One fused generalized-SpMV pass (the paper's implementation).
pub fn top_n_fused<T: Scalar, const K: usize>(dev: &Device, a: &Csr<T>) -> Vec<TopK<T, K>> {
    let mut out = vec![TopK::empty(); a.nrows()];
    gespmv_rowpar(dev, "topn_fused", a, &TopNOps::<K>, &mut out);
    out
}

/// Segmented-sort strategy (CUB `DeviceSegmentedSort` style): within every
/// CSR row segment, sort entries by |weight| descending (column-ascending
/// tie break), then gather each row's n best.
pub fn top_n_segmented_sort<T: Scalar, const K: usize>(
    dev: &Device,
    a: &Csr<T>,
) -> Vec<TopK<T, K>> {
    let nnz = a.nnz();
    let nrows = a.nrows();
    // Per-entry sort keys: order-reversing weight bucket, column tiebreak.
    assert!(a.ncols() < (1 << 28), "segmented-sort key packs columns in 28 bits");
    let mut keys = vec![0u64; nnz];
    let mut vals: Vec<u32> = vec![0; nnz];
    let wmax = a
        .vals()
        .iter()
        .fold(T::ZERO, |m, &v| if v.abs() > m { v.abs() } else { m })
        .to_f64()
        .max(f64::MIN_POSITIVE);
    {
        let cols = a.col_idx();
        let ws = a.vals();
        launch::map2(
            dev,
            "topn_sort_keys",
            &mut keys,
            &mut vals,
            nnz * (4 + std::mem::size_of::<T>()),
            |e| {
                let frac = (ws[e].abs().to_f64() / wmax).clamp(0.0, 1.0);
                let bucket = (frac * ((1u64 << 36) - 1) as f64).round() as u64;
                // reversed weight bucket (36 bits) | column (28 bits)
                let key = ((((1u64 << 36) - 1) - bucket) << 28)
                    | (cols[e] as u64 & 0x0fff_ffff);
                (key, e as u32)
            },
        );
    }
    lf_kernel::segmented::segmented_sort_pairs_u64(
        dev,
        "topn_segmented_sort",
        a.row_ptr(),
        &mut keys,
        &mut vals,
    );

    // Gather each row's first K entries from the sorted order. Exact
    // weights are re-read from the matrix (the bucket is only a sort key),
    // with an exact TopK insert resolving same-bucket orderings.
    let mut out = vec![TopK::<T, K>::empty(); nrows];
    {
        let row_ptr = a.row_ptr();
        let cols = a.col_idx();
        let ws = a.vals();
        let traffic = Traffic::new()
            .reads::<u64>(nnz)
            .reads::<u32>(nnz)
            .writes::<TopK<T, K>>(nrows);
        launch::map1(dev, "topn_sort_gather", &mut out, traffic.read as usize, |i| {
            let mut acc = TopK::<T, K>::empty();
            let (start, end) = (row_ptr[i], row_ptr[i + 1]);
            // the sorted range of row i occupies the same global span;
            // exact weights are re-inserted, so bucket ties in the sort
            // key cannot change the result vs the fused pass
            for &ev in &vals[start..end] {
                let e = ev as usize;
                if cols[e] as usize != i {
                    acc.insert(ws[e].abs(), cols[e]);
                }
            }
            acc
        });
    }
    out
}

/// Repeated segmented-max strategy: n passes, each an argmax reduction
/// per row over the not-yet-selected columns.
pub fn top_n_repeated_reduce<T: Scalar, const K: usize>(
    dev: &Device,
    a: &Csr<T>,
) -> Vec<TopK<T, K>> {
    struct MaxExcluding<'a, T, const K: usize> {
        selected: &'a [TopK<T, K>],
    }
    impl<'a, T: Scalar, const K: usize> GeSpmvOps<T> for MaxExcluding<'a, T, K> {
        type Acc = TopK<T, 1>;
        type Out = TopK<T, 1>;
        fn identity(&self) -> Self::Acc {
            TopK::empty()
        }
        fn multiply(&self, row: u32, col: u32, val: T) -> Self::Acc {
            if col == row || self.selected[row as usize].contains(col) {
                TopK::empty()
            } else {
                TopK::singleton(val.abs(), col)
            }
        }
        fn combine(&self, x: Self::Acc, y: Self::Acc) -> Self::Acc {
            x.merge(&y)
        }
        fn finalize(&self, _row: u32, acc: Self::Acc) -> Self::Out {
            acc
        }
    }

    let nrows = a.nrows();
    let mut selected = vec![TopK::<T, K>::empty(); nrows];
    let mut pass = vec![TopK::<T, 1>::empty(); nrows];
    for _ in 0..K {
        let ops = MaxExcluding::<T, K> {
            selected: &selected,
        };
        gespmv_rowpar(dev, "topn_reduce_pass", a, &ops, &mut pass);
        // merge the pass winners into the selection
        let pass_ref = &pass;
        launch::update1(
            dev,
            "topn_reduce_merge",
            &mut selected,
            nrows * std::mem::size_of::<TopK<T, 1>>(),
            |i, mut sel| {
                if let Some((w, c)) = pass_ref[i].iter().next() {
                    sel.insert(w, c);
                }
                sel
            },
        );
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::random::random_symmetric;
    use lf_sparse::stencil::{grid2d, ANISO1};

    fn check_all_agree<const K: usize>(a: &Csr<f64>) {
        let dev = Device::default();
        let fused = top_n_fused::<f64, K>(&dev, a);
        let sorted = top_n_segmented_sort::<f64, K>(&dev, a);
        let reduced = top_n_repeated_reduce::<f64, K>(&dev, a);
        for i in 0..a.nrows() {
            assert_eq!(fused[i], sorted[i], "sort variant differs at row {i}");
            assert_eq!(fused[i], reduced[i], "reduce variant differs at row {i}");
        }
    }

    #[test]
    fn variants_agree_on_stencil() {
        let a: Csr<f64> = grid2d(17, 13, &ANISO1);
        check_all_agree::<1>(&a);
        check_all_agree::<2>(&a);
        check_all_agree::<4>(&a);
    }

    #[test]
    fn variants_agree_on_random() {
        for seed in 0..4 {
            let a: Csr<f64> = random_symmetric(300, 9.0, 0.1, 1.0, seed);
            check_all_agree::<2>(&a);
            check_all_agree::<3>(&a);
        }
    }

    #[test]
    fn fused_selects_the_maxima() {
        let a: Csr<f64> = random_symmetric(200, 7.0, 0.1, 1.0, 11);
        let dev = Device::default();
        let got = top_n_fused::<f64, 2>(&dev, &a);
        for (i, g) in got.iter().enumerate() {
            let mut want: Vec<(f64, u32)> = a
                .row(i)
                .filter(|&(c, _)| c as usize != i)
                .map(|(c, v)| (v.abs(), c))
                .collect();
            want.sort_by(|x, y| y.partial_cmp(x).unwrap());
            want.truncate(2);
            let have: Vec<(f64, u32)> = g.iter().collect();
            assert_eq!(have.len(), want.len());
            for (h, w) in have.iter().zip(&want) {
                assert_eq!(h.0, w.0, "row {i} weight");
            }
        }
    }

    #[test]
    fn reduce_variant_launch_count_scales_with_n() {
        let a: Csr<f64> = grid2d(20, 20, &ANISO1);
        let dev = Device::default();
        let (_, s1) = dev.scoped(|| top_n_repeated_reduce::<f64, 1>(&dev, &a));
        let (_, s4) = dev.scoped(|| top_n_repeated_reduce::<f64, 4>(&dev, &a));
        assert_eq!(s1.launches * 4, s4.launches, "n passes expected");
        assert!(s4.traffic.total() > 3 * s1.traffic.total());
    }
}
