//! Step (3) of the linear-forest extraction (paper Sec. 3.3/4.3): sort the
//! vertex IDs by the key (path ID, position) to obtain the permutation `Q`
//! under which the forest's adjacency matrix is tridiagonal.
//!
//! The paper uses CUB's radix sort; we use the from-scratch parallel LSD
//! radix sort of `lf-kernel`.

use crate::factor::Factor;
use crate::paths::PathInfo;
use lf_kernel::{launch, sort, Device};
use lf_sparse::Scalar;

/// Compute the tridiagonalizing permutation from path IDs and positions.
/// Returns `perm` with `perm[new] = old`: row/column `perm[k]` of the
/// original matrix becomes row/column `k` of `QᵀAQ`.
pub fn forest_permutation(dev: &Device, paths: &PathInfo) -> Vec<u32> {
    let nv = paths.len();
    let mut keys = vec![0u64; nv];
    {
        let (pid, pos) = (&paths.path_id, &paths.position);
        launch::map1(dev, "build_sort_keys", &mut keys, nv * 8, |v| {
            ((pid[v] as u64) << 32) | pos[v] as u64
        });
    }
    sort::sort_permutation_u64(dev, &keys)
}

/// Invert a permutation: `inv[old] = new`.
pub fn invert_permutation(dev: &Device, perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    {
        let view = lf_kernel::ScatterSlice::new(&mut inv);
        launch::for_each_index(
            dev,
            "invert_permutation",
            perm.len(),
            lf_kernel::Traffic::new()
                .reads::<u32>(perm.len())
                .writes::<u32>(perm.len()),
            |new| {
                // SAFETY: perm is a bijection, so targets are disjoint.
                unsafe { view.write(perm[new] as usize, new as u32) };
            },
        );
    }
    inv
}

/// Check that `perm` makes the forest adjacency tridiagonal: every factor
/// edge must connect consecutively permuted vertices. (Test/diagnostic
/// helper; O(N·n).)
pub fn is_tridiagonalizing<T: Scalar>(factor: &Factor<T>, perm: &[u32]) -> bool {
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    for v in 0..factor.num_vertices() {
        for (w, _) in factor.partners(v) {
            let (a, b) = (inv[v] as i64, inv[w as usize] as i64);
            if (a - b).abs() != 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::identify_paths;
    use crate::testutil::factor_from_edges;

    #[test]
    fn permutation_orders_by_path_then_position() {
        // paths: {2,4} (id 2) and {0,3,1} (id 0)
        let f = factor_from_edges(5, &[(0, 3, 1.0), (3, 1, 1.0), (2, 4, 1.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        let perm = forest_permutation(&dev, &p);
        assert_eq!(perm, vec![0, 3, 1, 2, 4]);
        assert!(is_tridiagonalizing(&f, &perm));
    }

    #[test]
    fn invert_roundtrip() {
        let dev = Device::default();
        let perm = vec![3u32, 1, 0, 2];
        let inv = invert_permutation(&dev, &perm);
        assert_eq!(inv, vec![2, 1, 3, 0]);
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, new);
        }
    }

    #[test]
    fn detects_non_tridiagonalizing() {
        let f = factor_from_edges(3, &[(0, 2, 1.0)]);
        // identity permutation leaves 0 and 2 two apart
        assert!(!is_tridiagonalizing(&f, &[0, 1, 2]));
        assert!(is_tridiagonalizing(&f, &[0, 2, 1]));
    }

    #[test]
    fn large_random_forest_tridiagonalizes() {
        use rand::{Rng, SeedableRng};
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let nv = 5000;
        let mut perm0: Vec<u32> = (0..nv as u32).collect();
        for i in (1..nv).rev() {
            let j = rng.random_range(0..=i);
            perm0.swap(i, j);
        }
        let mut edges = Vec::new();
        let mut i = 0;
        while i < nv {
            let len = rng.random_range(1..=40).min(nv - i);
            for t in 0..len - 1 {
                edges.push((perm0[i + t], perm0[i + t + 1], 1.0f32));
            }
            i += len;
        }
        let f = factor_from_edges(nv, &edges);
        let p = identify_paths(&dev, &f).unwrap();
        let q = forest_permutation(&dev, &p);
        assert!(is_tridiagonalizing(&f, &q));
        // q is a bijection
        let mut seen = vec![false; nv];
        for &v in &q {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }
}
