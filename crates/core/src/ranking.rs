//! Work-efficient path identification by randomized list contraction —
//! the O(N)-work alternative the paper contrasts its scan against
//! (Sec. 4.2: "Overall work is N log₂(N), whereas a work-efficient scan
//! is O(N)").
//!
//! Classic parallel list ranking (Anderson–Miller style) adapted to the
//! orientation-free [0,2]-factor:
//!
//! 1. **Contract**: repeatedly select an *independent set* of interior
//!    (degree-2) vertices — a vertex is selected when its per-round hash
//!    is a strict local maximum among its neighbors — and splice each out,
//!    its neighbors linking to each other with an accumulated *gap* count.
//!    An expected constant fraction contracts per round, so O(log N)
//!    rounds and **O(N) total work**.
//! 2. **Base case**: only path ends remain; each surviving pair (or
//!    isolated vertex) is ranked directly.
//! 3. **Expand**: replay the contraction log backwards; every spliced
//!    vertex interpolates its position between its two (already ranked)
//!    neighbors.
//!
//! The price relative to the paper's step-efficient scan is irregularity:
//! ~4× more kernel launches, data-dependent compaction every round, and
//! a sequential reverse replay structure — the trade-off the paper's
//! design deliberately avoids. `repro ablation` measures both.

use crate::charge::md5_mix;
use crate::factor::{Factor, INVALID};
use crate::paths::{PathError, PathInfo};
use lf_kernel::{compact, launch, reduce, Device, Traffic};
use lf_sparse::Scalar;

/// One spliced-out vertex: who it was, its two neighbors at contraction
/// time, and the gap (contracted vertices) between it and each neighbor.
#[derive(Clone, Copy, Debug)]
struct Splice {
    v: u32,
    a: u32,
    b: u32,
    gap_a: u32,
    gap_b: u32,
}

/// Working adjacency: up to two neighbor links per vertex plus the gap
/// (number of already-contracted vertices) hidden inside each link.
struct Links {
    nb: Vec<[u32; 2]>,
    gap: Vec<[u32; 2]>,
}

impl Links {
    fn degree(&self, v: usize) -> usize {
        self.nb[v].iter().filter(|&&x| x != INVALID).count()
    }
    fn slot_of(&self, v: usize, to: u32) -> usize {
        if self.nb[v][0] == to {
            0
        } else {
            debug_assert_eq!(self.nb[v][1], to);
            1
        }
    }
}

/// Work-efficient equivalent of [`crate::paths::identify_paths`]: same
/// `PathInfo` output, O(N) work, O(log N) contraction rounds.
pub fn identify_paths_workefficient<T: Scalar>(
    dev: &Device,
    factor: &Factor<T>,
) -> Result<PathInfo, PathError> {
    let nv = factor.num_vertices();
    let mut links = Links {
        nb: vec![[INVALID; 2]; nv],
        gap: vec![[0; 2]; nv],
    };
    {
        let nb = &mut links.nb;
        launch::map1(dev, "rank_init", nb, nv * 8, |v| {
            let mut l = [INVALID; 2];
            for (s, (w, _)) in factor.partners(v).take(2).enumerate() {
                l[s] = w;
            }
            l
        });
    }

    let mut alive: Vec<u32> = compact::compact_indices(dev, "rank_live", &links.nb, |_| true);
    let mut log: Vec<Vec<Splice>> = Vec::new();
    let max_rounds = 4 * (usize::BITS - nv.max(2).leading_zeros()) as usize + 32;

    for round in 0..max_rounds as u32 {
        // interior vertices remaining?
        let interiors = reduce::count(dev, "rank_count_interior", &alive, |&v| {
            links.degree(v as usize) == 2
        });
        if interiors == 0 {
            break;
        }
        // Select: degree-2 vertices whose hash is a strict local max.
        let hash = |v: u32| md5_mix(v, round ^ 0xbeef);
        let selected: Vec<u32> = compact::compact(dev, "rank_select", &alive, |&v| {
            let vi = v as usize;
            if links.degree(vi) != 2 {
                return false;
            }
            let h = hash(v);
            links.nb[vi].iter().all(|&w| {
                let hw = hash(w);
                h > hw || (h == hw && v > w)
            })
        });
        if selected.is_empty() {
            continue; // unlucky hashes this round; next round re-rolls
        }
        // Record splices and patch the neighbors (slot-disjoint scatter:
        // the selected set is independent, so each neighbor slot is
        // rewritten by exactly one splice).
        let splices: Vec<Splice> = selected
            .iter()
            .map(|&v| {
                let vi = v as usize;
                let (a, b) = (links.nb[vi][0], links.nb[vi][1]);
                Splice {
                    v,
                    a,
                    b,
                    gap_a: links.gap[vi][0],
                    gap_b: links.gap[vi][1],
                }
            })
            .collect();
        {
            let slot_a: Vec<(usize, usize)> = splices
                .iter()
                .map(|s| (s.a as usize, links.slot_of(s.a as usize, s.v)))
                .collect();
            let slot_b: Vec<(usize, usize)> = splices
                .iter()
                .map(|s| (s.b as usize, links.slot_of(s.b as usize, s.v)))
                .collect();
            let traffic = Traffic::new()
                .reads::<Splice>(splices.len())
                .writes::<[u32; 2]>(2 * splices.len());
            // The selected set is independent, so each (vertex, slot) pair
            // is rewritten by exactly one splice; on a GPU this is a
            // disjoint scatter. The simulated launch applies the updates
            // directly (slot-granular writes).
            let (nb, gap) = (&mut links.nb, &mut links.gap);
            dev.launch("rank_splice", traffic, || {
                for (i, s) in splices.iter().enumerate() {
                    let (av, aslot) = slot_a[i];
                    let (bv, bslot) = slot_b[i];
                    let joined = s.gap_a + 1 + s.gap_b;
                    nb[av][aslot] = s.b;
                    gap[av][aslot] = joined;
                    nb[bv][bslot] = s.a;
                    gap[bv][bslot] = joined;
                }
            });
        }
        // Remove the contracted vertices from the live set.
        let selected_set: std::collections::HashSet<u32> = splices.iter().map(|s| s.v).collect();
        alive = compact::compact(dev, "rank_compact", &alive, |v| !selected_set.contains(v));
        log.push(splices);
    }

    // A cycle never loses its interior vertices' degree-2 status and the
    // round cap fires; report it like the scan does.
    if reduce::count(dev, "rank_check", &alive, |&v| links.degree(v as usize) == 2) > 0 {
        let v = alive
            .iter()
            .find(|&&v| links.degree(v as usize) == 2)
            .copied()
            .unwrap_or(0);
        return Err(PathError::CycleDetected(v));
    }

    // Base case: every live component is an isolated vertex or an end
    // pair (a, b) with a known gap.
    let mut path_id = vec![0u32; nv];
    let mut position = vec![0u32; nv];
    for &v in &alive {
        let vi = v as usize;
        match links.degree(vi) {
            0 => {
                path_id[vi] = v;
                position[vi] = 1;
            }
            1 => {
                let slot = if links.nb[vi][0] != INVALID { 0 } else { 1 };
                let other = links.nb[vi][slot];
                let gap = links.gap[vi][slot];
                let id = v.min(other);
                path_id[vi] = id;
                position[vi] = if v == id { 1 } else { gap + 2 };
            }
            _ => unreachable!("interior vertices were all contracted"),
        }
    }
    // Expand in reverse order.
    for round in log.iter().rev() {
        for s in round {
            let (pa, pb) = (position[s.a as usize] as i64, position[s.b as usize] as i64);
            let id = path_id[s.a as usize];
            debug_assert_eq!(id, path_id[s.b as usize]);
            let dir = if pb > pa { 1 } else { -1 };
            position[s.v as usize] = (pa + dir * (s.gap_a as i64 + 1)) as u32;
            path_id[s.v as usize] = id;
        }
    }
    Ok(PathInfo { path_id, position })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::identify_paths_sequential;
    use crate::testutil::factor_from_edges;

    #[test]
    fn simple_path() {
        let f = factor_from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        let dev = Device::default();
        let got = identify_paths_workefficient(&dev, &f).unwrap();
        let want = identify_paths_sequential(&f).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn isolated_and_pairs() {
        let f = factor_from_edges(5, &[(1, 3, 1.0)]);
        let dev = Device::default();
        let got = identify_paths_workefficient(&dev, &f).unwrap();
        assert_eq!(got.path_id, vec![0, 1, 2, 1, 4]);
        assert_eq!(got.position, vec![1, 1, 1, 2, 1]);
    }

    #[test]
    fn cycle_rejected() {
        let f = factor_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let dev = Device::default();
        assert!(matches!(
            identify_paths_workefficient(&dev, &f),
            Err(PathError::CycleDetected(_))
        ));
    }

    #[test]
    fn matches_sequential_on_random_forests() {
        use rand::{Rng, SeedableRng};
        let dev = Device::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(55);
        for trial in 0..15 {
            let nv = 300;
            let mut perm: Vec<u32> = (0..nv as u32).collect();
            for i in (1..nv).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            let mut edges = Vec::new();
            let mut i = 0;
            while i < nv {
                let len = rng.random_range(1..=25).min(nv - i);
                for t in 0..len - 1 {
                    edges.push((perm[i + t], perm[i + t + 1], 1.0f32));
                }
                i += len;
            }
            let f = factor_from_edges(nv, &edges);
            let got = identify_paths_workefficient(&dev, &f).unwrap();
            let want = identify_paths_sequential(&f).unwrap();
            assert_eq!(got, want, "trial {trial}");
        }
    }

    #[test]
    fn long_single_path_is_linear_work() {
        // total traffic must be O(N) — well below the scan's N·log N
        let n = 4096;
        let edges: Vec<(u32, u32, f32)> =
            (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1.0)).collect();
        let f = factor_from_edges(n, &edges);
        let dev = Device::default();
        let (got, rank_stats) = dev.scoped(|| identify_paths_workefficient(&dev, &f).unwrap());
        let want = identify_paths_sequential(&f).unwrap();
        assert_eq!(got, want);
        let (_, scan_stats) =
            dev.scoped(|| crate::paths::identify_paths(&dev, &f).unwrap());
        assert!(
            rank_stats.traffic.total() < scan_stats.traffic.total(),
            "ranking {} B should undercut the scan's {} B at N = {n}",
            rank_stats.traffic.total(),
            scan_stats.traffic.total()
        );
        assert!(
            rank_stats.launches > scan_stats.launches,
            "ranking pays with more, smaller launches"
        );
    }
}
