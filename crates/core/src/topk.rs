//! The Top-K accumulator of the generalized SpMV (paper Sec. 4.1, Table 1).
//!
//! The edge-proposition kernel reduces each matrix row to the `n` largest
//! (weight, column) pairs. [`TopK`] is the accumulator: `K` slots sorted by
//! descending weight, ties broken toward the smaller column index (so the
//! reduction is deterministic and, on all-equal weights, picks the first
//! columns in row order — Table 1's worked example).
//!
//! `insert` is the `⊕` with a singleton; `merge` combines two accumulators,
//! which makes the type a commutative monoid as required by the segmented
//! SRCSR engine.

use crate::factor::INVALID;
use lf_sparse::Scalar;

/// K sorted (weight, column) slots; empty slots have `col == INVALID`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopK<T, const K: usize> {
    /// Slot weights, descending.
    pub w: [T; K],
    /// Slot columns; `INVALID` marks an empty slot.
    pub col: [u32; K],
}

impl<T: Scalar, const K: usize> Default for TopK<T, K> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T: Scalar, const K: usize> TopK<T, K> {
    /// The empty accumulator (monoid identity).
    #[inline]
    pub fn empty() -> Self {
        Self {
            w: [T::ZERO; K],
            col: [INVALID; K],
        }
    }

    /// A singleton accumulator.
    #[inline]
    pub fn singleton(w: T, col: u32) -> Self {
        let mut s = Self::empty();
        s.w[0] = w;
        s.col[0] = col;
        s
    }

    /// Number of filled slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.col.iter().filter(|&&c| c != INVALID).count()
    }

    /// Whether no slot is filled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.col[0] == INVALID
    }

    /// Whether `col` occupies a slot.
    #[inline]
    pub fn contains(&self, col: u32) -> bool {
        self.col.contains(&col)
    }

    /// Iterate filled `(weight, col)` slots in descending order.
    pub fn iter(&self) -> impl Iterator<Item = (T, u32)> + '_ {
        (0..K)
            .filter(|&i| self.col[i] != INVALID)
            .map(move |i| (self.w[i], self.col[i]))
    }

    /// Does candidate `(w, col)` rank higher than slot `i`?
    /// Empty slots rank lowest; ties go to the smaller column.
    ///
    /// Weights compare through [`Scalar::total_cmp`]: under `PartialOrd`
    /// a NaN weight neither wins nor loses, which made `merge` order-
    /// dependent. totalOrder ranks NaN above +∞ deterministically, so the
    /// accumulator stays a lawful commutative monoid on any input
    /// (non-finite weights are additionally rejected at matrix load).
    #[inline]
    fn beats(&self, i: usize, w: T, col: u32) -> bool {
        if self.col[i] == INVALID {
            return true;
        }
        match w.total_cmp(self.w[i]) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => col < self.col[i],
        }
    }

    /// Insert a candidate, keeping the K best (the `⊕` with a singleton).
    #[inline]
    pub fn insert(&mut self, w: T, col: u32) {
        debug_assert_ne!(col, INVALID);
        let mut i = 0;
        while i < K && !self.beats(i, w, col) {
            i += 1;
        }
        if i == K {
            return;
        }
        // shift down and place
        let mut carry_w = w;
        let mut carry_c = col;
        for j in i..K {
            std::mem::swap(&mut carry_w, &mut self.w[j]);
            std::mem::swap(&mut carry_c, &mut self.col[j]);
        }
    }

    /// Merge two accumulators (associative, commutative; identity = empty).
    #[inline]
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = *self;
        for (w, c) in other.iter() {
            out.insert(w, c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_descending_topk() {
        let mut t = TopK::<f32, 2>::empty();
        assert!(t.is_empty());
        t.insert(0.2, 3);
        t.insert(0.3, 5);
        assert_eq!((t.w, t.col), ([0.3, 0.2], [5, 3]));
        t.insert(0.9, 6);
        assert_eq!((t.w, t.col), ([0.9, 0.3], [6, 5]));
        t.insert(0.1, 9);
        assert_eq!((t.w, t.col), ([0.9, 0.3], [6, 5]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table1_worked_example() {
        // Paper Table 1: row 4 of A' with entries
        // (0.2,3) (0.3,5) (0.9,6) (0.4,7) (0.5,9), n = 2, no charging:
        // accumulator ends as (0.9,6),(0.5,9).
        let entries = [(0.2f32, 3u32), (0.3, 5), (0.9, 6), (0.4, 7), (0.5, 9)];
        let mut acc = TopK::<f32, 2>::empty();
        for (w, c) in entries {
            acc.insert(w, c);
        }
        assert_eq!(acc.col, [6, 9]);
        assert_eq!(acc.w, [0.9, 0.5]);
        // With charging (vertex 4 negative; columns 5, 6 negative are
        // excluded): proposes to 9 and 7.
        let charges = [(3u32, true), (5, false), (6, false), (7, true), (9, true)];
        let mut acc = TopK::<f32, 2>::empty();
        for (w, c) in entries {
            let pos = charges.iter().find(|&&(x, _)| x == c).unwrap().1;
            if pos {
                // row 4 is negative: only propose to positive columns
                acc.insert(w, c);
            }
        }
        assert_eq!(acc.col, [9, 7]);
        assert_eq!(acc.w, [0.5, 0.4]);
    }

    #[test]
    fn ties_prefer_smaller_column() {
        let mut t = TopK::<f64, 2>::empty();
        t.insert(1.0, 7);
        t.insert(1.0, 2);
        t.insert(1.0, 5);
        assert_eq!(t.col, [2, 5]);
    }

    #[test]
    fn merge_is_monoid() {
        let mut a = TopK::<f64, 3>::empty();
        a.insert(5.0, 1);
        a.insert(3.0, 2);
        let mut b = TopK::<f64, 3>::empty();
        b.insert(4.0, 3);
        b.insert(6.0, 4);
        let m = a.merge(&b);
        assert_eq!(m.col, [4, 1, 3]);
        assert_eq!(m, b.merge(&a), "commutative");
        assert_eq!(a.merge(&TopK::empty()), a, "identity");
    }

    #[test]
    fn merge_associative_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let mk = |rng: &mut rand::rngs::SmallRng| {
                let mut t = TopK::<f64, 4>::empty();
                for _ in 0..rng.random_range(0..6) {
                    t.insert(
                        (rng.random_range(0..20) as f64) * 0.5,
                        rng.random_range(0..50u32),
                    );
                }
                t
            };
            let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
            assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        }
    }

    #[test]
    fn contains_and_iter() {
        let mut t = TopK::<f32, 4>::empty();
        t.insert(2.0, 10);
        t.insert(1.0, 20);
        assert!(t.contains(10));
        assert!(!t.contains(30));
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v, vec![(2.0, 10), (1.0, 20)]);
    }
}
