//! The [0,n]-factor representation and its quality metrics.
//!
//! A [0,n]-factor π of a weighted graph G (paper Sec. 3.1, Eq. 1–2) is a
//! spanning subgraph in which every vertex has degree ≤ n; π(v) returns the
//! (at most n) partners of v. The paper's two invariants are checked by
//! [`Factor::validate`]:
//!
//! 1. every vertex has at most n partners, and
//! 2. partnership is mutual over existing edges: `v ∈ π(w) ⇔ w ∈ π(v)`,
//!    `{v, w} ∈ E`.
//!
//! Quality is measured by the *relative weight coverage* `c_π` (Eq. 4) and
//! compared against `c_id`, the coverage of the sub-/superdiagonal in the
//! original ordering (Eq. 5).

use lf_sparse::{Csr, Scalar};

/// Sentinel for an empty factor slot.
pub const INVALID: u32 = u32::MAX;

/// FNV-1a offset basis (structural fingerprints for postmortem replay).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a running hash.
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A [0,n]-factor stored as `n` (column, weight) slots per vertex.
///
/// Weights are the `A'` weights of the partner edges (used later to break
/// cycles by weakest edge); empty slots hold [`INVALID`].
#[derive(Clone, Debug, PartialEq)]
pub struct Factor<T> {
    n: usize,
    nv: usize,
    cols: Vec<u32>,
    ws: Vec<T>,
}

impl<T: Scalar> Factor<T> {
    /// An empty factor over `nv` vertices with degree bound `n`.
    pub fn new(nv: usize, n: usize) -> Self {
        assert!(n >= 1, "degree bound must be at least 1");
        Self {
            n,
            nv,
            cols: vec![INVALID; nv * n],
            ws: vec![T::ZERO; nv * n],
        }
    }

    /// Build from per-vertex slot arrays (used by the parallel engine).
    pub fn from_slots(nv: usize, n: usize, cols: Vec<u32>, ws: Vec<T>) -> Self {
        assert_eq!(cols.len(), nv * n);
        assert_eq!(ws.len(), nv * n);
        Self { n, nv, cols, ws }
    }

    /// The degree bound n.
    pub fn degree_bound(&self) -> usize {
        self.n
    }

    /// Number of vertices N.
    pub fn num_vertices(&self) -> usize {
        self.nv
    }

    /// Raw slot columns (`nv · n`, slot-major per vertex).
    pub fn slot_cols(&self) -> &[u32] {
        &self.cols
    }

    /// Raw slot weights.
    pub fn slot_weights(&self) -> &[T] {
        &self.ws
    }

    /// FNV-1a structural fingerprint over the exact bit patterns of the
    /// slot arrays. Two factors fingerprint equal iff they are
    /// bit-identical, which is what the flight-recorder replay compares.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &(self.nv as u64).to_le_bytes());
        h = fnv1a(h, &(self.n as u64).to_le_bytes());
        for c in &self.cols {
            h = fnv1a(h, &c.to_le_bytes());
        }
        for w in &self.ws {
            h = fnv1a(h, &w.to_f64().to_bits().to_le_bytes());
        }
        h
    }

    /// Mutable access to the raw slot arrays (columns, weights) for
    /// in-place kernels within the crate.
    pub(crate) fn slots_mut(&mut self) -> (&mut [u32], &mut [T]) {
        (&mut self.cols, &mut self.ws)
    }

    /// Partners of vertex `v` with their edge weights.
    pub fn partners(&self, v: usize) -> impl Iterator<Item = (u32, T)> + '_ {
        let base = v * self.n;
        (0..self.n).filter_map(move |s| {
            let c = self.cols[base + s];
            (c != INVALID).then(|| (c, self.ws[base + s]))
        })
    }

    /// Degree of vertex `v` in the factor.
    pub fn degree(&self, v: usize) -> usize {
        self.partners(v).count()
    }

    /// Whether edge `{v, w}` is in the factor (checks `w ∈ π(v)`).
    pub fn contains(&self, v: usize, w: u32) -> bool {
        self.partners(v).any(|(c, _)| c == w)
    }

    /// Insert partner `w` with weight into a free slot of `v`.
    /// Returns false if `v` is already full or the partnership exists.
    pub fn insert(&mut self, v: usize, w: u32, weight: T) -> bool {
        if self.contains(v, w) {
            return false;
        }
        let base = v * self.n;
        for s in 0..self.n {
            if self.cols[base + s] == INVALID {
                self.cols[base + s] = w;
                self.ws[base + s] = weight;
                return true;
            }
        }
        false
    }

    /// Remove the undirected edge `{u, v}` from both endpoints.
    /// Returns whether anything was removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let mut removed = false;
        for (a, b) in [(u, v), (v, u)] {
            let base = a * self.n;
            for s in 0..self.n {
                if self.cols[base + s] == b as u32 {
                    self.cols[base + s] = INVALID;
                    self.ws[base + s] = T::ZERO;
                    removed = true;
                }
            }
        }
        removed
    }

    /// Total number of filled slots, `|π(V)| = Σ_v |π(v)|` (twice the edge
    /// count for a mutual factor) — the paper's maximality counter.
    pub fn total_slots(&self) -> usize {
        self.cols.iter().filter(|&&c| c != INVALID).count()
    }

    /// Undirected edge list `(v, w, weight)` with `v < w`.
    ///
    /// For a mutual factor each edge appears exactly once.
    pub fn edges(&self) -> Vec<(u32, u32, T)> {
        let mut out = Vec::new();
        for v in 0..self.nv {
            for (w, x) in self.partners(v) {
                if (v as u32) < w {
                    out.push((v as u32, w, x));
                }
            }
        }
        out
    }

    /// The factor weight ω_π (Eq. 3): Σ over factor edges of |ω(e)| using
    /// the stored `A'` weights.
    pub fn weight(&self) -> f64 {
        self.edges().iter().map(|&(_, _, w)| w.to_f64().abs()).sum()
    }

    /// The factor as a symmetric adjacency matrix (slot weights as
    /// values) — e.g. to inspect bandwidth under a permutation.
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = lf_sparse::Coo::new(self.nv, self.nv);
        for v in 0..self.nv {
            for (w, x) in self.partners(v) {
                coo.push(v as u32, w, x);
            }
        }
        Csr::from_coo(coo)
    }

    /// Check the paper's factor invariants against graph `a` (the matrix π
    /// was computed from). Returns a description of the first violation.
    pub fn validate(&self, a: &Csr<T>) -> Result<(), String> {
        if a.nrows() != self.nv {
            return Err("vertex count mismatch".into());
        }
        for v in 0..self.nv {
            let mut seen = Vec::new();
            for (w, _) in self.partners(v) {
                if w as usize >= self.nv {
                    return Err(format!("vertex {v}: partner {w} out of range"));
                }
                if w as usize == v {
                    return Err(format!("vertex {v}: self-loop"));
                }
                if seen.contains(&w) {
                    return Err(format!("vertex {v}: duplicate partner {w}"));
                }
                seen.push(w);
                // condition (2): mutuality and edge existence
                if !self.contains(w as usize, v as u32) {
                    return Err(format!("edge ({v},{w}) not mutual"));
                }
                if a.get(v, w as usize) == T::ZERO && a.get(w as usize, v) == T::ZERO {
                    return Err(format!("edge ({v},{w}) not in E"));
                }
            }
            // condition (1) holds by construction (n slots), but check size
            if seen.len() > self.n {
                return Err(format!("vertex {v}: degree {} > n", seen.len()));
            }
        }
        Ok(())
    }

    /// Whether π is *maximal*: no edge of `a` can be added without breaking
    /// the degree bound. (O(nnz); for tests and the greedy baseline.)
    pub fn is_maximal(&self, a: &Csr<T>) -> bool {
        for v in 0..self.nv {
            if self.degree(v) >= self.n {
                continue;
            }
            for (w, x) in a.row(v) {
                if w as usize == v || x == T::ZERO {
                    continue;
                }
                if self.degree(w as usize) < self.n && !self.contains(v, w) {
                    return false;
                }
            }
        }
        true
    }
}

/// Total graph weight ω_G (Eq. 4 denominator): Σ over off-diagonal stored
/// entries of |a_ij|. For symmetric matrices each undirected edge is thus
/// counted twice — consistently in numerator and denominator of the
/// coverage ratios below, matching the paper's convention.
pub fn graph_weight<T: Scalar>(a: &Csr<T>) -> f64 {
    a.iter()
        .filter(|&(r, c, _)| r != c)
        .map(|(_, _, v)| v.to_f64().abs())
        .sum()
}

/// Relative weight coverage c_π (Eq. 4) of a factor, measured against the
/// (possibly nonsymmetric) original matrix `a`: for every factor edge
/// `{v, w}` both directed entries `|a_vw| + |a_wv|` count.
pub fn weight_coverage<T: Scalar, U: Scalar>(factor: &Factor<T>, a: &Csr<U>) -> f64 {
    let denom = graph_weight(a);
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = factor
        .edges()
        .iter()
        .map(|&(v, w, _)| {
            a.get(v as usize, w as usize).to_f64().abs() + a.get(w as usize, v as usize).to_f64().abs()
        })
        .sum();
    num / denom
}

/// Coverage of the sub-/superdiagonal in the original vertex order, c_id
/// (Eq. 5): what a tridiagonal preconditioner built without reordering
/// would capture.
pub fn identity_coverage<T: Scalar>(a: &Csr<T>) -> f64 {
    let denom = graph_weight(a);
    if denom == 0.0 {
        return 0.0;
    }
    let n = a.nrows();
    let mut num = 0.0;
    for i in 0..n {
        if i > 0 {
            num += a.get(i, i - 1).to_f64().abs();
        }
        if i + 1 < n {
            num += a.get(i, i + 1).to_f64().abs();
        }
    }
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Coo;

    fn path_graph(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i as u32, i as u32 + 1, 1.0 + i as f64);
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn insert_degree_contains() {
        let mut f = Factor::<f64>::new(4, 2);
        assert!(f.insert(0, 1, 5.0));
        assert!(f.insert(1, 0, 5.0));
        assert!(!f.insert(0, 1, 5.0), "duplicate insert");
        assert!(f.insert(0, 2, 3.0));
        assert!(f.insert(2, 0, 3.0));
        assert!(!f.insert(0, 3, 1.0), "degree bound");
        assert_eq!(f.degree(0), 2);
        assert!(f.contains(0, 1));
        assert!(!f.contains(0, 3));
        assert_eq!(f.total_slots(), 4);
        assert_eq!(f.edges().len(), 2);
    }

    #[test]
    fn remove_edge_both_sides() {
        let mut f = Factor::<f64>::new(3, 2);
        f.insert(0, 1, 2.0);
        f.insert(1, 0, 2.0);
        assert!(f.remove_edge(1, 0));
        assert_eq!(f.degree(0), 0);
        assert_eq!(f.degree(1), 0);
        assert!(!f.remove_edge(0, 1));
    }

    #[test]
    fn validate_catches_violations() {
        let a = path_graph(4);
        let mut f = Factor::<f64>::new(4, 2);
        f.insert(0, 1, 1.0);
        assert!(f.validate(&a).unwrap_err().contains("not mutual"));
        f.insert(1, 0, 1.0);
        assert!(f.validate(&a).is_ok());
        // non-existent edge 0-3
        f.insert(0, 3, 1.0);
        f.insert(3, 0, 1.0);
        assert!(f.validate(&a).unwrap_err().contains("not in E"));
    }

    #[test]
    fn maximality() {
        let a = path_graph(3); // edges 0-1, 1-2
        let mut f = Factor::<f64>::new(3, 1);
        assert!(!f.is_maximal(&a));
        f.insert(0, 1, 1.0);
        f.insert(1, 0, 1.0);
        // vertex 2 free but its only neighbor 1 is full for n = 1
        assert!(f.is_maximal(&a));
    }

    #[test]
    fn coverage_metrics() {
        let a = path_graph(3); // weights 1, 2 (each stored twice)
        assert_eq!(graph_weight(&a), 6.0);
        let mut f = Factor::<f64>::new(3, 1);
        f.insert(1, 2, 2.0);
        f.insert(2, 1, 2.0);
        // covers |a_12| + |a_21| = 4 of 6
        assert!((weight_coverage(&f, &a) - 4.0 / 6.0).abs() < 1e-12);
        // path graph in natural order: everything on the tridiagonal
        assert!((identity_coverage(&a) - 1.0).abs() < 1e-12);
        assert_eq!(f.weight(), 2.0);
    }

    #[test]
    fn to_csr_is_symmetric_adjacency() {
        let mut f = Factor::<f64>::new(4, 2);
        f.insert(0, 1, 2.0);
        f.insert(1, 0, 2.0);
        f.insert(1, 2, 3.0);
        f.insert(2, 1, 3.0);
        let m = f.to_csr();
        assert!(m.is_symmetric());
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.bandwidth(), 1);
    }

    #[test]
    fn empty_graph_coverage_zero() {
        let a = Csr::<f64>::zeros(3, 3);
        let f = Factor::<f64>::new(3, 2);
        assert_eq!(weight_coverage(&f, &a), 0.0);
        assert_eq!(identity_coverage(&a), 0.0);
    }
}
