//! Step (4) of the linear-forest extraction (paper Sec. 3.3/4.3): with the
//! permutation in hand, gather the tridiagonal coefficients **from the
//! original input matrix A** into three length-N buffers.
//!
//! As in the paper, the matrix is walked in COO fashion with one logical
//! thread per coefficient; each thread checks whether its edge belongs to
//! the linear forest and scatters the value through the permutation into
//! the sub-/superdiagonal buffer (diagonal entries always pass through).

use crate::factor::Factor;
use lf_kernel::{launch, Device, ScatterSlice, Traffic};
use lf_sparse::{Csr, Scalar};

/// A tridiagonal system stored in three buffers of length N
/// (`dl[0]` and `du[N−1]` are zero).
#[derive(Clone, Debug, PartialEq)]
pub struct Tridiag<T> {
    /// Subdiagonal: `dl[i] = t_{i, i−1}`.
    pub dl: Vec<T>,
    /// Diagonal: `d[i] = t_{i, i}`.
    pub d: Vec<T>,
    /// Superdiagonal: `du[i] = t_{i, i+1}`.
    pub du: Vec<T>,
}

impl<T: Scalar> Tridiag<T> {
    /// An all-zero system of order n.
    pub fn zeros(n: usize) -> Self {
        Self {
            dl: vec![T::ZERO; n],
            d: vec![T::ZERO; n],
            du: vec![T::ZERO; n],
        }
    }

    /// Order of the system.
    pub fn len(&self) -> usize {
        self.d.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.d.is_empty()
    }

    /// Dense `y = T·x` (reference helper for tests).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let n = self.len();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut y = self.d[i] * x[i];
                if i > 0 {
                    y += self.dl[i] * x[i - 1];
                }
                if i + 1 < n {
                    y += self.du[i] * x[i + 1];
                }
                y
            })
            .collect()
    }

    /// Sum of |off-diagonal| entries (diagnostic).
    pub fn offdiag_weight(&self) -> f64 {
        self.dl.iter().chain(self.du.iter()).map(|v| v.to_f64().abs()).sum()
    }
}

/// Extract the tridiagonal coefficients of `QᵀAQ` restricted to the linear
/// forest (plus the full diagonal), where `perm[new] = old`.
///
/// `factor` must be the acyclic [0,2]-factor whose edges, under `perm`,
/// connect consecutive vertices (guaranteed by
/// [`crate::permute::forest_permutation`]). Off-diagonal coefficients of A
/// that are not forest edges are dropped — they belong to the residual, not
/// the preconditioner.
pub fn extract_tridiagonal<T: Scalar, U: Scalar>(
    dev: &Device,
    a: &Csr<U>,
    factor: &Factor<T>,
    perm: &[u32],
) -> Tridiag<U> {
    let n = a.nrows();
    assert_eq!(perm.len(), n);
    let inv = crate::permute::invert_permutation(dev, perm);

    let mut out = Tridiag::zeros(n);
    // COO walk: one logical thread per stored coefficient of A.
    let coo = a.to_coo();
    let nnz = coo.nnz();
    {
        let dl = ScatterSlice::new(&mut out.dl);
        let d = ScatterSlice::new(&mut out.d);
        let du = ScatterSlice::new(&mut out.du);
        let traffic = Traffic::new()
            .reads::<u32>(2 * nnz) // COO rows + cols
            .reads::<U>(nnz)
            .reads::<u32>(2 * n) // permutation + confirmed-edge lookups
            .writes::<U>(3 * n);
        launch::for_each_index(dev, "extract_coefficients", nnz, traffic, |e| {
            let (i, j, v) = (coo.rows[e] as usize, coo.cols[e] as usize, coo.vals[e]);
            let pi = inv[i] as usize;
            if i == j {
                // SAFETY: each diagonal (i, i) appears once in A; `inv` is
                // a bijection, so targets are disjoint.
                unsafe { d.write(pi, v) };
                return;
            }
            if !factor.contains(i, j as u32) {
                return;
            }
            let pj = inv[j] as usize;
            debug_assert_eq!(
                (pi as i64 - pj as i64).abs(),
                1,
                "forest edge not adjacent under permutation"
            );
            if pi == pj + 1 {
                // SAFETY: at most one forest edge maps to each sub-/super-
                // diagonal slot because positions are consecutive and unique.
                unsafe { dl.write(pi, v) };
            } else if pj == pi + 1 {
                unsafe { du.write(pi, v) };
            }
        });
    }
    out
}

/// Reference extraction: dense walk over `QᵀAQ` keeping the tridiagonal
/// part *restricted to forest edges* — for validating the scatter kernel.
pub fn extract_tridiagonal_reference<T: Scalar, U: Scalar>(
    a: &Csr<U>,
    factor: &Factor<T>,
    perm: &[u32],
) -> Tridiag<U> {
    let n = a.nrows();
    let mut out = Tridiag::zeros(n);
    for (k, &old) in perm.iter().enumerate() {
        out.d[k] = a.get(old as usize, old as usize);
        if k > 0 {
            let prev = perm[k - 1];
            if factor.contains(old as usize, prev) {
                out.dl[k] = a.get(old as usize, prev as usize);
            }
        }
        if k + 1 < n {
            let next = perm[k + 1];
            if factor.contains(old as usize, next) {
                out.du[k] = a.get(old as usize, next as usize);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::identify_paths;
    use crate::permute::forest_permutation;
    use crate::testutil::factor_from_edges;
    use lf_sparse::Coo;

    #[test]
    fn tridiag_matvec() {
        let t = Tridiag {
            dl: vec![0.0, 1.0, 2.0],
            d: vec![4.0, 5.0, 6.0],
            du: vec![7.0, 8.0, 0.0],
        };
        assert_eq!(t.matvec(&[1.0, 1.0, 1.0]), vec![11.0, 14.0, 8.0]);
        assert_eq!(t.offdiag_weight(), 18.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn extracts_forest_edges_only() {
        // graph: square 0-1-2-3-0 with a chord; forest keeps 0-1, 1-2, 2-3
        let mut coo = Coo::<f64>::new(4, 4);
        for i in 0..4u32 {
            coo.push(i, i, 10.0 + i as f64);
        }
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(1, 2, -2.0);
        coo.push_sym(2, 3, -3.0);
        coo.push_sym(3, 0, -4.0); // not in forest
        let a = lf_sparse::Csr::from_coo(coo);
        let f = factor_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        let perm = forest_permutation(&dev, &p);
        assert_eq!(perm, vec![0, 1, 2, 3]);
        let t = extract_tridiagonal(&dev, &a, &f, &perm);
        assert_eq!(t.d, vec![10.0, 11.0, 12.0, 13.0]);
        assert_eq!(t.du, vec![-1.0, -2.0, -3.0, 0.0]);
        assert_eq!(t.dl, vec![0.0, -1.0, -2.0, -3.0]);
        assert_eq!(t, extract_tridiagonal_reference(&a, &f, &perm));
    }

    #[test]
    fn nonsymmetric_values_kept_per_direction() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(0, 1, -5.0);
        coo.push(1, 0, -7.0);
        let a = lf_sparse::Csr::from_coo(coo);
        let f = factor_from_edges(2, &[(0, 1, 6.0)]);
        let dev = Device::default();
        let p = identify_paths(&dev, &f).unwrap();
        let perm = forest_permutation(&dev, &p);
        let t = extract_tridiagonal(&dev, &a, &f, &perm);
        assert_eq!(t.du[0], -5.0);
        assert_eq!(t.dl[1], -7.0);
    }

    #[test]
    fn scatter_matches_reference_on_random_forest() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let dev = Device::default();
        let nv = 300;
        // random matrix with planted forest
        let (a, _paths): (lf_sparse::Csr<f64>, _) =
            lf_sparse::random::planted_linear_forest(nv, 10, 3.0, 99);
        // build the factor from the planted strong edges (weight ≥ 0.5)
        let mut f = crate::factor::Factor::<f64>::new(nv, 2);
        for (r, c, v) in a.iter() {
            if r < c && v >= 0.5 {
                f.insert(r as usize, c, v);
                f.insert(c as usize, r, v);
            }
        }
        let _ = rng.random::<u8>();
        let p = identify_paths(&dev, &f).unwrap();
        let perm = forest_permutation(&dev, &p);
        let got = extract_tridiagonal(&dev, &a, &f, &perm);
        let want = extract_tridiagonal_reference(&a, &f, &perm);
        assert_eq!(got, want);
    }
}
