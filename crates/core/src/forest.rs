//! The end-to-end linear-forest pipeline (paper Sec. 3.3, Fig. 6):
//!
//! 1. parallel [0,2]-factor (Algorithm 2),
//! 2. identify cycles and break them at their weakest edge,
//! 3. identify paths (IDs and positions, Algorithm 3),
//! 4. compute the tridiagonalizing permutation (radix sort),
//! 5. extract coefficients from the original matrix.
//!
//! The per-phase device statistics are recorded for the Fig. 6 time
//! breakdown.

use crate::cycles::{break_cycles, CycleReport};
use crate::error::PipelineError;
use crate::extract::{extract_tridiagonal, Tridiag};
use crate::factor::Factor;
use crate::parallel::FactorConfig;
use crate::paths::{identify_paths, PathInfo};
use crate::permute::forest_permutation;
use lf_kernel::{Device, DeviceStats};
use lf_sparse::{Csr, Scalar};

/// A maximum(-al) linear forest of a weighted graph with everything needed
/// to build tridiagonal preconditioners: the acyclic [0,2]-factor, the
/// per-vertex path IDs/positions, and the tridiagonalizing permutation.
#[derive(Clone, Debug)]
pub struct LinearForest<T> {
    /// The acyclic [0,2]-factor (after cycle breaking).
    pub factor: Factor<T>,
    /// Path IDs and positions per vertex.
    pub paths: PathInfo,
    /// Permutation with `perm[new] = old`; under it the forest adjacency
    /// is tridiagonal.
    pub perm: Vec<u32>,
    /// Cycle-breaking report of step (1).
    pub cycles: CycleReport,
    /// Iterations used by the factor computation.
    pub factor_iterations: usize,
}

impl<T: Scalar> LinearForest<T> {
    /// Number of disjoint paths in the forest (isolated vertices count as
    /// length-1 paths).
    pub fn num_paths(&self) -> usize {
        self.paths.num_paths()
    }

    /// Total weight ω_π of the forest (Eq. 3, on `A'` weights).
    pub fn weight(&self) -> f64 {
        self.factor.weight()
    }

    /// FNV-1a fingerprint over the entire forest — factor slots, path
    /// IDs/positions, permutation, cycle report, and iteration count.
    /// Equal fingerprints mean bit-identical forests; the postmortem
    /// replay (`lf postmortem --replay`) uses this as its oracle.
    pub fn fingerprint(&self) -> u64 {
        use crate::factor::fnv1a;
        let mut h = self.factor.fingerprint();
        h = fnv1a(h, &(self.factor_iterations as u64).to_le_bytes());
        h = fnv1a(h, &(self.cycles.cycles as u64).to_le_bytes());
        for &(u, v) in &self.cycles.removed {
            h = fnv1a(h, &u.to_le_bytes());
            h = fnv1a(h, &v.to_le_bytes());
        }
        for chunk in [&self.paths.path_id, &self.paths.position, &self.perm] {
            for x in chunk.iter() {
                h = fnv1a(h, &x.to_le_bytes());
            }
        }
        h
    }

    /// One-stop quality report against the original matrix `a` (and,
    /// optionally, a sequential-greedy reference factor for the PAR/SEQ
    /// ratio of Table 5).
    pub fn quality_report<U: lf_sparse::Scalar>(
        &self,
        a: &lf_sparse::Csr<U>,
        greedy: Option<&Factor<T>>,
    ) -> QualityReport {
        let lengths = self.paths.path_lengths();
        let coverage = crate::factor::weight_coverage(&self.factor, a);
        QualityReport {
            coverage,
            identity_coverage: crate::factor::identity_coverage(a),
            greedy_ratio: greedy.map(|g| {
                let cg = crate::factor::weight_coverage(g, a);
                if cg == 0.0 {
                    1.0
                } else {
                    coverage / cg
                }
            }),
            num_paths: lengths.len(),
            mean_path_len: if lengths.is_empty() {
                0.0
            } else {
                lengths.iter().sum::<usize>() as f64 / lengths.len() as f64
            },
            max_path_len: lengths.iter().copied().max().unwrap_or(0),
            cycles_broken: self.cycles.cycles,
        }
    }
}

/// Summary of a linear forest's quality (see
/// [`LinearForest::quality_report`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QualityReport {
    /// Relative weight coverage c_π (Eq. 4).
    pub coverage: f64,
    /// Natural-order coverage c_id (Eq. 5) for comparison.
    pub identity_coverage: f64,
    /// `c_π / c_π(greedy)` when a greedy reference was supplied.
    pub greedy_ratio: Option<f64>,
    /// Number of disjoint paths (incl. isolated vertices).
    pub num_paths: usize,
    /// Mean path length in vertices.
    pub mean_path_len: f64,
    /// Longest path length.
    pub max_path_len: usize,
    /// Cycles broken during extraction.
    pub cycles_broken: usize,
}

/// Device statistics per pipeline phase — the paper's Fig. 6 breakdown.
#[derive(Clone, Debug, Default)]
pub struct PipelineTimings {
    /// [0,2]-factor computation (Algorithm 2).
    pub factor: DeviceStats,
    /// Cycle identification + weakest-edge removal.
    pub identify_cycles: DeviceStats,
    /// Path ID/position scan (Algorithm 3).
    pub identify_paths: DeviceStats,
    /// Radix-sort permutation.
    pub permutation: DeviceStats,
    /// Coefficient extraction from A.
    pub extraction: DeviceStats,
}

impl PipelineTimings {
    /// Total wall time across phases (seconds).
    pub fn total_wall_s(&self) -> f64 {
        self.phases().iter().map(|(_, s)| s.wall_time_s).sum()
    }

    /// Total model time across phases (seconds).
    pub fn total_model_s(&self) -> f64 {
        self.phases().iter().map(|(_, s)| s.model_time_s).sum()
    }

    /// Named phase list in pipeline order.
    pub fn phases(&self) -> [(&'static str, &DeviceStats); 5] {
        [
            ("factor", &self.factor),
            ("identify_cycles", &self.identify_cycles),
            ("identify_paths", &self.identify_paths),
            ("permutation", &self.permutation),
            ("extraction", &self.extraction),
        ]
    }
}

/// Extract a linear forest from the undirected weight matrix `aprime`
/// (see [`crate::prepare_undirected`]) using a [0,2]-factor computed with
/// `cfg` (whose `n` must be 2).
///
/// # Errors
///
/// [`PipelineError::NotPathFactor`] if `cfg.n != 2`, plus any error of
/// [`crate::parallel::try_parallel_factor`]; [`PipelineError::ResidualCycle`] if path
/// identification still finds a cycle after cycle breaking (an internal
/// invariant violation, not bad input).
pub fn extract_linear_forest<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
) -> Result<(LinearForest<T>, PipelineTimings), PipelineError> {
    extract_linear_forest_with(
        dev,
        aprime,
        cfg,
        None,
        &mut crate::parallel::FactorWorkspace::new(),
    )
}

/// [`extract_linear_forest`] with full control over the factor stage:
/// optional explicit per-vertex charge keys (fused block-diagonal runs;
/// see [`crate::parallel::try_parallel_factor_keyed`]) and a caller-owned
/// [`crate::parallel::FactorWorkspace`] so repeated extractions — the
/// batching service's steady state — reuse every scratch buffer.
///
/// # Errors
///
/// Everything [`extract_linear_forest`] reports, plus
/// [`PipelineError::ChargeKeyCount`] when `keys` does not have one key per
/// vertex.
pub fn extract_linear_forest_with<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    keys: Option<&[u32]>,
    ws: &mut crate::parallel::FactorWorkspace<T, 2>,
) -> Result<(LinearForest<T>, PipelineTimings), PipelineError> {
    if cfg.n != 2 {
        return Err(PipelineError::NotPathFactor { n: cfg.n });
    }
    let mut timings = PipelineTimings::default();
    let tracer = dev.tracer().clone();
    let _forest_span = tracer.span("forest");

    // The factor stage opens its own "factor" span inside Algorithm 2 (so
    // standalone factor runs are traced too); the remaining stages get
    // their spans here.
    let (outcome, t_factor) = dev.scoped(|| {
        crate::parallel::try_parallel_factor_with_workspace(dev, aprime, cfg, keys, ws)
    });
    let outcome = outcome?;
    timings.factor = t_factor;
    let mut factor = outcome.factor;

    let (cycles, t_cyc) = dev.scoped(|| {
        let _s = tracer.span("identify_cycles");
        break_cycles(dev, &mut factor)
    });
    timings.identify_cycles = t_cyc;

    let (paths, t_paths) = dev.scoped(|| {
        let _s = tracer.span("identify_paths");
        identify_paths(dev, &factor)
    });
    timings.identify_paths = t_paths;
    let paths = paths?;

    let (perm, t_perm) = dev.scoped(|| {
        let _s = tracer.span("permutation");
        forest_permutation(dev, &paths)
    });
    timings.permutation = t_perm;

    if tracer.is_active() {
        tracer.metric("cycles_broken", cycles.cycles as f64);
        tracer.metric("num_paths", paths.num_paths() as f64);
        tracer.metric("forest_weight", factor.weight());
        // Fusion-pass observability: how many adjacent kernel pairs the
        // peephole rewrote into single launches (process-cumulative until
        // `Device::reset_stats`). Lets traced runs verify the pass fires.
        let fs = dev.fusion_stats();
        tracer.metric("fused_launches", fs.fused() as f64);
        tracer.metric("fusion_attempts", fs.attempted as f64);
    }

    Ok((
        LinearForest {
            factor,
            paths,
            perm,
            cycles,
            factor_iterations: outcome.iterations,
        },
        timings,
    ))
}

/// Full setup of an algebraic scalar tridiagonal preconditioner
/// (paper Sec. 6, `AlgTriScalPrecond`): linear forest + coefficient
/// extraction from the **original** matrix `a`.
///
/// # Errors
///
/// Everything [`extract_linear_forest`] can report.
pub fn tridiagonal_from_matrix<T: Scalar>(
    dev: &Device,
    a: &Csr<T>,
    cfg: &FactorConfig,
) -> Result<(Tridiag<T>, LinearForest<T>, PipelineTimings), PipelineError> {
    let aprime = crate::prepare_undirected(a);
    let (forest, mut timings) = extract_linear_forest(dev, &aprime, cfg)?;
    let (tri, t_ex) = dev.scoped(|| {
        let _s = dev.tracer().span("extraction");
        extract_tridiagonal(dev, a, &forest.factor, &forest.perm)
    });
    timings.extraction = t_ex;
    Ok((tri, forest, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::weight_coverage;
    use crate::permute::is_tridiagonalizing;
    use lf_sparse::stencil::{grid2d, ANISO1, ANISO2};
    use lf_sparse::Collection;

    #[test]
    fn aniso1_forest_follows_strong_direction() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(16, 16, &ANISO1);
        let ap = crate::prepare_undirected(&a);
        let (forest, timings) =
            extract_linear_forest(&dev, &ap, &FactorConfig::paper_default(2)).unwrap();
        forest.factor.validate(&ap).unwrap();
        assert!(is_tridiagonalizing(&forest.factor, &forest.perm));
        // ANISO1's strong x-chains carry 2/3 of the weight (Table 4: 0.67)
        let c = weight_coverage(&forest.factor, &a);
        assert!(c > 0.60, "ANISO1 coverage {c:.3}");
        assert!(timings.total_wall_s() > 0.0);
        assert!(timings.factor.launches > 0);
        assert!(timings.identify_paths.launches > 0);
    }

    #[test]
    fn permuted_adjacency_is_tridiagonal_matrix() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(12, 12, &ANISO2);
        let (tri, forest, _) =
            tridiagonal_from_matrix(&dev, &a, &FactorConfig::paper_default(2)).unwrap();
        // permute A and compare its forest-restricted tridiagonal part
        let want = crate::extract::extract_tridiagonal_reference(&a, &forest.factor, &forest.perm);
        assert_eq!(tri, want);
        // bandwidth of the forest adjacency under perm is 1
        assert!(is_tridiagonalizing(&forest.factor, &forest.perm));
    }

    #[test]
    fn pipeline_runs_on_collection_samples() {
        let dev = Device::default();
        for m in [Collection::G3Circuit, Collection::Stocf1465, Collection::Atmosmodm] {
            let a = m.generate(800);
            let (tri, forest, _) =
                tridiagonal_from_matrix(&dev, &a, &FactorConfig::paper_default(2)).unwrap();
            assert_eq!(tri.len(), a.nrows());
            assert!(forest.num_paths() >= 1);
            // diagonal passes through
            for i in 0..a.nrows() {
                let k = forest.perm.iter().position(|&o| o as usize == i).unwrap();
                assert_eq!(tri.d[k], a.get(i, i), "{} diag {i}", m.name());
            }
        }
    }

    #[test]
    fn stocf_forest_covers_almost_everything() {
        // Table 5: STOCF-1465 has c_π = 1.00 for n = 2.
        let dev = Device::default();
        let a = Collection::Stocf1465.generate(2000);
        let ap = crate::prepare_undirected(&a);
        let (forest, _) =
            extract_linear_forest(&dev, &ap, &FactorConfig::paper_default(2)).unwrap();
        let c = weight_coverage(&forest.factor, &a);
        assert!(c > 0.95, "STOCF coverage {c:.3}");
    }

    #[test]
    fn quality_report_fields() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(10, 10, &ANISO1);
        let ap = crate::prepare_undirected(&a);
        let (forest, _) =
            extract_linear_forest(&dev, &ap, &FactorConfig::paper_default(2)).unwrap();
        let greedy = crate::greedy::greedy_factor(&ap, 2);
        let q = forest.quality_report(&a, Some(&greedy));
        assert!(q.coverage > 0.5);
        assert!(q.greedy_ratio.unwrap() > 0.9);
        assert!(q.mean_path_len >= 1.0);
        assert!(q.max_path_len >= 10, "x-chains span the grid");
        assert_eq!(
            q.num_paths,
            forest.num_paths(),
        );
        // forest adjacency becomes bandwidth-1 under the permutation
        let adj = forest.factor.to_csr().permute_sym(&forest.perm);
        assert!(adj.bandwidth() <= 1);
    }

    #[test]
    fn wrong_degree_bound_is_an_error_not_a_panic() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(6, 6, &ANISO1);
        let ap = crate::prepare_undirected(&a);
        let err = extract_linear_forest(&dev, &ap, &FactorConfig::paper_default(4)).unwrap_err();
        assert_eq!(err, crate::error::PipelineError::NotPathFactor { n: 4 });
        let err = tridiagonal_from_matrix(&dev, &a, &FactorConfig::paper_default(1)).unwrap_err();
        assert_eq!(err, crate::error::PipelineError::NotPathFactor { n: 1 });
    }

    #[test]
    fn timings_phase_list_is_complete() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(8, 8, &ANISO1);
        let (_, _, t) =
            tridiagonal_from_matrix(&dev, &a, &FactorConfig::paper_default(2)).unwrap();
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["factor", "identify_cycles", "identify_paths", "permutation", "extraction"]
        );
        for (name, s) in t.phases() {
            assert!(s.launches > 0, "phase {name} launched nothing");
        }
        assert!(t.total_model_s() > 0.0);
    }
}
