//! Merged single-scan variant of steps (1) + (2) — an ablation.
//!
//! The paper (end of Sec. 3.3) observes that cycle identification and path
//! identification *could* be fused into one bidirectional scan that finds
//! the weakest edge **and** the distance to it, but that doing so moves
//! more data and runs longer than two specialized scans. This module
//! implements that fused scan so the claim can be measured on the device
//! model (`repro ablation`).
//!
//! The fused accumulator per direction is `(min-edge, hit, dist, count)`:
//!
//! * `min`  — the weakest edge seen in this direction (lexicographic min);
//! * `hit`  — the endpoint of that edge on the near side (toward the
//!   scanning vertex), which after cycle breaking becomes a path end;
//! * `dist` — vertices from the scanning vertex (inclusive) up to `hit`
//!   (inclusive); frozen once the minimum stops improving;
//! * `count` — plain vertex count (the path-position accumulator).
//!
//! The combine `(near ⊕ far)` is associative (the minimum is unique, so
//! "first occurrence from the near side" is well defined) and, on the
//! min/hit/dist part, idempotent under the window aliasing that occurs in
//! cycles.

use crate::cycles::{CycleReport, MinEdge};
use crate::factor::Factor;
use crate::paths::PathInfo;
use crate::scan::{bidirectional_scan_with, BidirResult};
use lf_kernel::{launch, Device, Traffic};
use lf_sparse::Scalar;
use rayon::prelude::*;

/// The fused directional accumulator.
#[derive(Clone, Copy, Debug)]
pub struct MergedVal<T> {
    /// Weakest edge in this direction.
    pub min: MinEdge<T>,
    /// Near-side endpoint of that edge.
    pub hit: u32,
    /// Inclusive vertex distance to `hit`.
    pub dist: u32,
    /// Plain vertex count (path position accumulator).
    pub count: u32,
}

impl<T: Scalar> Default for MergedVal<T> {
    fn default() -> Self {
        Self {
            min: MinEdge::infinity(),
            hit: u32::MAX,
            dist: 0,
            count: 0,
        }
    }
}

impl<T: Scalar> MergedVal<T> {
    /// Directional combine: `self` is the near segment, `far` the segment
    /// beyond it.
    #[inline]
    pub fn combine(self, far: Self) -> Self {
        let (min, hit, dist) = if (far.min.w, far.min.u, far.min.v)
            < (self.min.w, self.min.u, self.min.v)
        {
            (far.min, far.hit, self.count + far.dist)
        } else {
            (self.min, self.hit, self.dist)
        };
        Self {
            min,
            hit,
            dist,
            count: self.count + far.count,
        }
    }
}

/// Fused steps (1) + (2): one bidirectional scan that breaks cycles at
/// their weakest edge **and** produces path IDs/positions, including for
/// the vertices of freshly broken cycles.
pub fn break_cycles_and_identify_paths<T: Scalar>(
    dev: &Device,
    factor: &mut Factor<T>,
) -> (CycleReport, PathInfo) {
    let nv = factor.num_vertices();
    let res: BidirResult<MergedVal<T>> = bidirectional_scan_with(
        dev,
        factor,
        "merged_scan",
        |v, s| match factor.partners(v).nth(s) {
            Some((w, x)) => MergedVal {
                min: MinEdge::new(x, v as u32, w),
                hit: v as u32,
                dist: 1,
                count: 1,
            },
            None => MergedVal {
                min: MinEdge::infinity(),
                hit: v as u32,
                dist: 1,
                count: 1,
            },
        },
        |a, b| a.combine(b),
        // At a stride alias, combine each aliased value against the same
        // clean base and keep whichever found the smaller edge, so `dist`
        // never accumulates through an already-absorbed segment.
        |base, vt0, vt1| {
            let a = base.combine(vt0);
            let b = base.combine(vt1);
            if (a.min.w, a.min.u, a.min.v) <= (b.min.w, b.min.u, b.min.v) {
                a
            } else {
                b
            }
        },
    );

    // Removed edges, one per cycle (reported by the smaller endpoint).
    let removed: Vec<(u32, u32)> = dev.launch(
        "merged_collect_edges",
        Traffic::new().read_bytes((nv * std::mem::size_of::<[MergedVal<T>; 2]>()) as u64),
        || {
            (0..nv)
                .into_par_iter()
                .filter_map(|v| {
                    if !res.in_cycle(v) {
                        return None;
                    }
                    let e = res.values[v][0].min.min(res.values[v][1].min);
                    (e.u == v as u32).then_some((e.u, e.v))
                })
                .collect()
        },
    );

    // Remove the weakest edges in place (same kernel shape as
    // `break_cycles`).
    {
        let n = factor.degree_bound();
        let (cols, ws) = factor.slots_mut();
        let traffic = Traffic::new()
            .read_bytes((nv * std::mem::size_of::<[MergedVal<T>; 2]>()) as u64)
            .reads::<u32>(nv * n)
            .writes::<u32>(nv * n)
            .writes::<T>(nv * n);
        dev.launch("merged_remove_edges", traffic, || {
            cols.par_chunks_mut(n)
                .zip(ws.par_chunks_mut(n))
                .enumerate()
                .for_each(|(v, (vc, vw))| {
                    if !res.in_cycle(v) {
                        return;
                    }
                    let e = res.values[v][0].min.min(res.values[v][1].min);
                    if !e.touches(v as u32) {
                        return;
                    }
                    let other = if e.u == v as u32 { e.v } else { e.u };
                    for s in 0..n {
                        if vc[s] == other {
                            vc[s] = crate::factor::INVALID;
                            vw[s] = T::ZERO;
                        }
                    }
                });
        });
    }

    // Path IDs and positions without a second scan: paths use the end
    // markers and counts; broken cycles use the min-edge hit/dist.
    let mut path_id = vec![0u32; nv];
    let mut position = vec![0u32; nv];
    {
        let links = &res.links;
        let values = &res.values;
        launch::map2(
            dev,
            "merged_assign_ids",
            &mut path_id,
            &mut position,
            nv * (8 + 2 * std::mem::size_of::<MergedVal<T>>()),
            |v| {
                if res.in_cycle(v) {
                    // cycle of length L broken at edge (u, w): ends u and w;
                    // the direction whose near-side hit is min(u, w) gives
                    // the position directly.
                    let e = values[v][0].min.min(values[v][1].min);
                    let id = e.u.min(e.v);
                    let i = if values[v][0].min == e && values[v][0].hit == id {
                        0
                    } else if values[v][1].min == e && values[v][1].hit == id {
                        1
                    } else {
                        // both directions saw the min but neither hit the
                        // smaller endpoint first — impossible on a simple
                        // cycle, kept as a defensive branch
                        0
                    };
                    (id, values[v][i].dist)
                } else {
                    let (e0, e1) = (links[v][0].id(), links[v][1].id());
                    if e0 <= e1 {
                        (e0, values[v][0].count)
                    } else {
                        (e1, values[v][1].count)
                    }
                }
            },
        );
    }
    (
        CycleReport {
            cycles: removed.len(),
            removed,
        },
        PathInfo { path_id, position },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::break_cycles;
    use crate::paths::identify_paths;
    use crate::testutil::factor_from_edges;

    fn check_equivalent(nv: usize, edges: &[(u32, u32, f32)]) {
        let dev = Device::default();
        let f0 = factor_from_edges(nv, edges);

        let mut f_merged = f0.clone();
        let (rep_m, paths_m) = break_cycles_and_identify_paths(&dev, &mut f_merged);

        let mut f_two = f0.clone();
        let rep_t = break_cycles(&dev, &mut f_two);
        let paths_t = identify_paths(&dev, &f_two).expect("acyclic");

        assert_eq!(f_merged, f_two, "factors differ after breaking");
        let (mut a, mut b) = (rep_m.removed.clone(), rep_t.removed.clone());
        a.sort();
        b.sort();
        assert_eq!(a, b, "removed edges differ");
        assert_eq!(paths_m, paths_t, "path info differs");
    }

    #[test]
    fn pure_paths_match_two_pass() {
        check_equivalent(6, &[(0, 1, 1.0), (1, 2, 1.0), (4, 5, 1.0)]);
    }

    #[test]
    fn triangle_positions() {
        // triangle 0-1-2, weakest (1,2): ends 1 and 2, path id 1,
        // order 1, 0, 2
        let dev = Device::default();
        let mut f = factor_from_edges(3, &[(0, 1, 0.5), (1, 2, 0.3), (2, 0, 0.9)]);
        let (rep, paths) = break_cycles_and_identify_paths(&dev, &mut f);
        assert_eq!(rep.removed, vec![(1, 2)]);
        assert_eq!(paths.path_id, vec![1, 1, 1]);
        assert_eq!(paths.position, vec![2, 1, 3]);
    }

    #[test]
    fn mixed_cycles_and_paths_match_two_pass() {
        check_equivalent(
            9,
            &[
                (0, 1, 0.5),
                (1, 2, 0.4),
                (2, 0, 0.6),
                (3, 4, 1.0),
                (4, 5, 0.9),
                (5, 6, 0.8),
                (6, 3, 0.7),
                (7, 8, 0.2),
            ],
        );
    }

    #[test]
    fn random_factors_match_two_pass() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        for _ in 0..25 {
            let nv = 80;
            let mut perm: Vec<u32> = (0..nv as u32).collect();
            for i in (1..nv).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            let mut edges = Vec::new();
            let mut wsq = 0u32;
            let mut i = 0;
            while i < nv {
                let len = rng.random_range(1..=10).min(nv - i);
                let cyc = len >= 3 && rng.random::<bool>();
                for t in 0..len - 1 {
                    wsq += 1;
                    edges.push((perm[i + t], perm[i + t + 1], wsq as f32 * 0.1));
                }
                if cyc {
                    wsq += 1;
                    edges.push((perm[i + len - 1], perm[i], wsq as f32 * 0.1));
                }
                i += len;
            }
            check_equivalent(nv, &edges);
        }
    }

    #[test]
    fn fused_scan_moves_more_data() {
        // the paper's reason for NOT fusing: more traffic per scan step
        let dev = Device::default();
        let edges: Vec<(u32, u32, f32)> = (0..999)
            .map(|i| (i as u32, i as u32 + 1, 1.0 + (i % 7) as f32))
            .collect();
        let f0 = factor_from_edges(1000, &edges);

        let mut fm = f0.clone();
        let (_, merged_stats) = dev.scoped(|| break_cycles_and_identify_paths(&dev, &mut fm));
        let mut ft = f0.clone();
        let (_, two_stats) = dev.scoped(|| {
            break_cycles(&dev, &mut ft);
            identify_paths(&dev, &ft).expect("acyclic")
        });
        // fused: fewer launches ...
        assert!(
            merged_stats.launches < two_stats.launches,
            "fused should halve the scan launches"
        );
        // ... but more bytes moved overall
        assert!(
            merged_stats.traffic.total() > two_stats.traffic.total(),
            "fused {} B vs two-pass {} B — paper expects fused to move more",
            merged_stats.traffic.total(),
            two_stats.traffic.total()
        );
    }
}
