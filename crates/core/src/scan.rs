//! The bidirectional scan over [0,2]-factor connectivity
//! (paper Algorithm 3 / Sec. 4.2) — the paper's novel parallel primitive.
//!
//! A [0,2]-factor is structured like a doubly linked list **with unknown
//! orientation**: each vertex knows up to two neighbors but not which is
//! "forward". Classic GPU scans (Thrust, CUB) require random-access
//! iterators and cannot run here. This scan only needs *bidirectional
//! connectivity*: it performs pointer-doubling in both directions
//! simultaneously with a butterfly access pattern (paper Fig. 2), in
//! exactly `⌈log₂ N⌉` kernel launches regardless of path lengths
//! (overall work `N log₂ N` versus O(N) for a work-efficient scan — the
//! step-efficient trade-off the paper chooses).
//!
//! The scan is parameterized on the combine operator, like
//! `thrust::inclusive_scan`: `+` computes path positions
//! ([`crate::paths`]), lexicographic `min` finds the weakest edge of each
//! cycle ([`crate::cycles`]).

use crate::factor::Factor;
use lf_kernel::{launch, Device, PingPong};
use lf_sparse::Scalar;

/// A stride-q neighbor entry: either a real vertex or a **path-end
/// marker** carrying the end vertex's ID. The paper encodes ends as
/// "negative 1-based indices"; we tag the top bit, which is equivalent
/// and keeps the type a `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Link(u32);

const END_BIT: u32 = 0x8000_0000;

impl Link {
    /// A link to a real vertex.
    #[inline]
    pub fn vertex(v: u32) -> Self {
        debug_assert!(v < END_BIT, "vertex id overflows link encoding");
        Link(v)
    }

    /// An end marker remembering path-end vertex `v`.
    #[inline]
    pub fn end(v: u32) -> Self {
        Link(v | END_BIT)
    }

    /// Whether this is a path-end marker.
    #[inline]
    pub fn is_end(self) -> bool {
        self.0 & END_BIT != 0
    }

    /// The vertex ID carried by the link (end vertex for markers).
    #[inline]
    pub fn id(self) -> u32 {
        self.0 & !END_BIT
    }
}

/// Result of a bidirectional scan: per vertex, the final stride-q links
/// (both path ends, for acyclic components) and the two directional
/// accumulator values.
#[derive(Clone, Debug)]
pub struct BidirResult<V> {
    /// Final links per vertex; `links[v][i].is_end()` for acyclic
    /// components, still a vertex for cycle members (the paper's cycle
    /// detection criterion).
    pub links: Vec<[Link; 2]>,
    /// Directional accumulators per vertex.
    pub values: Vec<[V; 2]>,
    /// Number of scan steps (kernel launches of the butterfly).
    pub steps: usize,
}

impl<V> BidirResult<V> {
    /// Whether vertex `v` lies on a cycle (positive stride-q_max neighbor
    /// after all steps, Sec. 4.2).
    pub fn in_cycle(&self, v: usize) -> bool {
        !self.links[v][0].is_end() || !self.links[v][1].is_end()
    }
}

/// *Stride aliasing*: in a cycle whose length divides twice the current
/// stride, both of a neighbor's stride-q links point back at the scanning
/// vertex and the paper's Algorithm 3 (line 16) absorbs nothing. That is
/// fine for cycle detection and the global cycle minimum (the union of
/// both directions still covers every edge), but the fused scan of
/// [`crate::merged`] needs per-direction coverage; the `alias` hook of
/// [`bidirectional_scan_with`] lets the operator handle that case.
///
/// Run the bidirectional scan on the connectivity of a [0,2]-factor.
///
/// * `init(v, slot)` produces the initial directional value of vertex `v`
///   for `slot ∈ {0, 1}`, where slot `s` corresponds to the `s`-th partner
///   in `factor.partners(v)` (or the self-end filler if the vertex has
///   fewer than two partners).
/// * `combine` must be associative; for cyclic components it must also be
///   idempotent (`combine(a, a) = a`, e.g. `min`) for the result to be
///   meaningful, as strides alias once they exceed the cycle length.
///
/// `kernel_name` labels the per-step launches in the device statistics
/// (the paper's Fig. 5 reports the two scans separately).
pub fn bidirectional_scan<T, V>(
    dev: &Device,
    factor: &Factor<T>,
    kernel_name: &str,
    init: impl Fn(usize, usize) -> V + Sync,
    combine: impl Fn(V, V) -> V + Sync,
) -> BidirResult<V>
where
    T: Scalar,
    V: Copy + Send + Sync + Default,
{
    bidirectional_scan_with(dev, factor, kernel_name, init, combine, |cur, _, _| cur)
}

/// [`bidirectional_scan`] with an explicit alias hook: at a stride alias
/// (see [`AliasPolicy`]), `alias(current, vt0, vt1)` receives the
/// direction's current value and the aliased neighbor\'s **both**
/// directional values and returns the updated value. The paper\'s rule is
/// `|cur, _, _| cur`; the fused scan picks the better of two clean
/// combines so its distance bookkeeping stays exact.
pub fn bidirectional_scan_with<T, V>(
    dev: &Device,
    factor: &Factor<T>,
    kernel_name: &str,
    init: impl Fn(usize, usize) -> V + Sync,
    combine: impl Fn(V, V) -> V + Sync,
    alias: impl Fn(V, V, V) -> V + Sync,
) -> BidirResult<V>
where
    T: Scalar,
    V: Copy + Send + Sync + Default,
{
    assert!(
        factor.degree_bound() <= 2,
        "bidirectional scan requires a [0,2]-factor"
    );
    let nv = factor.num_vertices();
    let mut links = PingPong::new(nv, [Link::default(); 2]);
    let mut values = PingPong::new(nv, [V::default(); 2]);

    // Init kernel (Alg. 3 lines 1–4): stride-1 neighbors from π, padded
    // with self end markers; initial directional values from `init`.
    {
        let (ldst, vdst) = (links.dst_mut(), values.dst_mut());
        let state_bytes = factor.num_vertices()
            * (factor.degree_bound() * (4 + std::mem::size_of::<T>()));
        launch::map2(dev, "bidir_init", ldst, vdst, state_bytes, |v| {
            let mut l = [Link::end(v as u32); 2];
            for (s, (w, _)) in factor.partners(v).take(2).enumerate() {
                l[s] = Link::vertex(w);
            }
            (l, [init(v, 0), init(v, 1)])
        });
    }
    links.swap();
    values.swap();

    let steps = nv.max(2).next_power_of_two().trailing_zeros() as usize;
    let read_bytes = 3 * nv * (std::mem::size_of::<[Link; 2]>() + std::mem::size_of::<[V; 2]>());

    for _ in 0..steps {
        let (lsrc, ldst) = links.src_dst_mut();
        let (vsrc, vdst) = values.src_dst_mut();
        launch::map2(dev, kernel_name, ldst, vdst, read_bytes, |v| {
            let mut w = lsrc[v];
            let mut r = vsrc[v];
            let me = Link::vertex(v as u32);
            for i in 0..2 {
                if w[i].is_end() {
                    continue;
                }
                let nb = w[i].id() as usize;
                let vq = lsrc[nb];
                let vt = vsrc[nb];
                // follow the neighbor's slot that does not point back at us
                // (Alg. 3 lines 13–20)
                let mut absorbed = false;
                for j in 0..2 {
                    if vq[j] != me {
                        r[i] = combine(r[i], vt[j]);
                        w[i] = vq[j];
                        absorbed = true;
                    }
                }
                if !absorbed {
                    // stride alias in a power-of-two cycle: delegate to
                    // the alias hook; the link stays put.
                    r[i] = alias(r[i], vt[0], vt[1]);
                }
            }
            (w, r)
        });
        links.swap();
        values.swap();
    }

    BidirResult {
        links: links.into_src(),
        values: values.into_src(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a [0,2]-factor from explicit undirected edges.
    pub(crate) fn factor_from_edges(nv: usize, edges: &[(u32, u32, f32)]) -> Factor<f32> {
        let mut f = Factor::new(nv, 2);
        for &(u, v, w) in edges {
            assert!(f.insert(u as usize, v, w));
            assert!(f.insert(v as usize, u, w));
        }
        f
    }

    #[test]
    fn link_encoding() {
        let v = Link::vertex(42);
        assert!(!v.is_end());
        assert_eq!(v.id(), 42);
        let e = Link::end(42);
        assert!(e.is_end());
        assert_eq!(e.id(), 42);
        assert_ne!(v, e);
    }

    #[test]
    fn single_path_positions() {
        // path 0-1-2-3-4
        let f = factor_from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)],
        );
        let dev = Device::default();
        let res = bidirectional_scan(&dev, &f, "scan", |_, _| 1u32, |a, b| a + b);
        for v in 0..5 {
            assert!(!res.in_cycle(v), "path vertex {v} flagged as cycle");
            let ends: Vec<u32> = res.links[v].iter().map(|l| l.id()).collect();
            let mut se = ends.clone();
            se.sort();
            assert_eq!(se, vec![0, 4], "vertex {v} ends {ends:?}");
            // distance to each end (inclusive vertex count)
            for i in 0..2 {
                let e = res.links[v][i].id() as i64;
                let want = (v as i64 - e).abs() + 1;
                assert_eq!(res.values[v][i] as i64, want, "v={v} end={e}");
            }
        }
    }

    #[test]
    fn figure2_example_four_paths() {
        // Paper Fig. 2: N = 10 with 4 paths; we use paths
        // {0,1,2}, {3}, {4,5,6,7}, {8,9}
        let f = factor_from_edges(
            10,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
                (8, 9, 1.0),
            ],
        );
        let dev = Device::default();
        let res = bidirectional_scan(&dev, &f, "scan", |_, _| 1u32, |a, b| a + b);
        assert_eq!(res.steps, 4, "log2(16) steps for N = 10");
        // isolated vertex 3: both its own end, value 1
        assert_eq!(res.links[3], [Link::end(3), Link::end(3)]);
        assert_eq!(res.values[3], [1, 1]);
        // vertex 6 in path 4..=7: ends {4, 7}, distances {3, 2}
        let mut got: Vec<(u32, u32)> = (0..2)
            .map(|i| (res.links[6][i].id(), res.values[6][i]))
            .collect();
        got.sort();
        assert_eq!(got, vec![(4, 3), (7, 2)]);
    }

    #[test]
    fn cycle_detected_and_min_found() {
        // triangle 0-1-2 plus a path 3-4
        let f = factor_from_edges(
            5,
            &[(0, 1, 0.5), (1, 2, 0.3), (2, 0, 0.9), (3, 4, 0.1)],
        );
        let dev = Device::default();
        // min-scan over edge weights: init slot s of v with weight of that edge
        let res = bidirectional_scan(
            &dev,
            &f,
            "minscan",
            |v, s| {
                f.partners(v)
                    .nth(s)
                    .map(|(_, w)| w)
                    .unwrap_or(f32::INFINITY)
            },
            |a: f32, b: f32| a.min(b),
        );
        for v in 0..3 {
            assert!(res.in_cycle(v), "triangle vertex {v}");
            let m = res.values[v][0].min(res.values[v][1]);
            assert_eq!(m, 0.3, "cycle min at vertex {v}");
        }
        assert!(!res.in_cycle(3));
        assert!(!res.in_cycle(4));
    }

    #[test]
    fn even_cycle_aliasing_min_still_correct() {
        // 4-cycle: strides alias at q = 2; idempotent min must survive
        let f = factor_from_edges(
            4,
            &[(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.2), (3, 0, 0.7)],
        );
        let dev = Device::default();
        let res = bidirectional_scan(
            &dev,
            &f,
            "minscan",
            |v, s| {
                f.partners(v)
                    .nth(s)
                    .map(|(_, w)| w)
                    .unwrap_or(f32::INFINITY)
            },
            |a: f32, b: f32| a.min(b),
        );
        for v in 0..4 {
            assert!(res.in_cycle(v));
            assert_eq!(res.values[v][0].min(res.values[v][1]), 0.2, "v={v}");
        }
    }

    #[test]
    fn long_path_log_steps() {
        let n = 1000;
        let edges: Vec<(u32, u32, f32)> =
            (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1.0)).collect();
        let f = factor_from_edges(n, &edges);
        let dev = Device::default();
        let res = bidirectional_scan(&dev, &f, "scan", |_, _| 1u32, |a, b| a + b);
        assert_eq!(res.steps, 10);
        // kernel launch count: init + steps
        let s = dev.stats();
        assert_eq!(s.kernels["scan"].launches, 10);
        assert_eq!(s.kernels["bidir_init"].launches, 1);
        // middle vertex
        let v = n / 2;
        let total: u32 = res.values[v].iter().sum();
        assert_eq!(total as usize, n + 1, "d_left + d_right counts v twice");
    }
}
