//! Sequential greedy [0,n]-factor (paper Algorithm 1) — the quality
//! baseline the parallel algorithm is measured against in Tables 4 and 5.
//!
//! Edges are visited in order of decreasing |weight| (ties broken by
//! vertex IDs for determinism) and added whenever both endpoints still
//! have a free slot. For n = 1 this is the classic greedy matching with a
//! 1/2-approximation guarantee on the maximum weight [16].

use crate::factor::Factor;
use lf_sparse::{Csr, Scalar};

/// Compute a maximal [0,n]-factor greedily.
///
/// `a` should be the preprocessed undirected weight matrix `A'`
/// (see [`crate::prepare_undirected`]); the diagonal is ignored and each
/// undirected edge is considered once with weight `|a_vw|`.
pub fn greedy_factor<T: Scalar>(a: &Csr<T>, n: usize) -> Factor<T> {
    let nv = a.nrows();
    let mut edges: Vec<(T, u32, u32)> = Vec::with_capacity(a.nnz() / 2);
    for (r, c, v) in a.iter() {
        if r < c && v != T::ZERO {
            // take max of both directions for robustness on asymmetric input
            let w = if a.get(c as usize, r as usize).abs() > v.abs() {
                a.get(c as usize, r as usize).abs()
            } else {
                v.abs()
            };
            edges.push((w, r, c));
        }
    }
    // decreasing |ω| under the IEEE total order (NaN sorts above every
    // finite weight, -0.0 below +0.0), ties by (v, w) ascending. The
    // previous `partial_cmp(..).unwrap_or(Equal)` comparator was not
    // transitive in the presence of NaN, which `sort_by` is allowed to
    // reject at runtime.
    edges.sort_by(|x, y| y.0.total_cmp(x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    let mut f = Factor::new(nv, n);
    let mut deg = vec![0u32; nv];
    for (w, u, v) in edges {
        if deg[u as usize] < n as u32 && deg[v as usize] < n as u32 {
            f.insert(u as usize, v, w);
            f.insert(v as usize, u, w);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::weight_coverage;
    use lf_sparse::random::random_symmetric;
    use lf_sparse::Coo;

    fn triangle() -> Csr<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, 3.0);
        coo.push_sym(1, 2, 2.0);
        coo.push_sym(0, 2, 1.0);
        Csr::from_coo(coo)
    }

    #[test]
    fn matching_takes_heaviest_edge() {
        let a = triangle();
        let f = greedy_factor(&a, 1);
        assert!(f.contains(0, 1));
        assert_eq!(f.degree(2), 0);
        assert_eq!(f.edges().len(), 1);
        f.validate(&a).unwrap();
        assert!(f.is_maximal(&a));
    }

    #[test]
    fn two_factor_takes_whole_triangle() {
        let a = triangle();
        let f = greedy_factor(&a, 2);
        assert_eq!(f.edges().len(), 3);
        assert!((weight_coverage(&f, &a) - 1.0).abs() < 1e-12);
        f.validate(&a).unwrap();
    }

    #[test]
    fn respects_degree_bound_on_star() {
        // star: center 0 with 5 leaves
        let mut coo = Coo::<f64>::new(6, 6);
        for l in 1..6u32 {
            coo.push_sym(0, l, l as f64);
        }
        let a = Csr::from_coo(coo);
        for n in 1..=4 {
            let f = greedy_factor(&a, n);
            assert_eq!(f.degree(0), n);
            // takes the n heaviest leaves
            for l in (6 - n as u32)..6 {
                assert!(f.contains(0, l), "n={n} leaf {l}");
            }
            f.validate(&a).unwrap();
            assert!(f.is_maximal(&a));
        }
    }

    #[test]
    fn maximal_on_random_graphs() {
        for seed in 0..5 {
            let a: Csr<f64> = random_symmetric(200, 8.0, 0.1, 1.0, seed);
            for n in 1..=4 {
                let f = greedy_factor(&a, n);
                f.validate(&a).unwrap();
                assert!(f.is_maximal(&a), "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn nan_and_negative_zero_weights_stay_deterministic() {
        // Regression: NaN weights fed the old `partial_cmp(..)
        // .unwrap_or(Equal)` comparator, which is not a total order —
        // sort_by may panic on it, and even when it does not the edge
        // order (hence the factor) was implementation-defined. Under
        // total_cmp NaN ranks above every finite weight and the result
        // is stable across calls.
        let mut coo = Coo::<f64>::new(6, 6);
        coo.push_sym(0, 1, f64::NAN);
        coo.push_sym(1, 2, 5.0);
        coo.push_sym(2, 3, -0.0);
        coo.push_sym(3, 4, 0.0);
        coo.push_sym(4, 5, 2.0);
        let a = Csr::from_coo(coo);
        let f = greedy_factor(&a, 1);
        assert_eq!(f.fingerprint(), greedy_factor(&a, 1).fingerprint());
        // NaN |w| sorts heaviest: (0,1) matches first and blocks (1,2).
        assert!(f.contains(0, 1));
        assert!(!f.contains(1, 2));
        assert!(f.contains(4, 5));
        // Explicit zeros (either sign) are skipped as non-edges.
        assert!(!f.contains(2, 3));
        assert!(!f.contains(3, 4));
    }

    #[test]
    fn half_approximation_for_matching() {
        // greedy matching achieves ≥ 1/2 of the maximum weight matching;
        // verify against brute force on small graphs
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = 8;
            let mut coo = Coo::<f64>::new(n, n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random::<f64>() < 0.5 {
                        coo.push_sym(u, v, rng.random_range(0.1..1.0));
                    }
                }
            }
            let a = Csr::from_coo(coo);
            let f = greedy_factor(&a, 1);
            let greedy_w = f.weight();
            // brute-force max weight matching over edge subsets
            let edges: Vec<(u32, u32, f64)> = a
                .iter()
                .filter(|&(r, c, _)| r < c)
                .collect();
            let mut best = 0.0f64;
            let m = edges.len();
            assert!(m <= 20, "keep brute force feasible");
            for mask in 0u32..(1 << m) {
                let mut used = 0u32;
                let mut w = 0.0;
                let mut ok = true;
                for (i, &(u, v, x)) in edges.iter().enumerate() {
                    if mask >> i & 1 == 1 {
                        if used >> u & 1 == 1 || used >> v & 1 == 1 {
                            ok = false;
                            break;
                        }
                        used |= 1 << u | 1 << v;
                        w += x;
                    }
                }
                if ok && w > best {
                    best = w;
                }
            }
            assert!(
                greedy_w * 2.0 + 1e-9 >= best,
                "greedy {greedy_w} < half of optimal {best}"
            );
        }
    }
}
