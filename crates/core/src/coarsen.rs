//! [0,1]-factor coarsening for the 2×2 block tridiagonal preconditioner
//! (paper Sec. 6, `AlgTriBlockPrecond`).
//!
//! A [0,1]-factor (matching) pairs vertices; each matched pair — and each
//! unmatched vertex — becomes one coarse vertex. Coarse edge weights sum
//! the |fine weights| crossing between the two groups. A [0,2]-factor on
//! the coarse graph then yields a linear forest of pairs, i.e. a 2×2 block
//! tridiagonal structure on the fine level. Unmatched vertices get an
//! uncoupled *ghost* partner (diagonal 1, rhs 1 in the solver) so the
//! block structure stays uniform, exactly as the paper describes.

use crate::factor::Factor;
use lf_kernel::{Device, Traffic};
use lf_sparse::{Coo, Csr, Scalar};

/// The fine↔coarse correspondence induced by a matching.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// Per coarse vertex: the fine pair `(v, Some(w))` with `v < w`, or
    /// `(v, None)` for an unmatched vertex (paired with a ghost).
    pub groups: Vec<(u32, Option<u32>)>,
    /// Per fine vertex: its coarse vertex.
    pub fine_to_coarse: Vec<u32>,
}

impl Coarsening {
    /// Number of coarse vertices.
    pub fn num_coarse(&self) -> usize {
        self.groups.len()
    }

    /// Number of matched fine pairs.
    pub fn num_pairs(&self) -> usize {
        self.groups.iter().filter(|(_, w)| w.is_some()).count()
    }
}

/// Build the coarsening from a [0,1]-factor and assemble the coarse
/// weighted graph (weights = summed |fine weights| between groups, no
/// diagonal).
pub fn coarsen_by_matching<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    matching: &Factor<T>,
) -> (Coarsening, Csr<T>) {
    assert_eq!(matching.degree_bound(), 1, "coarsening needs a [0,1]-factor");
    let nv = aprime.nrows();
    assert_eq!(matching.num_vertices(), nv);

    // Enumerate groups by their smaller fine vertex, in fine order (a
    // sequential pass; cheap relative to everything else).
    let mut groups: Vec<(u32, Option<u32>)> = Vec::with_capacity(nv);
    let mut fine_to_coarse = vec![u32::MAX; nv];
    for v in 0..nv {
        if fine_to_coarse[v] != u32::MAX {
            continue;
        }
        let cid = groups.len() as u32;
        match matching.partners(v).next() {
            Some((w, _)) if (w as usize) != v => {
                let w = w as usize;
                debug_assert!(w > v, "first visit must be the smaller endpoint");
                groups.push((v as u32, Some(w as u32)));
                fine_to_coarse[v] = cid;
                fine_to_coarse[w] = cid;
            }
            _ => {
                groups.push((v as u32, None));
                fine_to_coarse[v] = cid;
            }
        }
    }

    // Coarse edge assembly: every fine entry votes its |weight| to the
    // coarse (group_i, group_j) edge; COO duplicate-combination sums them.
    let nc = groups.len();
    let nnz = aprime.nnz();
    let triplets: Vec<(u32, u32, T)> = dev.launch(
        "coarse_edge_assembly",
        Traffic::new()
            .reads::<T>(nnz)
            .reads::<u32>(nnz + nv)
            .writes::<T>(nnz),
        || {
            use rayon::prelude::*;
            let fine_to_coarse = &fine_to_coarse;
            (0..nv)
                .into_par_iter()
                .flat_map_iter(|i| {
                    let ci = fine_to_coarse[i];
                    aprime.row(i).filter_map(move |(j, w)| {
                        let cj = fine_to_coarse[j as usize];
                        (ci != cj && w != T::ZERO).then_some((ci, cj, w.abs()))
                    })
                })
                .collect()
        },
    );
    let mut coo = Coo::new(nc, nc);
    for (r, c, v) in triplets {
        coo.push(r, c, v);
    }
    let coarse = Csr::from_coo(coo);

    (
        Coarsening {
            groups,
            fine_to_coarse,
        },
        coarse,
    )
}

/// Expand a coarse permutation (over coarse vertices, `perm_c[new] = old`)
/// into the fine-level permutation that lays out each pair contiguously:
/// coarse position k maps to fine rows 2k (pair's smaller vertex) and
/// 2k + 1 (larger vertex or ghost). Ghost rows are marked with
/// `u32::MAX` in the returned vector and must be materialized by the
/// block-system builder.
pub fn expand_block_permutation(coarsening: &Coarsening, perm_c: &[u32]) -> Vec<u32> {
    assert_eq!(perm_c.len(), coarsening.num_coarse());
    let mut fine = Vec::with_capacity(2 * perm_c.len());
    for &c in perm_c {
        let (v, w) = coarsening.groups[c as usize];
        fine.push(v);
        fine.push(w.unwrap_or(u32::MAX));
    }
    fine
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Coo;

    fn chain4() -> Csr<f64> {
        // 0 -5- 1 -1- 2 -5- 3
        let mut coo = Coo::new(4, 4);
        coo.push_sym(0, 1, 5.0);
        coo.push_sym(1, 2, 1.0);
        coo.push_sym(2, 3, 5.0);
        Csr::from_coo(coo)
    }

    fn matching_of(a: &Csr<f64>) -> Factor<f64> {
        crate::greedy::greedy_factor(a, 1)
    }

    #[test]
    fn pairs_and_groups() {
        let a = chain4();
        let m = matching_of(&a); // matches (0,1) and (2,3)
        let dev = Device::default();
        let (c, coarse) = coarsen_by_matching(&dev, &a, &m);
        assert_eq!(c.num_coarse(), 2);
        assert_eq!(c.num_pairs(), 2);
        assert_eq!(c.groups, vec![(0, Some(1)), (2, Some(3))]);
        assert_eq!(c.fine_to_coarse, vec![0, 0, 1, 1]);
        // coarse edge weight = |1.0| from edge (1,2), both directions stored
        assert_eq!(coarse.nrows(), 2);
        assert_eq!(coarse.get(0, 1), 1.0);
        assert_eq!(coarse.get(1, 0), 1.0);
    }

    #[test]
    fn unmatched_vertex_becomes_singleton() {
        // triangle: matching leaves one vertex out
        let mut coo = Coo::<f64>::new(3, 3);
        coo.push_sym(0, 1, 3.0);
        coo.push_sym(1, 2, 2.0);
        coo.push_sym(0, 2, 1.0);
        let a = Csr::from_coo(coo);
        let m = matching_of(&a); // (0,1)
        let dev = Device::default();
        let (c, coarse) = coarsen_by_matching(&dev, &a, &m);
        assert_eq!(c.num_coarse(), 2);
        assert_eq!(c.num_pairs(), 1);
        assert_eq!(c.groups[1], (2, None));
        // crossing weight: |a_12| + |a_02| = 3
        assert_eq!(coarse.get(0, 1), 3.0);
    }

    #[test]
    fn coarse_weights_sum_crossings() {
        // two pairs with two parallel crossing edges
        let mut coo = Coo::<f64>::new(4, 4);
        coo.push_sym(0, 1, 9.0); // pair A
        coo.push_sym(2, 3, 9.0); // pair B
        coo.push_sym(0, 2, 1.0);
        coo.push_sym(1, 3, 2.5);
        let a = Csr::from_coo(coo);
        let m = matching_of(&a);
        let dev = Device::default();
        let (_, coarse) = coarsen_by_matching(&dev, &a, &m);
        assert_eq!(coarse.get(0, 1), 3.5);
        assert!(coarse.is_symmetric());
    }

    #[test]
    fn expand_block_perm_layout() {
        let c = Coarsening {
            groups: vec![(0, Some(2)), (1, None)],
            fine_to_coarse: vec![0, 1, 0],
        };
        let fine = expand_block_permutation(&c, &[1, 0]);
        assert_eq!(fine, vec![1, u32::MAX, 0, 2]);
    }
}
