//! Vertex charging (paper Sec. 3.2, Alg. 2 line 10).
//!
//! Before a charged proposition round, every vertex is assigned a charge —
//! **positive** with probability `p`, **negative** with `1 − p` — and may
//! only propose to vertices of the *opposite* charge. The randomness breaks
//! structural weight ties (e.g. ECOLOGY's uniform weights) that would
//! otherwise stall mutual confirmation. Charges depend on the vertex ID and
//! the iteration index `k`, computed with a fragment of the MD5 round
//! function, as in Fagginger Auer & Bisseling's GPU matching [16].

/// MD5 round-1 constants (RFC 1321) used by the mixing fragment.
const K: [u32; 8] = [
    0xd76a_a478,
    0xe8c7_b756,
    0x2420_70db,
    0xc1bd_ceee,
    0xf57c_0faf,
    0x4787_c62a,
    0xa830_4613,
    0xfd46_9501,
];
const S: [u32; 4] = [7, 12, 17, 22];

/// The MD5 auxiliary function F of round 1.
#[inline]
fn f(b: u32, c: u32, d: u32) -> u32 {
    (b & c) | (!b & d)
}

/// One MD5 round-1 step.
#[inline]
fn step(a: u32, b: u32, c: u32, d: u32, m: u32, k: u32, s: u32) -> u32 {
    b.wrapping_add(
        a.wrapping_add(f(b, c, d))
            .wrapping_add(m)
            .wrapping_add(k)
            .rotate_left(s),
    )
}

/// Mix `(vertex, iteration)` through eight MD5 round-1 steps and return a
/// well-scrambled 32-bit hash.
#[inline]
pub fn md5_mix(v: u32, k_iter: u32) -> u32 {
    // MD5 initial state (RFC 1321).
    let (mut a, mut b, mut c, mut d) = (0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476);
    // message words alternate the two inputs
    let m = [v, k_iter, v ^ 0x5bd1_e995, k_iter.wrapping_mul(0x9e37_79b9)];
    for r in 0..8 {
        let na = step(a, b, c, d, m[r % 4], K[r], S[r % 4]);
        d = c;
        c = b;
        b = na;
        std::mem::swap(&mut a, &mut d);
    }
    a ^ b ^ c ^ d
}

/// Charge of vertex `v` at iteration `k`: `true` = positive(+), drawn with
/// probability `p` (the paper uses p = 0.5 throughout, the optimum found
/// in [16]).
#[inline]
pub fn charge(v: u32, k_iter: u32, p: f64) -> bool {
    (md5_mix(v, k_iter) as f64) < p * (u32::MAX as f64 + 1.0)
}

/// Per-graph charge key of vertex `v` under `salt`. Salt `0` is the
/// identity — the key *is* the vertex ID, reproducing the paper's charge
/// derivation exactly — while a nonzero salt re-keys the vertex through an
/// extra MD5 mix so independent graphs draw decorrelated charge streams.
///
/// This is the hook block-diagonal batching hangs off: a fused run that
/// charges global vertex `off_i + v` with key `salted_key(v, salt_i)` sees
/// bit-for-bit the charges a solo run of graph `i` sees under
/// `FactorConfig::with_charge_salt(salt_i)`, which makes fused and solo
/// extraction results identical.
#[inline]
pub fn salted_key(v: u32, salt: u32) -> u32 {
    if salt == 0 {
        v
    } else {
        md5_mix(v, salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(md5_mix(42, 3), md5_mix(42, 3));
        assert_eq!(charge(7, 0, 0.5), charge(7, 0, 0.5));
    }

    #[test]
    fn varies_with_vertex_and_iteration() {
        let h: Vec<u32> = (0..64).map(|v| md5_mix(v, 0)).collect();
        let mut uniq = h.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "hash collisions on tiny input set");
        // iteration changes the charge pattern for many vertices
        let flips = (0..1000)
            .filter(|&v| charge(v, 0, 0.5) != charge(v, 1, 0.5))
            .count();
        assert!(flips > 300, "only {flips} flips between iterations");
    }

    #[test]
    fn probability_close_to_p() {
        for &p in &[0.25, 0.5, 0.75] {
            let n = 20_000u32;
            let pos = (0..n).filter(|&v| charge(v, 5, p)).count() as f64;
            let frac = pos / n as f64;
            assert!(
                (frac - p).abs() < 0.02,
                "p = {p}: measured {frac}"
            );
        }
    }

    #[test]
    fn extreme_p() {
        assert!((0..100).all(|v| charge(v, 0, 1.0)));
        assert!((0..100).all(|v| !charge(v, 0, 0.0)));
    }

    #[test]
    fn salted_key_zero_is_identity() {
        // Regression: salt 0 must preserve the paper's charge derivation
        // bit-for-bit, or every pre-batching result changes.
        for v in [0u32, 1, 7, 4096, u32::MAX] {
            assert_eq!(salted_key(v, 0), v);
        }
        for v in 0..256 {
            assert_eq!(
                charge(salted_key(v, 0), 3, 0.5),
                charge(v, 3, 0.5)
            );
        }
    }

    #[test]
    fn salted_key_decorrelates() {
        let plain: Vec<bool> = (0..2048).map(|v| charge(v, 0, 0.5)).collect();
        for salt in [1u32, 0xdead_beef, 12345] {
            let salted: Vec<bool> = (0..2048)
                .map(|v| charge(salted_key(v, salt), 0, 0.5))
                .collect();
            let agree = plain.iter().zip(&salted).filter(|(a, b)| a == b).count();
            // Independent fair coins agree about half the time.
            assert!((700..1350).contains(&agree), "salt {salt}: {agree}/2048");
            let pos = salted.iter().filter(|&&c| c).count();
            assert!((700..1350).contains(&pos), "salt {salt} biased: {pos}/2048");
        }
        // Distinct salts give distinct keys (no accidental fixed point).
        assert_ne!(salted_key(10, 1), salted_key(10, 2));
    }

    #[test]
    fn bit_balance() {
        // each output bit should be roughly balanced over many inputs
        let n = 8192u32;
        for bit in 0..32 {
            let ones = (0..n)
                .filter(|&v| md5_mix(v, 9) >> bit & 1 == 1)
                .count() as f64;
            let frac = ones / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {bit}: {frac}");
        }
    }
}
