//! Typed pipeline errors.
//!
//! The ROADMAP's production north-star demands that bad input produce
//! *errors*, not panics: a serving layer must be able to reject one
//! request and keep running. Every fallible entry point of the pipeline
//! ([`crate::parallel::try_parallel_factor`],
//! [`crate::forest::extract_linear_forest`],
//! [`crate::forest::tridiagonal_from_matrix`]) reports one of these
//! variants instead of asserting.

/// Why a linear-forest pipeline run could not produce a result.
///
/// Everything user-controllable (degree bound, matrix shape, weights)
/// maps to a dedicated variant; [`PipelineError::ResidualCycle`] is the
/// one internal-invariant variant, raised if path identification still
/// finds a cycle after cycle breaking (which indicates a bug or a
/// corrupted factor, never bad user input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The degree bound n is outside the supported range 1..=8
    /// (the paper implements n ≤ 4; this reproduction extends to 8).
    UnsupportedDegreeBound {
        /// The requested degree bound.
        n: usize,
    },
    /// A linear forest requires a [0,2]-factor, but `cfg.n ≠ 2`.
    NotPathFactor {
        /// The requested degree bound.
        n: usize,
    },
    /// The graph matrix is not square.
    NonSquareMatrix {
        /// Row count.
        nrows: usize,
        /// Column count.
        ncols: usize,
    },
    /// A graph weight is NaN or infinite, which breaks every weight
    /// comparison downstream (top-n selection, weakest-edge minimum).
    NonFiniteWeight {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// Path identification found a cycle after cycle breaking — an
    /// internal invariant violation (corrupted factor or a bug).
    ResidualCycle {
        /// A vertex on the residual cycle.
        vertex: u32,
    },
    /// An explicit per-vertex charge-key array (fused block-diagonal runs)
    /// does not have exactly one key per vertex.
    ChargeKeyCount {
        /// Number of vertices in the graph.
        expected: usize,
        /// Number of keys supplied.
        got: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::UnsupportedDegreeBound { n } => {
                write!(f, "degree bound n = {n} unsupported (supported: 1..=8)")
            }
            PipelineError::NotPathFactor { n } => {
                write!(f, "a linear forest requires a [0,2]-factor, got n = {n}")
            }
            PipelineError::NonSquareMatrix { nrows, ncols } => {
                write!(f, "graph matrix must be square, got {nrows}×{ncols}")
            }
            PipelineError::NonFiniteWeight { row, col } => {
                write!(f, "non-finite weight at ({row}, {col})")
            }
            PipelineError::ResidualCycle { vertex } => {
                write!(
                    f,
                    "internal invariant violated: vertex {vertex} still lies on a \
                     cycle after cycle breaking"
                )
            }
            PipelineError::ChargeKeyCount { expected, got } => {
                write!(f, "charge-key array must have one key per vertex: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<crate::paths::PathError> for PipelineError {
    fn from(e: crate::paths::PathError) -> Self {
        match e {
            crate::paths::PathError::CycleDetected(v) => PipelineError::ResidualCycle { vertex: v },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = PipelineError::UnsupportedDegreeBound { n: 9 };
        assert!(e.to_string().contains("n = 9"));
        let e = PipelineError::NotPathFactor { n: 3 };
        assert!(e.to_string().contains("[0,2]-factor"));
        let e = PipelineError::NonSquareMatrix { nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("2×3"));
        let e = PipelineError::NonFiniteWeight { row: 1, col: 2 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = PipelineError::ResidualCycle { vertex: 7 };
        assert!(e.to_string().contains("vertex 7"));
        let e = PipelineError::ChargeKeyCount { expected: 10, got: 9 };
        assert!(e.to_string().contains("expected 10, got 9"));
    }

    #[test]
    fn path_error_converts() {
        let e: PipelineError = crate::paths::PathError::CycleDetected(4).into();
        assert_eq!(e, PipelineError::ResidualCycle { vertex: 4 });
    }
}
