//! Concurrent fair admission under overload — satellite of the lf-serve
//! PR: multi-threaded submitters against the shared admission controller
//! and real worker shards, with one tenant flooding far past the shed
//! watermark.
//!
//! Asserts the full fairness story end-to-end on real threads:
//!
//! * the flooder (priority 0) is shed first and loses work;
//! * both polite tenants complete **every** job — zero shed;
//! * the `lf_batch_jobs_total{outcome}` counters reconcile exactly with
//!   the per-submitter response accounting (admitted − evicted = ok).

use lf_serve::admission::{Admission, QueuedJob};
use lf_serve::state::{JobState, JobTable};
use lf_serve::tenant::TenantTable;
use lf_serve::worker::{WorkerConfig, WorkerShard};
use lf_batch::clock::{Clock, MonotonicClock};
use lf_batch::SubmitError;
use lf_metrics::ValueSnapshot;
use lf_trace::TraceContext;
use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Default)]
struct TenantLedger {
    admitted: AtomicUsize,
    shed: AtomicUsize, // refused at the door + evicted after admission
}

fn counter_sum(family: &str, label: Option<&str>) -> u64 {
    let snap = lf_metrics::global().snapshot();
    snap.families
        .iter()
        .filter(|f| f.name == family)
        .flat_map(|f| &f.series)
        .filter(|s| label.is_none_or(|l| s.label.as_deref() == Some(l)))
        .map(|s| match &s.value {
            ValueSnapshot::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

#[test]
fn flooder_is_shed_first_and_counters_reconcile() {
    lf_metrics::enable();
    let base_ok = counter_sum("lf_batch_jobs_total", Some("ok"));

    let table = TenantTable::parse("alpha 1 2 32\nbeta 1 1 32\nflood 0 1 128\n").unwrap();
    // Watermark strictly above the polite tenants' maximum combined
    // backlog (30 + 20): even if the workers stall completely, only the
    // flooder (queue cap 128) can push the total over it.
    let adm = Arc::new(Mutex::new(Admission::new(table, 64)));
    let jobs = Arc::new(JobTable::default());
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock);
    let next_id = Arc::new(AtomicU64::new(1));
    let draining = Arc::new(AtomicBool::new(false));

    // Two worker shards, the server's loop shape (step until drained).
    let mut workers = Vec::new();
    for w in 0..2 {
        let adm = Arc::clone(&adm);
        let jobs = Arc::clone(&jobs);
        let clock = Arc::clone(&clock);
        let draining = Arc::clone(&draining);
        workers.push(std::thread::spawn(move || {
            let cfg = WorkerConfig {
                batch_jobs: 8,
                deadline: Duration::from_millis(5),
                ..WorkerConfig::default()
            };
            let mut shard = WorkerShard::new(w, &cfg, clock);
            loop {
                let drain = draining.load(Ordering::SeqCst);
                let done = shard.step(&adm, &jobs, drain);
                if done.is_empty() {
                    if drain && adm.lock().unwrap().total() == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }));
    }

    // Three submitter threads: two polite, one flooding.
    let ledgers: Arc<std::collections::BTreeMap<String, TenantLedger>> = Arc::new(
        ["alpha", "beta", "flood"]
            .into_iter()
            .map(|n| (n.to_string(), TenantLedger::default()))
            .collect(),
    );
    let evicted_total = Arc::new(AtomicUsize::new(0));
    let plan: [(&str, usize, u64); 3] = [("alpha", 30, 2000), ("beta", 20, 3000), ("flood", 300, 0)];
    let mut submitters = Vec::new();
    for (tenant, count, pace_us) in plan {
        let adm = Arc::clone(&adm);
        let jobs = Arc::clone(&jobs);
        let clock = Arc::clone(&clock);
        let next_id = Arc::clone(&next_id);
        let ledgers = Arc::clone(&ledgers);
        let evicted_total = Arc::clone(&evicted_total);
        submitters.push(std::thread::spawn(move || {
            let stencils = [&ANISO1, &ANISO2, &FIVE_POINT];
            for i in 0..count {
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                let side = 12 + i % 3;
                let graph = grid2d::<f64>(side, side, stencils[i % 3]);
                let job = QueuedJob {
                    id,
                    tenant: tenant.to_string(),
                    ctx: TraceContext::minted(id, tenant),
                    graph,
                    enqueued_at: clock.now(),
                };
                // Table record first — a worker may finish the job the
                // instant it is queued (same discipline as the server).
                jobs.admit(id, tenant, TraceContext::mint(id, tenant));
                let outcome = adm.lock().unwrap().submit(job);
                match outcome {
                    Ok(evicted) => {
                        ledgers[tenant].admitted.fetch_add(1, Ordering::Relaxed);
                        for e in evicted {
                            jobs.set_state(e.id, JobState::Shed);
                            evicted_total.fetch_add(1, Ordering::Relaxed);
                            ledgers[e.tenant.as_str()].shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(SubmitError::TenantQueueFull { .. } | SubmitError::Shedding { .. }) => {
                        jobs.set_state(id, JobState::Shed);
                        ledgers[tenant].shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
                if pace_us > 0 {
                    std::thread::sleep(Duration::from_micros(pace_us));
                }
            }
        }));
    }
    for s in submitters {
        s.join().expect("submitter completes");
    }
    draining.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().expect("worker drains and exits");
    }

    // Fairness: polite tenants complete everything, the flooder pays.
    let led = |n: &str| {
        (
            ledgers[n].admitted.load(Ordering::Relaxed),
            ledgers[n].shed.load(Ordering::Relaxed),
        )
    };
    let (alpha_adm, alpha_shed) = led("alpha");
    let (beta_adm, beta_shed) = led("beta");
    let (flood_adm, flood_shed) = led("flood");
    let evicted = evicted_total.load(Ordering::Relaxed);
    assert_eq!((alpha_adm, alpha_shed), (30, 0), "alpha must not be shed");
    assert_eq!((beta_adm, beta_shed), (20, 0), "beta must not be shed");
    assert!(flood_shed > 0, "the flooder must actually be shed");
    // Flood's ledger: every submission was admitted or refused; evictions
    // additionally shed already-admitted jobs.
    assert_eq!(flood_adm + flood_shed, 300 + evicted);

    // Every admitted-and-not-evicted job finished; nothing is stuck.
    assert_eq!(jobs.unfinished(), 0, "{:?}", jobs.counts());
    let done = jobs
        .counts()
        .iter()
        .find(|(t, _)| *t == "done")
        .map_or(0, |(_, c)| *c);
    let executed = alpha_adm + beta_adm + flood_adm - evicted;
    assert_eq!(done, executed, "{:?}", jobs.counts());

    // Metrics reconcile with the response-side ledger: every executed job
    // passed through a shard's ExtractionService exactly once, as ok.
    let ok_jobs = counter_sum("lf_batch_jobs_total", Some("ok")) - base_ok;
    assert_eq!(ok_jobs as usize, done, "lf_batch_jobs_total{{ok}} reconciles");
    let served = counter_sum("lf_serve_completed_total", None);
    assert_eq!(served as usize, done, "lf_serve_completed_total reconciles");
    assert_eq!(counter_sum("lf_serve_failed_total", None), 0);
}
