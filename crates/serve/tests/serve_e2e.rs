//! End-to-end loopback test of the HTTP server: POST a graph, poll the
//! job, fetch the forest, and check it is **bit-identical** to a direct
//! in-process extraction — the contract `SaltPolicy::Solo` exists for.
//! Also exercises tenants, /metrics, /healthz, the 404/405 paths, and a
//! clean drain via the stop handle.

use lf_batch::BatchConfig;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_serve::{to_raw_csr, DrainReport, ServeConfig, Server, StopHandle, TenantTable};
use lf_sparse::stencil::{grid2d, ANISO1};
use lf_sparse::Csr;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn spawn_server() -> (SocketAddr, StopHandle, std::thread::JoinHandle<DrainReport>) {
    lf_metrics::enable();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        tenants: TenantTable::parse("acme 2 2 32\nguest 1 1 8\n").unwrap(),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let stop = server.stop_handle();
    (addr, stop, std::thread::spawn(move || server.run()))
}

fn request_full(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).expect("write request");
    let _ = s.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let (status, _, body) = request_full(addr, raw);
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str, headers: &str, body: &[u8]) -> (u16, String) {
    let (status, _, body) = post_full(addr, path, headers, body);
    (status, body)
}

fn post_full(addr: SocketAddr, path: &str, headers: &str, body: &[u8]) -> (u16, String, String) {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{headers}\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    request_full(addr, &raw)
}

/// Pull a `"name":123` integer field out of a JSON string.
fn field_u64(json: &str, key: &str) -> u64 {
    json.split(key)
        .nth(1)
        .and_then(|r| r.split(&[',', '}'][..]).next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no {key} in {json:?}"))
}

fn job_id(body: &str) -> u64 {
    body.split("\"job\":")
        .nth(1)
        .and_then(|r| r.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {body:?}"))
}

fn poll_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (code, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert!(code == 200 || code == 202, "poll: {code} {body:?}");
        if body.contains("\"state\":\"done\"") {
            return body;
        }
        assert!(
            !body.contains("\"state\":\"failed\"") && !body.contains("\"state\":\"shed\""),
            "job {id} reached a bad terminal state: {body:?}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {body:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The exact permutation a one-shot run produces — what the served bytes
/// must equal (same default factor config as the worker shards).
fn direct_perm(a: &Csr<f64>) -> String {
    let dev = Device::default();
    let cfg = BatchConfig::default().factor;
    let (forest, _) = extract_linear_forest(&dev, &prepare_undirected(a), &cfg)
        .expect("direct extraction");
    let mut s = String::new();
    for v in &forest.perm {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

#[test]
fn post_poll_fetch_is_bit_identical_to_direct_extraction() {
    let (addr, stop, handle) = spawn_server();
    let a: Csr<f64> = grid2d(16, 16, &ANISO1);

    // Raw-CSR submission under a configured tenant (header routing).
    let (code, body) = post(addr, "/v1/forest", "X-Tenant: acme\r\n", to_raw_csr(&a).as_bytes());
    assert_eq!(code, 202, "{body:?}");
    assert!(body.contains("\"tenant\":\"acme\""), "{body:?}");
    assert!(body.contains("\"format\":\"rawcsr\""), "{body:?}");
    let id = job_id(&body);

    let done = poll_done(addr, id);
    assert!(done.contains("\"vertices\":256"), "{done:?}");

    let (code, served) = get(addr, &format!("/v1/jobs/{id}/forest"));
    assert_eq!(code, 200);
    assert_eq!(served, direct_perm(&a), "served forest must be bit-identical");

    // A MatrixMarket submission via query-string tenant routing completes
    // too (unknown tenant → the shared default queue, name preserved).
    let mm = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1.5\n2 3 2.5\n";
    let (code, body) = post(addr, "/v1/forest?tenant=walkin", "", mm.as_bytes());
    assert_eq!(code, 202, "{body:?}");
    assert!(body.contains("\"tenant\":\"walkin\""), "{body:?}");
    assert!(body.contains("\"format\":\"matrixmarket\""), "{body:?}");
    let id2 = job_id(&body);
    poll_done(addr, id2);

    // Routing edges.
    let (code, _) = get(addr, "/v1/jobs/999999");
    assert_eq!(code, 404);
    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, _) = request(addr, b"DELETE /v1/forest HTTP/1.1\r\n\r\n");
    assert_eq!(code, 405);
    let (code, _) = get(addr, "/nope");
    assert_eq!(code, 404);

    // Metrics exposition: request counters and per-tenant families are
    // live, and the per-shard occupancy gauges were published.
    let (code, prom) = get(addr, "/metrics");
    assert_eq!(code, 200);
    for needle in [
        "lf_serve_requests_total{route=\"forest\"}",
        "lf_serve_completed_total{tenant=\"acme\"}",
        "lf_serve_admission_wait_seconds",
        "lf_batch_pool_occupancy",
        "lf_batch_shard_cache_misses",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    // Clean drain via the stop handle: everything terminal, 0 abandoned.
    stop.stop();
    let report = handle.join().expect("server joins");
    assert!(report.completed >= 2, "{report:?}");
    assert_eq!(report.abandoned, 0, "{report:?}");
}

#[test]
fn inbound_trace_id_propagates_to_every_surface() {
    let (addr, stop, handle) = spawn_server();
    let a: Csr<f64> = grid2d(12, 12, &ANISO1);

    // Bare-hex inbound id: echoed in the response header, the 202 body,
    // the job-status JSON, and the timeline endpoint.
    let (code, head, body) = post_full(
        addr,
        "/v1/forest",
        "X-Tenant: acme\r\nX-Trace-Id: deadbeefcafe1234\r\n",
        to_raw_csr(&a).as_bytes(),
    );
    assert_eq!(code, 202, "{body:?}");
    assert!(head.contains("X-Trace-Id: deadbeefcafe1234"), "{head:?}");
    assert!(body.contains("\"trace_id\":\"deadbeefcafe1234\""), "{body:?}");
    let id = job_id(&body);
    let done = poll_done(addr, id);
    assert!(done.contains("\"trace_id\":\"deadbeefcafe1234\""), "{done:?}");

    // The timeline endpoint carries the id and reconciles exactly: stage
    // slices sum to the total, and latency = queue wait + total.
    let (code, head, tr) =
        request_full(addr, format!("GET /v1/jobs/{id}/trace HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    assert_eq!(code, 200, "{tr:?}");
    assert!(head.contains("X-Trace-Id: deadbeefcafe1234"), "{head:?}");
    assert!(tr.contains("\"trace_id\":\"deadbeefcafe1234\""), "{tr:?}");
    assert!(tr.contains("\"stage\":\"factor\""), "{tr:?}");
    let total = field_u64(&tr, "\"total_model_ns\":");
    let wait = field_u64(&tr, "\"queue_wait_ns\":");
    let latency = field_u64(&tr, "\"latency_ns\":");
    let stage_sum: u64 = tr
        .split("\"model_ns\":")
        .skip(1)
        .map(|r| field_u64(&format!("\"x\":{r}"), "\"x\":"))
        .sum();
    assert_eq!(stage_sum, total, "stage slices must sum exactly: {tr:?}");
    assert_eq!(wait + total, latency, "{tr:?}");

    // A W3C traceparent works too: the 128-bit trace-id field is kept,
    // truncated to its low 64 bits.
    let tp = "traceparent: 00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01\r\n";
    let (code, head, body) = post_full(addr, "/v1/forest?tenant=walkin", tp, to_raw_csr(&a).as_bytes());
    assert_eq!(code, 202, "{body:?}");
    assert!(head.contains("X-Trace-Id: fedcba9876543210"), "{head:?}");
    let id2 = job_id(&body);
    let done2 = poll_done(addr, id2);
    assert!(done2.contains("\"trace_id\":\"fedcba9876543210\""), "{done2:?}");

    // Without an inbound header the server mints a deterministic id from
    // (job id, tenant) — never the zero sentinel.
    let (code, body) = post(addr, "/v1/forest", "X-Tenant: acme\r\n", to_raw_csr(&a).as_bytes());
    assert_eq!(code, 202, "{body:?}");
    let id3 = job_id(&body);
    let minted = lf_trace::TraceContext::mint(id3, "acme");
    assert!(
        body.contains(&format!("\"trace_id\":\"{minted:016x}\"")),
        "minted id must be the deterministic FNV pair hash: {body:?}"
    );

    // Exemplars: the admission-wait families expose *some* trace id (the
    // exact id is racy across parallel tests sharing the global registry;
    // the CI e2e pins it in a single-job process).
    let (code, prom) = get(addr, "/metrics");
    assert_eq!(code, 200);
    for needle in [
        "lf_serve_admission_wait_outcome_seconds",
        "outcome=\"admitted\"",
        "trace_id=\"",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    stop.stop();
    let report = handle.join().expect("server joins");
    assert!(report.completed >= 3, "{report:?}");
    assert_eq!(report.abandoned, 0, "{report:?}");
}
