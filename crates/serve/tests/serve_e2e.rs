//! End-to-end loopback test of the HTTP server: POST a graph, poll the
//! job, fetch the forest, and check it is **bit-identical** to a direct
//! in-process extraction — the contract `SaltPolicy::Solo` exists for.
//! Also exercises tenants, /metrics, /healthz, the 404/405 paths, and a
//! clean drain via the stop handle.

use lf_batch::BatchConfig;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_serve::{to_raw_csr, DrainReport, ServeConfig, Server, StopHandle, TenantTable};
use lf_sparse::stencil::{grid2d, ANISO1};
use lf_sparse::Csr;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn spawn_server() -> (SocketAddr, StopHandle, std::thread::JoinHandle<DrainReport>) {
    lf_metrics::enable();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        tenants: TenantTable::parse("acme 2 2 32\nguest 1 1 8\n").unwrap(),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let stop = server.stop_handle();
    (addr, stop, std::thread::spawn(move || server.run()))
}

fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).expect("write request");
    let _ = s.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str, headers: &str, body: &[u8]) -> (u16, String) {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{headers}\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    request(addr, &raw)
}

fn job_id(body: &str) -> u64 {
    body.split("\"job\":")
        .nth(1)
        .and_then(|r| r.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {body:?}"))
}

fn poll_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (code, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert!(code == 200 || code == 202, "poll: {code} {body:?}");
        if body.contains("\"state\":\"done\"") {
            return body;
        }
        assert!(
            !body.contains("\"state\":\"failed\"") && !body.contains("\"state\":\"shed\""),
            "job {id} reached a bad terminal state: {body:?}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {body:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The exact permutation a one-shot run produces — what the served bytes
/// must equal (same default factor config as the worker shards).
fn direct_perm(a: &Csr<f64>) -> String {
    let dev = Device::default();
    let cfg = BatchConfig::default().factor;
    let (forest, _) = extract_linear_forest(&dev, &prepare_undirected(a), &cfg)
        .expect("direct extraction");
    let mut s = String::new();
    for v in &forest.perm {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

#[test]
fn post_poll_fetch_is_bit_identical_to_direct_extraction() {
    let (addr, stop, handle) = spawn_server();
    let a: Csr<f64> = grid2d(16, 16, &ANISO1);

    // Raw-CSR submission under a configured tenant (header routing).
    let (code, body) = post(addr, "/v1/forest", "X-Tenant: acme\r\n", to_raw_csr(&a).as_bytes());
    assert_eq!(code, 202, "{body:?}");
    assert!(body.contains("\"tenant\":\"acme\""), "{body:?}");
    assert!(body.contains("\"format\":\"rawcsr\""), "{body:?}");
    let id = job_id(&body);

    let done = poll_done(addr, id);
    assert!(done.contains("\"vertices\":256"), "{done:?}");

    let (code, served) = get(addr, &format!("/v1/jobs/{id}/forest"));
    assert_eq!(code, 200);
    assert_eq!(served, direct_perm(&a), "served forest must be bit-identical");

    // A MatrixMarket submission via query-string tenant routing completes
    // too (unknown tenant → the shared default queue, name preserved).
    let mm = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1.5\n2 3 2.5\n";
    let (code, body) = post(addr, "/v1/forest?tenant=walkin", "", mm.as_bytes());
    assert_eq!(code, 202, "{body:?}");
    assert!(body.contains("\"tenant\":\"walkin\""), "{body:?}");
    assert!(body.contains("\"format\":\"matrixmarket\""), "{body:?}");
    let id2 = job_id(&body);
    poll_done(addr, id2);

    // Routing edges.
    let (code, _) = get(addr, "/v1/jobs/999999");
    assert_eq!(code, 404);
    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, _) = request(addr, b"DELETE /v1/forest HTTP/1.1\r\n\r\n");
    assert_eq!(code, 405);
    let (code, _) = get(addr, "/nope");
    assert_eq!(code, 404);

    // Metrics exposition: request counters and per-tenant families are
    // live, and the per-shard occupancy gauges were published.
    let (code, prom) = get(addr, "/metrics");
    assert_eq!(code, 200);
    for needle in [
        "lf_serve_requests_total{route=\"forest\"}",
        "lf_serve_completed_total{tenant=\"acme\"}",
        "lf_serve_admission_wait_seconds",
        "lf_batch_pool_occupancy",
        "lf_batch_shard_cache_misses",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    // Clean drain via the stop handle: everything terminal, 0 abandoned.
    stop.stop();
    let report = handle.join().expect("server joins");
    assert!(report.completed >= 2, "{report:?}");
    assert_eq!(report.abandoned, 0, "{report:?}");
}
