//! Robustness of the HTTP body-parsing path against hostile payloads —
//! the serving analogue of the workspace's `mm_robustness` suite, and
//! built from the same corpus: a well-formed file plus byte-level
//! mutation, truncation, and garbage. Two layers:
//!
//! * [`lf_serve::parse_graph`] directly under proptest: any corruption is
//!   a one-line `Err`, never a panic;
//! * a real loopback server with short socket timeouts: every hostile
//!   request gets a typed 4xx response or a clean connection close,
//!   never a panicked worker or a hung connection.

use lf_serve::{parse_graph, to_raw_csr, ServeConfig, Server, StopHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The same well-formed MatrixMarket corpus `tests/mm_robustness.rs`
/// mutates (general coordinate, comments, negative weights).
const VALID_MM: &str = "%%MatrixMarket matrix coordinate real general\n\
                        % comment line\n\
                        4 4 6\n\
                        1 1 1.5\n\
                        2 1 -2.0\n\
                        2 3 0.5\n\
                        3 3 4.0\n\
                        4 2 1.25\n\
                        4 4 -0.75\n";

fn valid_raw_csr() -> String {
    let (g, _) = parse_graph(VALID_MM.as_bytes()).expect("corpus parses");
    to_raw_csr(&g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-byte corruption of the MatrixMarket corpus: accept or
    /// one-line reject, never panic.
    #[test]
    fn mm_single_byte_mutation_never_panics(
        idx in 0usize..VALID_MM.len(),
        byte in 0u8..=255u8,
    ) {
        let mut data = VALID_MM.as_bytes().to_vec();
        data[idx] = byte;
        if let Err(e) = parse_graph(&data) {
            prop_assert!(!e.contains('\n'), "multi-line error: {e:?}");
        }
    }

    /// Multi-byte corruption of the raw-CSR rendering of the same graph.
    #[test]
    fn raw_csr_mutation_never_panics(
        muts in proptest::collection::vec((0usize..64, 0u8..=255u8), 1..16)
    ) {
        let wire = valid_raw_csr();
        let mut data = wire.into_bytes();
        for (idx, byte) in muts {
            let i = idx % data.len();
            data[i] = byte;
        }
        if let Err(e) = parse_graph(&data) {
            prop_assert!(!e.contains('\n'), "multi-line error: {e:?}");
        }
    }

    /// Truncation at every offset, both formats.
    #[test]
    fn truncation_never_panics(len in 0usize..VALID_MM.len()) {
        let _ = parse_graph(&VALID_MM.as_bytes()[..len]);
        let wire = valid_raw_csr();
        let cut = len.min(wire.len());
        let _ = parse_graph(&wire.as_bytes()[..cut]);
    }

    /// Arbitrary bytes (including invalid UTF-8).
    #[test]
    fn random_garbage_never_panics(data in proptest::collection::vec(0u8..=255u8, 0..256)) {
        if let Err(e) = parse_graph(&data) {
            prop_assert!(!e.contains('\n'), "multi-line error: {e:?}");
        }
    }
}

#[test]
fn nan_and_inf_weights_are_rejected() {
    let nan = VALID_MM.replace("1.5", "NaN");
    assert!(parse_graph(nan.as_bytes()).is_err(), "NaN must be rejected");
    let inf = VALID_MM.replace("1.5", "inf");
    assert!(parse_graph(inf.as_bytes()).is_err(), "inf must be rejected");
}

// ---------------------------------------------------------------------
// Socket layer: a live loopback server with short timeouts.
// ---------------------------------------------------------------------

fn spawn_server() -> (SocketAddr, StopHandle, std::thread::JoinHandle<lf_serve::DrainReport>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_body: 64 * 1024,
        io_timeout: Duration::from_millis(300),
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run());
    (addr, stop, handle)
}

/// Send raw bytes, read whatever comes back until the server closes the
/// connection (or the client-side timeout trips). Returns the response
/// text — empty when the server dropped the connection without replying.
fn exchange(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(raw).expect("request write");
    let _ = s.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf); // timeout → partial read, not a hang
    String::from_utf8_lossy(&buf).into_owned()
}

fn post(body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST /v1/forest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

fn status_of(response: &str) -> Option<u16> {
    response
        .strip_prefix("HTTP/1.1 ")?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

#[test]
fn hostile_requests_get_typed_responses_never_hangs() {
    let (addr, stop, handle) = spawn_server();

    // Mutations of the valid corpus over a real socket: every exchange
    // completes with 202 (still parses) or 400 (rejected) — bounded time,
    // no hang, no panic.
    for i in (0..VALID_MM.len()).step_by(7) {
        let mut data = VALID_MM.as_bytes().to_vec();
        data[i] ^= 0xff;
        let resp = exchange(addr, &post(&data));
        let code = status_of(&resp).unwrap_or_else(|| panic!("no status line in {resp:?}"));
        assert!(
            code == 202 || code == 400,
            "mutation at byte {i}: unexpected status {code}: {resp:?}"
        );
        if code == 400 {
            assert!(resp.contains("{\"error\":\""), "typed error body: {resp:?}");
        }
    }

    // Truncations over the socket (with a matching Content-Length).
    for len in [0, 10, VALID_MM.len() / 2, VALID_MM.len() - 1] {
        let resp = exchange(addr, &post(&VALID_MM.as_bytes()[..len]));
        let code = status_of(&resp).expect("status line");
        assert!(code == 202 || code == 400, "truncation {len}: {code}");
    }

    // Garbage request head → 400 Malformed.
    let resp = exchange(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status_of(&resp), Some(400), "{resp:?}");

    // Declared body larger than the cap → 413 before the body is read.
    let resp = exchange(
        addr,
        b"POST /v1/forest HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(status_of(&resp), Some(413), "{resp:?}");
    assert!(resp.contains("exceeds"), "{resp:?}");

    // POST without Content-Length → 411.
    let resp = exchange(addr, b"POST /v1/forest HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&resp), Some(411), "{resp:?}");

    let report = finish(stop, handle);
    assert_eq!(report.abandoned, 0);
}

#[test]
fn truncated_body_times_out_and_frees_the_handler() {
    let (addr, stop, handle) = spawn_server();

    // Declare 100 bytes, send 10, keep the write side open: the server's
    // read timeout (300 ms) must trip, close the connection, and free the
    // handler — the client sees EOF well inside its own 5 s timeout.
    let t0 = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"POST /v1/forest HTTP/1.1\r\nContent-Length: 100\r\n\r\ncsr 2 2 0")
        .unwrap();
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "stalled-body connection was not torn down by the server timeout"
    );
    assert!(buf.is_empty(), "no response promised for a stalled body: {buf:?}");

    // The handler pool is healthy afterwards: a normal request round-trips.
    let resp = exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&resp), Some(200), "{resp:?}");
    assert!(resp.ends_with("ok\n"), "{resp:?}");

    let report = finish(stop, handle);
    assert_eq!(report.abandoned, 0);
}

fn finish(
    stop: StopHandle,
    handle: std::thread::JoinHandle<lf_serve::DrainReport>,
) -> lf_serve::DrainReport {
    stop.stop();
    handle.join().expect("server thread joins cleanly")
}
