//! The server-global job table: every submitted job's lifecycle, queryable
//! over `GET /v1/jobs/<id>` while the job is anywhere between admission
//! and its final outcome.

use lf_core::QualityReport;
use lf_trace::json::{escape, number};
use std::collections::HashMap;
use std::sync::Mutex;

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting in its tenant queue.
    Queued,
    /// Pulled by a worker shard; extraction in flight.
    Running,
    /// Finished successfully.
    Done {
        /// The forest's path-order permutation — the byte-comparison
        /// artifact: rendered one vertex per line, identical to
        /// `lf forest --perm`.
        perm: Vec<u32>,
        /// Quality statistics against the submitted matrix.
        quality: QualityReport,
        /// nnz of the prepared graph.
        nnz: usize,
        /// Whether preparation was served from the shard's CSR cache.
        cache_hit: bool,
    },
    /// Finished with a typed per-job error.
    Failed {
        /// Error kind tag (`pipeline`, `union`, `audit`, `internal`).
        kind: &'static str,
        /// One-line error message.
        message: String,
    },
    /// Evicted by overload shedding before reaching a worker.
    Shed,
}

impl JobState {
    /// Short state tag used in JSON and metrics labels.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Shed => "shed",
        }
    }
}

/// One job's record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Server-global job ID.
    pub id: u64,
    /// Submitting tenant (as named by the client).
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
}

impl JobRecord {
    /// Render for `GET /v1/jobs/<id>`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"state\":\"{}\"",
            self.id,
            escape(&self.tenant),
            self.state.tag()
        );
        match &self.state {
            JobState::Done {
                perm,
                quality,
                nnz,
                cache_hit,
            } => {
                s.push_str(&format!(
                    ",\"vertices\":{},\"nnz\":{nnz},\"cache_hit\":{cache_hit},\
                     \"num_paths\":{},\"coverage\":{},\"mean_path_len\":{}",
                    perm.len(),
                    quality.num_paths,
                    number(quality.coverage),
                    number(quality.mean_path_len),
                ));
            }
            JobState::Failed { kind, message } => {
                s.push_str(&format!(
                    ",\"error_kind\":\"{kind}\",\"error\":\"{}\"",
                    escape(message)
                ));
            }
            _ => {}
        }
        s.push('}');
        s
    }
}

/// Thread-shared map of all jobs the server has seen.
#[derive(Default)]
pub struct JobTable {
    inner: Mutex<HashMap<u64, JobRecord>>,
}

impl JobTable {
    /// Record a newly admitted job as queued.
    pub fn admit(&self, id: u64, tenant: &str) {
        self.inner.lock().unwrap().insert(
            id,
            JobRecord {
                id,
                tenant: tenant.to_string(),
                state: JobState::Queued,
            },
        );
    }

    /// Transition a job to `state` (no-op for unknown IDs).
    pub fn set_state(&self, id: u64, state: JobState) {
        if let Some(r) = self.inner.lock().unwrap().get_mut(&id) {
            r.state = state;
        }
    }

    /// A job's record, cloned.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.inner.lock().unwrap().get(&id).cloned()
    }

    /// Number of jobs not yet in a terminal state.
    pub fn unfinished(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .values()
            .filter(|r| matches!(r.state, JobState::Queued | JobState::Running))
            .count()
    }

    /// Count of jobs per final/current state tag, in tag-sorted order.
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        let mut m: HashMap<&'static str, usize> = HashMap::new();
        for r in self.inner.lock().unwrap().values() {
            *m.entry(r.state.tag()).or_insert(0) += 1;
        }
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_json() {
        let t = JobTable::default();
        t.admit(7, "acme \"inc\"");
        assert_eq!(t.unfinished(), 1);
        let j = t.get(7).unwrap().to_json();
        assert!(j.contains("\"state\":\"queued\""), "{j}");
        assert!(j.contains("\"tenant\":\"acme \\\"inc\\\"\""), "{j}");
        t.set_state(7, JobState::Running);
        assert_eq!(t.get(7).unwrap().state.tag(), "running");
        t.set_state(
            7,
            JobState::Failed {
                kind: "pipeline",
                message: "matrix is 3x4, not square".into(),
            },
        );
        assert_eq!(t.unfinished(), 0);
        let j = t.get(7).unwrap().to_json();
        assert!(j.contains("\"error_kind\":\"pipeline\""), "{j}");
        assert!(t.get(8).is_none());
        t.set_state(8, JobState::Shed); // unknown id: no-op, no panic
        assert_eq!(t.counts(), vec![("failed", 1)]);
    }
}
