//! The server-global job table: every submitted job's lifecycle, queryable
//! over `GET /v1/jobs/<id>` while the job is anywhere between admission
//! and its final outcome.
//!
//! The table is also where job-state transitions become observable: each
//! record carries the job's trace id, terminal records keep the
//! scheduler-assembled timeline JSON (served at `GET /v1/jobs/<id>/trace`),
//! and an attached [`AccessLog`] receives one identity-only JSONL line per
//! transition.

use crate::obs::AccessLog;
use lf_core::QualityReport;
use lf_trace::json::{escape, number};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting in its tenant queue.
    Queued,
    /// Pulled by a worker shard; extraction in flight.
    Running,
    /// Finished successfully.
    Done {
        /// The forest's path-order permutation — the byte-comparison
        /// artifact: rendered one vertex per line, identical to
        /// `lf forest --perm`.
        perm: Vec<u32>,
        /// Quality statistics against the submitted matrix.
        quality: QualityReport,
        /// nnz of the prepared graph.
        nnz: usize,
        /// Whether preparation was served from the shard's CSR cache.
        cache_hit: bool,
    },
    /// Finished with a typed per-job error.
    Failed {
        /// Error kind tag (`pipeline`, `union`, `audit`, `internal`).
        kind: &'static str,
        /// One-line error message.
        message: String,
    },
    /// Evicted by overload shedding before reaching a worker.
    Shed,
}

impl JobState {
    /// Short state tag used in JSON and metrics labels.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Shed => "shed",
        }
    }
}

/// One job's record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Server-global job ID.
    pub id: u64,
    /// Submitting tenant (as named by the client).
    pub tenant: String,
    /// Request-scoped correlation id (0 = uncorrelated).
    pub trace_id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// The scheduler-assembled lifecycle timeline as raw JSON, present
    /// once the job reached a worker's terminal transition.
    pub timeline: Option<String>,
}

impl JobRecord {
    /// The trace id as 16 hex digits (the wire form everywhere).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Render for `GET /v1/jobs/<id>`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"trace_id\":\"{}\",\"state\":\"{}\"",
            self.id,
            escape(&self.tenant),
            self.trace_hex(),
            self.state.tag()
        );
        match &self.state {
            JobState::Done {
                perm,
                quality,
                nnz,
                cache_hit,
            } => {
                s.push_str(&format!(
                    ",\"vertices\":{},\"nnz\":{nnz},\"cache_hit\":{cache_hit},\
                     \"num_paths\":{},\"coverage\":{},\"mean_path_len\":{}",
                    perm.len(),
                    quality.num_paths,
                    number(quality.coverage),
                    number(quality.mean_path_len),
                ));
            }
            JobState::Failed { kind, message } => {
                s.push_str(&format!(
                    ",\"error_kind\":\"{kind}\",\"error\":\"{}\"",
                    escape(message)
                ));
            }
            _ => {}
        }
        s.push('}');
        s
    }

    /// Render for `GET /v1/jobs/<id>/trace`: the correlation identity plus
    /// the embedded timeline (JSON `null` until the job reaches a worker's
    /// terminal state).
    pub fn trace_json(&self) -> String {
        format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"trace_id\":\"{}\",\"state\":\"{}\",\"timeline\":{}}}",
            self.id,
            escape(&self.tenant),
            self.trace_hex(),
            self.state.tag(),
            self.timeline.as_deref().unwrap_or("null")
        )
    }

    fn log_line(&self) -> String {
        format!(
            "{{\"event\":\"job\",\"job\":{},\"tenant\":\"{}\",\"trace_id\":\"{}\",\"state\":\"{}\"}}",
            self.id,
            escape(&self.tenant),
            self.trace_hex(),
            self.state.tag()
        )
    }
}

/// Thread-shared map of all jobs the server has seen.
#[derive(Default)]
pub struct JobTable {
    inner: Mutex<HashMap<u64, JobRecord>>,
    log: Mutex<Option<Arc<AccessLog>>>,
}

impl JobTable {
    /// Attach a JSONL lifecycle log: every subsequent state transition
    /// emits one identity-only line.
    pub fn attach_log(&self, log: Arc<AccessLog>) {
        *self.log.lock().unwrap() = Some(log);
    }

    fn emit(&self, line: Option<String>) {
        if let Some(line) = line {
            if let Some(log) = self.log.lock().unwrap().clone() {
                log.line(&line);
            }
        }
    }

    /// Record a newly admitted job as queued, under its correlation id.
    pub fn admit(&self, id: u64, tenant: &str, trace_id: u64) {
        let rec = JobRecord {
            id,
            tenant: tenant.to_string(),
            trace_id,
            state: JobState::Queued,
            timeline: None,
        };
        let line = rec.log_line();
        self.inner.lock().unwrap().insert(id, rec);
        self.emit(Some(line));
    }

    /// Transition a job to `state` (no-op for unknown IDs).
    pub fn set_state(&self, id: u64, state: JobState) {
        self.set_outcome(id, state, None);
    }

    /// Transition a job to `state`, attaching its assembled timeline JSON
    /// when the worker produced one (no-op for unknown IDs).
    pub fn set_outcome(&self, id: u64, state: JobState, timeline: Option<String>) {
        let line = {
            let mut inner = self.inner.lock().unwrap();
            match inner.get_mut(&id) {
                Some(r) => {
                    r.state = state;
                    if timeline.is_some() {
                        r.timeline = timeline;
                    }
                    Some(r.log_line())
                }
                None => None,
            }
        };
        self.emit(line);
    }

    /// A job's record, cloned.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.inner.lock().unwrap().get(&id).cloned()
    }

    /// Number of jobs not yet in a terminal state.
    pub fn unfinished(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .values()
            .filter(|r| matches!(r.state, JobState::Queued | JobState::Running))
            .count()
    }

    /// Count of jobs per final/current state tag, in tag-sorted order.
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        let mut m: HashMap<&'static str, usize> = HashMap::new();
        for r in self.inner.lock().unwrap().values() {
            *m.entry(r.state.tag()).or_insert(0) += 1;
        }
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lifecycle_and_json() {
        let t = JobTable::default();
        t.admit(7, "acme \"inc\"", 0xabc);
        assert_eq!(t.unfinished(), 1);
        let j = t.get(7).unwrap().to_json();
        assert!(j.contains("\"state\":\"queued\""), "{j}");
        assert!(j.contains("\"tenant\":\"acme \\\"inc\\\"\""), "{j}");
        assert!(j.contains("\"trace_id\":\"0000000000000abc\""), "{j}");
        t.set_state(7, JobState::Running);
        assert_eq!(t.get(7).unwrap().state.tag(), "running");
        t.set_state(
            7,
            JobState::Failed {
                kind: "pipeline",
                message: "matrix is 3x4, not square".into(),
            },
        );
        assert_eq!(t.unfinished(), 0);
        let j = t.get(7).unwrap().to_json();
        assert!(j.contains("\"error_kind\":\"pipeline\""), "{j}");
        assert!(t.get(8).is_none());
        t.set_state(8, JobState::Shed); // unknown id: no-op, no panic
        assert_eq!(t.counts(), vec![("failed", 1)]);
    }

    #[test]
    fn trace_json_carries_the_timeline_once_set() {
        let t = JobTable::default();
        t.admit(3, "acme", 0x77);
        let before = t.get(3).unwrap().trace_json();
        assert!(before.ends_with("\"timeline\":null}"), "{before}");
        t.set_outcome(3, JobState::Shed, None);
        assert!(t.get(3).unwrap().timeline.is_none());
        t.set_outcome(
            3,
            JobState::Failed {
                kind: "pipeline",
                message: "boom".into(),
            },
            Some("{\"queue_wait_ns\":5}".into()),
        );
        let after = t.get(3).unwrap().trace_json();
        assert!(after.contains("\"timeline\":{\"queue_wait_ns\":5}"), "{after}");
        lf_trace::json::validate(&after).unwrap_or_else(|e| panic!("{after}: {e}"));
    }

    #[test]
    fn attached_log_sees_every_transition_identity_only() {
        let buf = Buf::default();
        let t = JobTable::default();
        t.attach_log(Arc::new(AccessLog::new(Box::new(buf.clone()))));
        t.admit(1, "acme", 0x5);
        t.set_state(1, JobState::Running);
        t.set_state(1, JobState::Shed);
        t.set_state(99, JobState::Shed); // unknown: no line
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for (l, state) in lines.iter().zip(["queued", "running", "shed"]) {
            lf_trace::json::validate(l).unwrap_or_else(|e| panic!("{l}: {e}"));
            assert!(l.contains(&format!("\"state\":\"{state}\"")), "{l}");
            assert!(l.contains("\"trace_id\":\"0000000000000005\""), "{l}");
        }
    }
}
