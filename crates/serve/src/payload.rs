//! Request-body parsing: MatrixMarket or raw-CSR text → a validated
//! [`Csr<f64>`].
//!
//! Every failure is a typed one-line message the router turns into a 400;
//! nothing here panics on untrusted input. MatrixMarket goes through the
//! proptest-hardened `lf_sparse::mm` reader (typed `MmError` with 1-based
//! line numbers, non-finite values rejected). The raw-CSR path cannot use
//! [`Csr::from_raw`] directly — that constructor *asserts* its invariants
//! — so this module re-validates everything (lengths, monotone `row_ptr`,
//! column bounds, finite values) before handing the arrays over.
//!
//! Raw-CSR wire format (whitespace-separated ASCII, any line breaks):
//!
//! ```text
//! csr <nrows> <ncols> <nnz>
//! <row_ptr: nrows+1 integers>
//! <col_idx: nnz integers>
//! <vals:    nnz floats>
//! ```

use lf_sparse::{Csr, MmError};

/// Which wire format a successfully parsed body used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// A `%%MatrixMarket` coordinate file.
    MatrixMarket,
    /// The `csr …` raw format above.
    RawCsr,
}

impl PayloadKind {
    /// Stable tag for metrics and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            PayloadKind::MatrixMarket => "matrixmarket",
            PayloadKind::RawCsr => "rawcsr",
        }
    }
}

/// Parse a request body into a square, finite-weight graph.
///
/// # Errors
///
/// A one-line description of the first problem found: unrecognized
/// format, any `MmError`, raw-CSR structural violations, non-finite
/// values, or a non-square matrix.
pub fn parse_graph(body: &[u8]) -> Result<(Csr<f64>, PayloadKind), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8 text".to_string())?;
    let trimmed = text.trim_start();
    let (m, kind) = if trimmed.starts_with("%%MatrixMarket") {
        let coo = lf_sparse::mm::read_coo::<f64>(trimmed.as_bytes()).map_err(|e| match e {
            MmError::Io(e) => format!("MatrixMarket read: {e}"),
            e => e.to_string(),
        })?;
        let m = Csr::try_from_coo(coo).map_err(|e| e.to_string())?;
        (m, PayloadKind::MatrixMarket)
    } else if trimmed.starts_with("csr") {
        (parse_raw_csr(trimmed)?, PayloadKind::RawCsr)
    } else {
        return Err(
            "unrecognized payload: expected a '%%MatrixMarket' header or a 'csr <nrows> \
             <ncols> <nnz>' raw-CSR header"
                .to_string(),
        );
    };
    if m.nrows() != m.ncols() {
        return Err(format!(
            "matrix is {}x{}, not square",
            m.nrows(),
            m.ncols()
        ));
    }
    Ok((m, kind))
}

/// Hard cap on declared raw-CSR dimensions, so a tiny header cannot make
/// the parser attempt a huge allocation before the token count check.
const MAX_RAW_DIM: usize = 1 << 28;

fn parse_raw_csr(text: &str) -> Result<Csr<f64>, String> {
    let mut tok = text.split_ascii_whitespace();
    match tok.next() {
        Some("csr") => {}
        _ => return Err("raw CSR must start with the token 'csr'".to_string()),
    }
    let mut dim = |what: &str| -> Result<usize, String> {
        let t = tok
            .next()
            .ok_or_else(|| format!("raw CSR header truncated before {what}"))?;
        let v: usize = t
            .parse()
            .map_err(|_| format!("raw CSR {what}: bad integer {t:?}"))?;
        if v > MAX_RAW_DIM {
            return Err(format!("raw CSR {what} {v} exceeds the {MAX_RAW_DIM} cap"));
        }
        Ok(v)
    };
    let nrows = dim("nrows")?;
    let ncols = dim("ncols")?;
    let nnz = dim("nnz")?;

    // Token counts are known up front, so every shortfall is a typed
    // truncation error rather than a misaligned parse of the next array.
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for i in 0..=nrows {
        let t = tok
            .next()
            .ok_or_else(|| format!("raw CSR truncated: row_ptr has {i} of {} entries", nrows + 1))?;
        let v: usize = t
            .parse()
            .map_err(|_| format!("raw CSR row_ptr[{i}]: bad integer {t:?}"))?;
        row_ptr.push(v);
    }
    if row_ptr[0] != 0 {
        return Err(format!("raw CSR row_ptr[0] must be 0, got {}", row_ptr[0]));
    }
    if let Some(i) = (1..row_ptr.len()).find(|&i| row_ptr[i] < row_ptr[i - 1]) {
        return Err(format!(
            "raw CSR row_ptr not monotone at index {i}: {} < {}",
            row_ptr[i],
            row_ptr[i - 1]
        ));
    }
    if row_ptr[nrows] != nnz {
        return Err(format!(
            "raw CSR row_ptr[{nrows}] = {} disagrees with nnz = {nnz}",
            row_ptr[nrows]
        ));
    }

    let mut col_idx = Vec::with_capacity(nnz);
    for i in 0..nnz {
        let t = tok
            .next()
            .ok_or_else(|| format!("raw CSR truncated: col_idx has {i} of {nnz} entries"))?;
        let v: u32 = t
            .parse()
            .map_err(|_| format!("raw CSR col_idx[{i}]: bad integer {t:?}"))?;
        if (v as usize) >= ncols {
            return Err(format!(
                "raw CSR col_idx[{i}] = {v} out of bounds for {ncols} columns"
            ));
        }
        col_idx.push(v);
    }

    let mut vals = Vec::with_capacity(nnz);
    for i in 0..nnz {
        let t = tok
            .next()
            .ok_or_else(|| format!("raw CSR truncated: vals has {i} of {nnz} entries"))?;
        let v: f64 = t
            .parse()
            .map_err(|_| format!("raw CSR vals[{i}]: bad float {t:?}"))?;
        if !v.is_finite() {
            return Err(format!("raw CSR vals[{i}] = {v} is not finite"));
        }
        vals.push(v);
    }
    if let Some(extra) = tok.next() {
        return Err(format!(
            "raw CSR has trailing data after {nnz} values (first extra token {extra:?})"
        ));
    }

    // Every from_raw assertion re-checked above; this cannot panic.
    Ok(Csr::from_raw(nrows, ncols, row_ptr, col_idx, vals))
}

/// Render a graph in the raw-CSR wire format (the inverse of
/// [`parse_graph`]'s `csr` branch; tests and the walkthrough use it).
pub fn to_raw_csr(m: &Csr<f64>) -> String {
    use std::fmt::Write as _;
    let mut s = format!("csr {} {} {}\n", m.nrows(), m.ncols(), m.nnz());
    for (i, p) in m.row_ptr().iter().enumerate() {
        s.push_str(if i == 0 { "" } else { " " });
        let _ = write!(s, "{p}");
    }
    s.push('\n');
    for (i, c) in m.col_idx().iter().enumerate() {
        s.push_str(if i == 0 { "" } else { " " });
        let _ = write!(s, "{c}");
    }
    s.push('\n');
    for (i, v) in m.vals().iter().enumerate() {
        s.push_str(if i == 0 { "" } else { " " });
        let _ = write!(s, "{v}");
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Coo;

    const MM: &str = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1.5\n2 3 2.5\n";

    fn graph() -> Csr<f64> {
        let mut coo = Coo::<f64>::new(3, 3);
        coo.push_sym(0, 1, 1.5);
        coo.push_sym(1, 2, 2.5);
        Csr::from_coo(coo)
    }

    #[test]
    fn parses_matrixmarket() {
        let (m, kind) = parse_graph(MM.as_bytes()).unwrap();
        assert_eq!(kind, PayloadKind::MatrixMarket);
        assert_eq!((m.nrows(), m.nnz()), (3, 4));
    }

    #[test]
    fn raw_csr_roundtrips() {
        let g = graph();
        let wire = to_raw_csr(&g);
        let (m, kind) = parse_graph(wire.as_bytes()).unwrap();
        assert_eq!(kind, PayloadKind::RawCsr);
        assert_eq!(m.row_ptr(), g.row_ptr());
        assert_eq!(m.col_idx(), g.col_idx());
        assert_eq!(m.vals(), g.vals());
    }

    #[test]
    fn every_raw_csr_violation_is_a_typed_line() {
        let cases: &[(&str, &str)] = &[
            ("garbage", "unrecognized payload"),
            ("csr 2 2", "truncated before nnz"),
            ("csr 2 2 1\n0 1", "row_ptr has 2 of 3"),
            ("csr 2 2 1\n0 x 1\n0\n1.0", "bad integer"),
            ("csr 2 2 1\n1 1 1\n0\n1.0", "row_ptr[0] must be 0"),
            ("csr 2 2 2\n0 2 1\n0 1\n1.0 2.0", "not monotone"),
            ("csr 2 2 3\n0 1 2\n0 1\n1.0 2.0", "disagrees with nnz"),
            ("csr 2 2 1\n0 1 1\n5\n1.0", "out of bounds"),
            ("csr 2 2 1\n0 1 1\n0\nNaN", "not finite"),
            ("csr 2 2 1\n0 1 1\n0\ninf", "not finite"),
            ("csr 2 2 1\n0 1 1\n0\nbanana", "bad float"),
            ("csr 2 2 1\n0 1 1\n0\n1.0 9.9", "trailing data"),
            ("csr 2 3 0\n0 0 0\n\n", "not square"),
            ("csr 999999999999 2 1", "exceeds"),
        ];
        for (body, want) in cases {
            let e = parse_graph(body.as_bytes()).expect_err(body);
            assert!(e.contains(want), "{body:?}: {e:?} lacks {want:?}");
            assert!(!e.contains('\n'), "one-line error: {e:?}");
        }
    }

    #[test]
    fn mm_errors_carry_line_numbers() {
        let e = parse_graph(b"%%MatrixMarket matrix coordinate real general\n2 2 1\nbad line\n")
            .unwrap_err();
        assert!(e.contains("line"), "{e}");
        let e = parse_graph(b"\xff\xfe").unwrap_err();
        assert!(e.contains("UTF-8"), "{e}");
    }
}
