//! Deterministic closed-loop load simulation for `repro serve`.
//!
//! The real server is wall-clock multi-threaded; a benchmark on it would
//! never be bit-stable. This simulation drives the *identical* admission
//! controller and worker-shard code single-threaded under a
//! [`ModelClock`], with job cost taken from the device's deterministic
//! model time — so `repro serve` reproduces byte-for-byte on any machine,
//! like every other `BENCH_*.json`.
//!
//! The built-in scenario has two phases: a sustained phase where two
//! well-behaved tenants submit at steady rates, then an overload phase
//! where a low-priority flooder submits far past the shed watermark. The
//! headline invariant — checked by [`SimReport::fairness_holds`] and a
//! unit test — is that overload shedding lands **only** on the flooder:
//! zero non-flooder jobs are shed or refused.

use crate::admission::{Admission, QueuedJob};
use crate::state::{JobState, JobTable};
use crate::tenant::TenantTable;
use crate::worker::{WorkerConfig, WorkerShard};
use lf_batch::clock::Clock;
use lf_batch::{ModelClock, SubmitError};
use lf_trace::TraceContext;
use lf_sparse::stencil::{self, Stencil3x3};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// One simulated tenant's traffic model.
#[derive(Clone, Debug)]
pub struct SimTenant {
    /// Tenant name (also its queue, all sim tenants are configured).
    pub name: String,
    /// Admission priority class (higher sheds later).
    pub priority: u8,
    /// DRR weight.
    pub weight: u32,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Model time between submissions, in nanoseconds.
    pub period_ns: u64,
    /// Model time of the first submission, in nanoseconds.
    pub start_ns: u64,
    /// Total jobs this tenant submits.
    pub jobs: usize,
    /// Stencil grid side; graphs rotate over the three stencils.
    pub grid: usize,
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Worker shards (stepped round-robin, single-threaded).
    pub workers: usize,
    /// Per-shard batching/execution parameters.
    pub worker: WorkerConfig,
    /// Overload shed watermark (total queued jobs).
    pub shed_watermark: usize,
    /// The tenant population.
    pub tenants: Vec<SimTenant>,
}

impl SimConfig {
    /// The standard `repro serve` scenario: two polite priority-1 tenants
    /// for the whole run, plus a priority-0 flooder that floods an order
    /// of magnitude past the watermark partway through.
    pub fn overload_scenario() -> Self {
        let ms = 1_000_000u64;
        Self {
            workers: 2,
            worker: WorkerConfig {
                batch_jobs: 8,
                deadline: Duration::from_millis(5),
                ..WorkerConfig::default()
            },
            shed_watermark: 24,
            tenants: vec![
                SimTenant {
                    name: "alpha".into(),
                    priority: 1,
                    weight: 2,
                    queue_capacity: 64,
                    period_ns: 2 * ms,
                    start_ns: 0,
                    jobs: 60,
                    grid: 24,
                },
                SimTenant {
                    name: "beta".into(),
                    priority: 1,
                    weight: 1,
                    queue_capacity: 64,
                    period_ns: 3 * ms,
                    start_ns: ms,
                    jobs: 40,
                    grid: 20,
                },
                SimTenant {
                    name: "flood".into(),
                    priority: 0,
                    weight: 1,
                    queue_capacity: 256,
                    period_ns: ms / 50,
                    start_ns: 40 * ms,
                    jobs: 300,
                    grid: 16,
                },
            ],
        }
    }

    fn table(&self) -> TenantTable {
        let mut text = String::new();
        for t in &self.tenants {
            text.push_str(&format!(
                "{} {} {} {}\n",
                t.name, t.priority, t.weight, t.queue_capacity
            ));
        }
        TenantTable::parse(&text).expect("sim tenant specs are well-formed")
    }
}

/// Per-tenant outcome counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantOutcome {
    /// Jobs the tenant attempted to submit.
    pub submitted: usize,
    /// Jobs extracted successfully.
    pub completed: usize,
    /// Jobs that failed in the pipeline.
    pub failed: usize,
    /// Jobs shed: refused at the door or evicted after admission.
    pub shed: usize,
    /// Sum of completed-job latencies, model nanoseconds.
    pub latency_sum_ns: u64,
    /// Max completed-job latency, model nanoseconds.
    pub latency_max_ns: u64,
}

/// What one simulation run produced.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-tenant outcomes, in name order.
    pub tenants: BTreeMap<String, TenantOutcome>,
    /// Names of flooding (priority-0) tenants in the scenario.
    pub flooders: Vec<String>,
    /// Total model time elapsed, nanoseconds.
    pub model_ns: u64,
    /// Completed jobs per model second.
    pub throughput: f64,
    /// Worker shards used.
    pub workers: usize,
    /// Shed watermark used.
    pub shed_watermark: usize,
}

impl SimReport {
    /// True iff every shed job belonged to a flooding (priority-0)
    /// tenant — the fairness invariant `repro serve` gates on.
    pub fn fairness_holds(&self) -> bool {
        self.tenants
            .iter()
            .filter(|(name, _)| !self.flooders.contains(name))
            .all(|(_, o)| o.shed == 0)
    }

    /// Render the `BENCH_serve.json` body (everything but the manifest).
    pub fn to_json(&self) -> String {
        use lf_trace::json::{escape, number};
        let mut s = String::from("{\n  \"tenants\": {\n");
        let last = self.tenants.len().saturating_sub(1);
        for (i, (name, o)) in self.tenants.iter().enumerate() {
            let mean_ms = if o.completed > 0 {
                o.latency_sum_ns as f64 / o.completed as f64 / 1e6
            } else {
                0.0
            };
            s.push_str(&format!(
                "    \"{}\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \
                 \"shed\": {}, \"latency_mean_ms\": {}, \"latency_max_ms\": {}}}{}\n",
                escape(name),
                o.submitted,
                o.completed,
                o.failed,
                o.shed,
                number(mean_ms),
                number(o.latency_max_ns as f64 / 1e6),
                if i == last { "" } else { "," }
            ));
        }
        s.push_str(&format!(
            "  }},\n  \"model_time_s\": {},\n  \"throughput_jobs_per_s\": {},\n  \
             \"workers\": {},\n  \"shed_watermark\": {},\n  \"fairness_holds\": {}\n}}",
            number(self.model_ns as f64 / 1e9),
            number(self.throughput),
            self.workers,
            self.shed_watermark,
            self.fairness_holds()
        ));
        s
    }
}

const STENCILS: [&Stencil3x3; 3] = [&stencil::ANISO1, &stencil::ANISO2, &stencil::FIVE_POINT];

/// Run the closed-loop simulation to completion (all submissions made,
/// all queues drained, every job in a terminal state).
pub fn run(cfg: &SimConfig) -> SimReport {
    let clock = ModelClock::shared();
    let adm = Mutex::new(Admission::new(cfg.table(), cfg.shed_watermark));
    let jobs = JobTable::default();
    let mut shards: Vec<WorkerShard> = (0..cfg.workers.max(1))
        .map(|i| WorkerShard::new(i, &cfg.worker, clock.clone()))
        .collect();
    let mut prev_cost_s = vec![0.0f64; shards.len()];

    let mut outcomes: BTreeMap<String, TenantOutcome> = cfg
        .tenants
        .iter()
        .map(|t| (t.name.clone(), TenantOutcome::default()))
        .collect();
    let mut next_submit: Vec<u64> = cfg.tenants.iter().map(|t| t.start_ns).collect();
    let mut sent: Vec<usize> = vec![0; cfg.tenants.len()];
    let mut enqueue_ns: HashMap<u64, u64> = HashMap::new();
    let mut job_tenant: HashMap<u64, String> = HashMap::new();
    let mut next_id = 1u64;
    let deadline_ns = cfg.worker.deadline.as_nanos() as u64;

    loop {
        let now_ns = clock.elapsed_ns();

        // Submissions due at this model instant, in tenant order.
        for (ti, t) in cfg.tenants.iter().enumerate() {
            while sent[ti] < t.jobs && next_submit[ti] <= now_ns {
                sent[ti] += 1;
                next_submit[ti] += t.period_ns;
                let o = outcomes.get_mut(&t.name).expect("known tenant");
                o.submitted += 1;
                let id = next_id;
                next_id += 1;
                let side = t.grid + (sent[ti] % 3); // rotate sizes: exercises the CSR cache without rand
                let graph = stencil::grid2d::<f64>(side, side, STENCILS[sent[ti] % 3]);
                let ctx = TraceContext::minted(id, t.name.as_str());
                let trace = ctx.trace_id;
                let job = QueuedJob {
                    id,
                    tenant: t.name.clone(),
                    ctx,
                    graph,
                    enqueued_at: clock.now(),
                };
                match adm.lock().unwrap().submit(job) {
                    Ok(evicted) => {
                        jobs.admit(id, &t.name, trace);
                        enqueue_ns.insert(id, now_ns);
                        job_tenant.insert(id, t.name.clone());
                        for e in evicted {
                            jobs.set_state(e.id, JobState::Shed);
                            enqueue_ns.remove(&e.id);
                            job_tenant.remove(&e.id);
                            outcomes
                                .get_mut(&e.tenant)
                                .expect("known tenant")
                                .shed += 1;
                            crate::obs::shed_event(e.id, &e.tenant, "evicted", e.ctx.trace_id);
                        }
                    }
                    Err(SubmitError::TenantQueueFull { .. } | SubmitError::Shedding { .. }) => {
                        outcomes.get_mut(&t.name).expect("known tenant").shed += 1;
                        crate::obs::shed_event(id, &t.name, "refused", trace);
                    }
                    Err(e) => unreachable!("admission never returns {e}"),
                }
            }
        }

        let all_sent = sent
            .iter()
            .zip(&cfg.tenants)
            .all(|(&s, t)| s >= t.jobs);
        // Once the last submission is in, drain: partial batches close
        // immediately, exactly like the server's SIGTERM path.
        let draining = all_sent;

        let mut progressed = false;
        for (i, shard) in shards.iter_mut().enumerate() {
            let done = shard.step(&adm, &jobs, draining);
            if done.is_empty() {
                continue;
            }
            progressed = true;
            // Charge the batch's deterministic device cost to the clock.
            let total_s = shard.model_time_s();
            let cost_s = total_s - prev_cost_s[i];
            prev_cost_s[i] = total_s;
            clock.advance_ns((cost_s * 1e9).round() as u64);
            let done_ns = clock.elapsed_ns();
            for o in done {
                let tenant = job_tenant.remove(&o.id).expect("tracked job");
                let started = enqueue_ns.remove(&o.id).expect("tracked job");
                let out = outcomes.get_mut(&tenant).expect("known tenant");
                if o.ok {
                    out.completed += 1;
                    let lat = done_ns.saturating_sub(started);
                    out.latency_sum_ns += lat;
                    out.latency_max_ns = out.latency_max_ns.max(lat);
                } else {
                    out.failed += 1;
                }
            }
        }
        if progressed {
            continue;
        }

        if all_sent && adm.lock().unwrap().total() == 0 {
            break;
        }

        // Stalled: jump model time to the next event — the next scheduled
        // submission or the oldest queued job's deadline expiry.
        let next_sub = next_submit
            .iter()
            .zip(&cfg.tenants)
            .zip(&sent)
            .filter(|((_, t), &s)| s < t.jobs)
            .map(|((&ns, _), _)| ns)
            .min();
        let next_deadline = {
            let a = adm.lock().unwrap();
            if a.total() > 0 {
                let waited = a.oldest(clock.now()).as_nanos() as u64;
                Some(now_ns + deadline_ns.saturating_sub(waited))
            } else {
                None
            }
        };
        let wake = [next_sub, next_deadline]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(now_ns);
        // Floor of 1µs guarantees progress even at a deadline boundary.
        clock.advance_ns(wake.saturating_sub(now_ns).max(1_000));
    }

    let model_ns = clock.elapsed_ns();
    let completed: usize = outcomes.values().map(|o| o.completed).sum();
    let throughput = if model_ns > 0 {
        completed as f64 / (model_ns as f64 / 1e9)
    } else {
        0.0
    };
    SimReport {
        tenants: outcomes,
        flooders: cfg
            .tenants
            .iter()
            .filter(|t| t.priority == 0)
            .map(|t| t.name.clone())
            .collect(),
        model_ns,
        throughput,
        workers: cfg.workers.max(1),
        shed_watermark: cfg.shed_watermark,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_scenario_sheds_only_the_flooder() {
        let report = run(&SimConfig::overload_scenario());
        let alpha = report.tenants["alpha"];
        let beta = report.tenants["beta"];
        let flood = report.tenants["flood"];
        assert_eq!(alpha.completed, 60, "{alpha:?}");
        assert_eq!(beta.completed, 40, "{beta:?}");
        assert_eq!(alpha.shed + beta.shed, 0);
        assert!(flood.shed > 0, "the flooder must actually overload: {flood:?}");
        assert_eq!(flood.completed + flood.shed, 300, "{flood:?}");
        assert!(report.fairness_holds());
        assert_eq!(alpha.failed + beta.failed + flood.failed, 0);
        assert!(report.model_ns > 0 && report.throughput > 0.0);
    }

    #[test]
    fn simulation_is_bit_stable() {
        let a = run(&SimConfig::overload_scenario()).to_json();
        let b = run(&SimConfig::overload_scenario()).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"fairness_holds\": true"), "{a}");
    }
}
