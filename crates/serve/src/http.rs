//! A minimal HTTP/1.1 request/response layer over blocking streams.
//!
//! The offline container cannot reach crates.io, so the protocol is
//! hand-rolled the same way lf-trace hand-rolls Chrome Trace JSON: the
//! subset the service needs, written carefully, nothing more. One request
//! per connection (`Connection: close` semantics), request bodies bounded
//! by an explicit `Content-Length` cap, and every malformed input mapped
//! to a typed one-line error the router turns into a 400/411/413 — never
//! a panic, never an unbounded read.
//!
//! The reader is generic over [`Read`] so the parser is unit- and
//! proptest-testable without sockets; the server hands it `TcpStream`s
//! with read/write timeouts already set, so a stalled or truncated peer
//! surfaces as an I/O error rather than a hung connection.

use std::collections::HashMap;
use std::io::{Read, Write};

/// Hard cap on the request head (request line + headers), independent of
/// the configurable body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component, percent-decoding deliberately not applied (the
    /// routes this server exposes are plain ASCII).
    pub path: String,
    /// Query-string key/value pairs (`?tenant=a&x=y`), later keys win.
    pub query: HashMap<String, String>,
    /// Header fields, names lowercased.
    pub headers: HashMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }
}

/// Why a request could not be read. The router maps each variant to one
/// response status; the `Display` text is the one-line error body.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request head or body framing → 400.
    Malformed(String),
    /// A body-bearing request without `Content-Length` → 411.
    LengthRequired,
    /// Declared `Content-Length` exceeds the configured cap → 413. The
    /// body is never read, so an oversized upload costs nothing.
    TooLarge {
        /// Declared body length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The peer closed or stalled mid-request (read timeout) → drop the
    /// connection without a response.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request from `r`, reading the body only when a valid
/// `Content-Length` within `max_body` is declared.
///
/// # Errors
///
/// See [`HttpError`]; `Malformed` covers every syntax violation
/// (non-UTF-8 head, missing tokens, bad header syntax, bad
/// `Content-Length`), and I/O errors — including read timeouts from a
/// stalled peer — surface as `Io`.
pub fn read_request(r: &mut impl Read) -> Result<Request, HttpError> {
    read_request_capped(r, usize::MAX)
}

/// [`read_request`] with an explicit body cap.
///
/// # Errors
///
/// See [`read_request`].
pub fn read_request_capped(r: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    // Read byte-at-a-time until the blank line. The head is tiny (capped)
    // and the body must not be consumed past its Content-Length, so this
    // beats a BufReader whose lookahead would swallow body bytes.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !(head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n")) {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        match r.read(&mut byte)? {
            0 => {
                return Err(HttpError::Malformed(
                    "connection closed before end of headers".into(),
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n')).filter(|l| !l.is_empty());
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("expected HTTP/1.x version".into())),
    }
    let (path, query) = parse_target(target);

    let mut headers = HashMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let mut body = Vec::new();
    if let Some(cl) = headers.get("content-length") {
        let declared: usize = cl
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {cl:?}")))?;
        if declared > max_body {
            return Err(HttpError::TooLarge {
                declared,
                limit: max_body,
            });
        }
        body.resize(declared, 0);
        r.read_exact(&mut body)?;
    } else if method == "POST" || method == "PUT" {
        return Err(HttpError::LengthRequired);
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn parse_target(target: &str) -> (String, HashMap<String, String>) {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    (path.to_string(), query)
}

/// Standard reason phrase for the handful of statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response (status line, minimal headers, body) and
/// flush. `Connection: close` is always sent — the server handles one
/// request per connection.
///
/// # Errors
///
/// Propagates any write/flush error (including write timeouts).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(w, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (the server uses this to
/// echo `X-Trace-Id` on every job-correlated response, refusals included).
///
/// # Errors
///
/// Propagates any write/flush error (including write timeouts).
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"Connection: close\r\n\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// [`write_response`] for the JSON error shape every failure path uses:
/// `{"error":"<one line>"}`.
///
/// # Errors
///
/// Propagates any write/flush error.
pub fn write_error(w: &mut impl Write, status: u16, msg: &str) -> std::io::Result<()> {
    write_error_with(w, status, msg, &[])
}

/// [`write_error`] with extra response headers.
///
/// # Errors
///
/// Propagates any write/flush error.
pub fn write_error_with(
    w: &mut impl Write,
    status: u16,
    msg: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let one_line = msg.replace('\n', " ");
    let body = format!("{{\"error\":\"{}\"}}\n", lf_trace::json::escape(&one_line));
    write_response_with(w, status, "application/json", extra_headers, body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request_capped(&mut &bytes[..], 1024)
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let r = req(b"GET /v1/jobs/7?tenant=acme&x HTTP/1.1\r\nHost: h\r\nX-Tenant: acme\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/jobs/7");
        assert_eq!(r.query.get("tenant").map(String::as_str), Some("acme"));
        assert_eq!(r.query.get("x").map(String::as_str), Some(""));
        assert_eq!(r.header("x-tenant"), Some("acme"));
        assert_eq!(r.header("X-TENANT"), Some("acme"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_exactly_content_length() {
        let r = req(b"POST /v1/forest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhellotrailing").unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn post_without_length_is_411() {
        assert!(matches!(
            req(b"POST /v1/forest HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let e = req(b"POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        match e {
            Err(HttpError::TooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (4096, 1024));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        for bad in [
            b"\r\n\r\n".as_slice(),
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x SMTP/1.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -2\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            match req(bad) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{:?} must be Malformed, got {other:?}", bad),
            }
        }
    }

    #[test]
    fn truncated_head_and_body_fail_typed() {
        assert!(matches!(
            req(b"GET /x HTTP/1.1\r\nHost:"),
            Err(HttpError::Malformed(_))
        ));
        // Declared 10 bytes, supplied 3: read_exact reports an I/O error.
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn unbounded_head_is_rejected() {
        let mut giant = Vec::from(&b"GET /x HTTP/1.1\r\n"[..]);
        giant.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(req(&giant), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"hi\n").unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 3\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nhi\n"), "{s}");
        let mut traced = Vec::new();
        write_response_with(
            &mut traced,
            202,
            "application/json",
            &[("X-Trace-Id", "deadbeefcafe1234")],
            b"{}\n",
        )
        .unwrap();
        let s = String::from_utf8(traced).unwrap();
        assert!(s.contains("X-Trace-Id: deadbeefcafe1234\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n\r\n{}\n"), "{s}");
        let mut err = Vec::new();
        write_error(&mut err, 400, "bad \"thing\"\nsecond line").unwrap();
        let s = String::from_utf8(err).unwrap();
        assert!(s.contains("{\"error\":\"bad \\\"thing\\\" second line\"}"), "{s}");
    }

    #[test]
    fn lf_only_line_endings_accepted() {
        let r = req(b"GET /healthz HTTP/1.1\nHost: h\n\n").unwrap();
        assert_eq!(r.path, "/healthz");
    }
}
