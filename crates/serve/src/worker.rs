//! Worker shards: each owns a `Device` and an `ExtractionService` (with
//! its own `WorkspacePool` and `CsrCache`), pulls fair batches from the
//! shared admission controller, executes them, and publishes results and
//! per-shard occupancy gauges.
//!
//! A shard never holds the admission lock while extracting — it pulls a
//! batch under the lock, releases it, and runs the batch on its private
//! service. The service runs under [`lf_batch::SaltPolicy::Solo`], so a
//! served forest is bit-identical to a one-shot `lf forest` run on the
//! same input (see the salt-policy docs for the argument).

use crate::admission::Admission;
use crate::obs;
use crate::state::{JobState, JobTable};
use lf_batch::clock::Clock;
use lf_batch::{BatchConfig, ExtractionService, JobError, SaltPolicy};
use lf_kernel::{backend, BackendKind, Device, DeviceConfig};
use lf_trace::{TraceSink, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration one worker shard needs (a slice of the server config).
#[derive(Clone)]
pub struct WorkerConfig {
    /// Jobs per pulled batch (also the shard service's queue/batch cap).
    pub batch_jobs: usize,
    /// Deadline-aware close: pull even a partial batch once the oldest
    /// queued job has waited this long.
    pub deadline: Duration,
    /// Audit every result with lf-check stage audits.
    pub check: bool,
    /// Execution backend for the shard's device.
    pub backend: BackendKind,
    /// Whether the peephole kernel-fusion pass is enabled.
    pub fuse: bool,
    /// Idle workspaces retained by the shard's pool.
    pub pool_capacity: usize,
    /// Prepared graphs retained by the shard's LRU cache.
    pub cache_capacity: usize,
    /// Span sink every shard's device tracer records into; each shard
    /// claims a disjoint span-id range so merged recordings stay unique.
    /// `None` leaves device tracing off (the default).
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for WorkerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerConfig")
            .field("batch_jobs", &self.batch_jobs)
            .field("deadline", &self.deadline)
            .field("check", &self.check)
            .field("backend", &self.backend)
            .field("fuse", &self.fuse)
            .field("pool_capacity", &self.pool_capacity)
            .field("cache_capacity", &self.cache_capacity)
            .field("trace_sink", &self.trace_sink.is_some())
            .finish()
    }
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            batch_jobs: 8,
            deadline: Duration::from_millis(20),
            check: false,
            backend: BackendKind::Model,
            fuse: true,
            pool_capacity: 2,
            cache_capacity: 32,
            trace_sink: None,
        }
    }
}

/// The outcome a single step reports per finished job (the sim's latency
/// accounting and the tests consume these; the HTTP path reads the job
/// table instead).
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Server-global job ID.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Whether the job succeeded.
    pub ok: bool,
}

/// One worker shard.
pub struct WorkerShard {
    /// Shard index (label value in per-shard metric families).
    pub id: usize,
    label: String,
    dev: Device,
    svc: ExtractionService,
    clock: Arc<dyn Clock>,
}

impl WorkerShard {
    /// Build shard `id` with its own device and extraction service, both
    /// clocked by `clock`.
    ///
    /// # Panics
    ///
    /// Never in practice: the service constructor only rejects
    /// `factor.n != 2`, and the config built here always uses the [0,2]
    /// default.
    pub fn new(id: usize, cfg: &WorkerConfig, clock: Arc<dyn Clock>) -> Self {
        let tracer = Tracer::new();
        if let Some(sink) = &cfg.trace_sink {
            // Disjoint per-shard span-id ranges keep ids unique when all
            // shards record into one shared sink.
            tracer.install_from(Arc::clone(sink), (id as u64 + 1) << 40);
        }
        let dev =
            Device::with_backend_tracer(DeviceConfig::default(), backend::make(cfg.backend), tracer);
        dev.set_fusion(cfg.fuse);
        let bc = BatchConfig {
            queue_capacity: cfg.batch_jobs.max(1),
            max_batch_jobs: cfg.batch_jobs.max(1),
            deadline: cfg.deadline,
            salt_policy: SaltPolicy::Solo,
            check: cfg.check,
            pool_capacity: cfg.pool_capacity,
            cache_capacity: cfg.cache_capacity,
            ..BatchConfig::default()
        };
        let svc = ExtractionService::with_clock(bc, Arc::clone(&clock))
            .expect("default [0,2]-factor config is always valid");
        Self {
            id,
            label: format!("w{id}"),
            dev,
            svc,
            clock,
        }
    }

    /// Cumulative device model time, in seconds (the sim's cost model).
    pub fn model_time_s(&self) -> f64 {
        self.dev.stats().model_time_s
    }

    /// Pull one fair batch if the admission controller says one is ready,
    /// execute it, publish outcomes into `jobs`, and return the per-job
    /// outcomes. Returns an empty vec when nothing was ready.
    pub fn step(
        &mut self,
        adm: &Mutex<Admission>,
        jobs: &JobTable,
        draining: bool,
    ) -> Vec<StepOutcome> {
        let cfg = self.svc.config();
        let (batch_jobs, deadline) = (cfg.max_batch_jobs, cfg.deadline);
        let now = self.clock.now();
        let pulled = {
            let mut a = adm.lock().unwrap();
            if a.ready(now, batch_jobs, deadline, draining) {
                a.pull(batch_jobs)
            } else {
                Vec::new()
            }
        };
        if pulled.is_empty() {
            return Vec::new();
        }

        let metrics = lf_metrics::enabled();
        let mut ids: HashMap<u64, (u64, String)> = HashMap::new();
        for qj in pulled {
            jobs.set_state(qj.id, JobState::Running);
            if metrics {
                let waited = now.saturating_duration_since(qj.enqueued_at).as_nanos() as f64;
                lf_metrics::global()
                    .histogram_with(
                        "lf_serve_admission_wait_seconds",
                        "Admission-to-worker wait per job, by tenant.",
                        lf_metrics::Unit::Nanos,
                        ("tenant", qj.tenant.as_str()),
                    )
                    .record_f64_traced(waited, qj.ctx.trace_id);
                obs::record_wait_outcome("admitted", waited, qj.ctx.trace_id);
            }
            match self
                .svc
                .submit_traced(format!("job-{}", qj.id), qj.graph, now, qj.ctx)
            {
                Ok(svc_id) => {
                    ids.insert(svc_id, (qj.id, qj.tenant));
                }
                Err(e) => {
                    // Unreachable by construction (pull size == service
                    // queue capacity), but never silently lose a job.
                    jobs.set_state(
                        qj.id,
                        JobState::Failed {
                            kind: "internal",
                            message: format!("shard submit: {e}"),
                        },
                    );
                }
            }
        }

        let mut out = Vec::new();
        for o in self.svc.drain(&self.dev) {
            let Some((gid, tenant)) = ids.remove(&o.id) else {
                continue;
            };
            let ok = o.result.is_ok();
            let state = match o.result {
                Ok(r) => JobState::Done {
                    perm: r.forest.perm,
                    quality: r.quality,
                    nnz: o.nnz,
                    cache_hit: o.cache_hit,
                },
                Err(e) => {
                    let kind = match &e {
                        JobError::Pipeline(_) => "pipeline",
                        JobError::Union(_) => "union",
                        JobError::Audit { .. } => "audit",
                        JobError::Internal { .. } => "internal",
                    };
                    JobState::Failed {
                        kind,
                        message: e.to_string().replace('\n', "; "),
                    }
                }
            };
            jobs.set_outcome(gid, state, Some(o.timeline.to_json()));
            if metrics {
                let family = if ok {
                    ("lf_serve_completed_total", "Jobs completed, by tenant.")
                } else {
                    ("lf_serve_failed_total", "Jobs failed, by tenant.")
                };
                lf_metrics::global()
                    .counter_with(family.0, family.1, ("tenant", tenant.as_str()))
                    .inc();
            }
            out.push(StepOutcome {
                id: gid,
                tenant,
                ok,
            });
        }
        self.svc.publish_occupancy(&self.label);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::QueuedJob;
    use crate::tenant::TenantTable;
    use lf_batch::ModelClock;
    use lf_trace::TraceContext;
    use lf_sparse::random::random_symmetric;

    #[test]
    fn step_executes_a_fair_batch_and_updates_the_table() {
        let clock = ModelClock::shared();
        let adm = Mutex::new(Admission::new(
            TenantTable::parse("a 1 2 16\nb 1 1 16\n").unwrap(),
            1000,
        ));
        let jobs = JobTable::default();
        let t = clock.now();
        for i in 0..4u64 {
            let tn = if i % 2 == 0 { "a" } else { "b" };
            jobs.admit(i, tn, TraceContext::mint(i, tn));
            adm.lock()
                .unwrap()
                .submit(QueuedJob {
                    id: i,
                    tenant: tn.to_string(),
                    ctx: TraceContext::minted(i, tn),
                    graph: random_symmetric(30, 3.0, 0.1, 1.0, 50 + i),
                    enqueued_at: t,
                })
                .unwrap();
        }
        let mut w = WorkerShard::new(
            0,
            &WorkerConfig {
                batch_jobs: 4,
                ..WorkerConfig::default()
            },
            clock,
        );
        let out = w.step(&adm, &jobs, false);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o.ok), "{out:?}");
        assert_eq!(jobs.unfinished(), 0);
        for i in 0..4 {
            assert_eq!(jobs.get(i).unwrap().state.tag(), "done");
        }
        assert!(w.model_time_s() > 0.0);
        // Nothing queued: the next step is a no-op.
        assert!(w.step(&adm, &jobs, false).is_empty());
    }

    #[test]
    fn deadline_holds_partial_batches_until_the_clock_says_so() {
        let clock = ModelClock::shared();
        let adm = Mutex::new(Admission::new(TenantTable::default(), 1000));
        let jobs = JobTable::default();
        jobs.admit(0, "default", TraceContext::mint(0, "default"));
        adm.lock()
            .unwrap()
            .submit(QueuedJob {
                id: 0,
                tenant: "default".into(),
                ctx: TraceContext::minted(0, "default"),
                graph: random_symmetric(20, 2.0, 0.1, 1.0, 9),
                enqueued_at: clock.now(),
            })
            .unwrap();
        let cfg = WorkerConfig {
            batch_jobs: 8,
            deadline: Duration::from_millis(20),
            ..WorkerConfig::default()
        };
        let mut w = WorkerShard::new(1, &cfg, clock.clone());
        assert!(w.step(&adm, &jobs, false).is_empty(), "deadline not reached");
        clock.advance(Duration::from_millis(20));
        assert_eq!(w.step(&adm, &jobs, false).len(), 1);
    }

    #[test]
    fn failed_jobs_surface_typed_in_the_table() {
        let clock = ModelClock::shared();
        let adm = Mutex::new(Admission::new(TenantTable::default(), 1000));
        let jobs = JobTable::default();
        jobs.admit(0, "default", TraceContext::mint(0, "default"));
        adm.lock()
            .unwrap()
            .submit(QueuedJob {
                id: 0,
                tenant: "default".into(),
                ctx: TraceContext::minted(0, "default"),
                graph: lf_sparse::Csr::zeros(3, 4), // non-square
                enqueued_at: clock.now(),
            })
            .unwrap();
        let mut w = WorkerShard::new(2, &WorkerConfig::default(), clock);
        let out = w.step(&adm, &jobs, true);
        assert_eq!(out.len(), 1);
        assert!(!out[0].ok);
        match jobs.get(0).unwrap().state {
            JobState::Failed { kind, .. } => assert_eq!(kind, "pipeline"),
            ref s => panic!("expected failed, got {}", s.tag()),
        }
    }
}
