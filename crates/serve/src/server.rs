//! The long-running HTTP server: accept loop, bounded connection-handler
//! pool, worker shard threads, and graceful drain.
//!
//! Thread model (all plain `std::thread`, no async runtime):
//!
//! * the caller's thread runs the non-blocking accept loop;
//! * `conn_threads` handlers pull accepted sockets off an `mpsc` channel
//!   and serve exactly one request each (`Connection: close`), with read
//!   and write timeouts so a stalled peer cannot pin a handler;
//! * `workers` shard threads each own a `Device` + `ExtractionService`
//!   and pull fair batches from the shared admission controller.
//!
//! Shutdown: SIGTERM/SIGINT (or [`Server::stop_handle`]) flips the stop
//! flag. The accept loop exits and closes the connection channel; POSTs
//! that race the drain get `503 shedding`; workers keep pulling until the
//! admission queues are empty, then exit; the caller gets a
//! [`DrainReport`] and maps `abandoned == 0` to exit code 0.

use crate::admission::{Admission, QueuedJob};
use crate::http::{self, HttpError, Request};
use crate::obs::{self, AccessLog};
use crate::payload;
use crate::state::{JobState, JobTable};
use crate::tenant::TenantTable;
use crate::worker::{WorkerConfig, WorkerShard};
use lf_batch::clock::{Clock, MonotonicClock};
use lf_batch::SubmitError;
use lf_trace::TraceContext;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration (`lf serve` flags map 1:1 onto this).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7471` (port 0 picks a free port).
    pub addr: String,
    /// Number of worker shards.
    pub workers: usize,
    /// Connection-handler threads.
    pub conn_threads: usize,
    /// Tenant table (admission policy).
    pub tenants: TenantTable,
    /// Per-shard batching and execution parameters.
    pub worker: WorkerConfig,
    /// Request-body cap in bytes (`413` beyond it, body never read).
    pub max_body: usize,
    /// Total queued jobs at which overload shedding engages.
    pub shed_watermark: usize,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
    /// How long the drain may take after shutdown before remaining jobs
    /// are abandoned.
    pub drain_deadline: Duration,
    /// Structured JSONL access/lifecycle log path (`lf serve --log`);
    /// `None` disables logging.
    pub log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7471".to_string(),
            workers: 2,
            conn_threads: 4,
            tenants: TenantTable::default(),
            worker: WorkerConfig::default(),
            max_body: 8 << 20,
            shed_watermark: 64,
            io_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(10),
            log: None,
        }
    }
}

/// What the drain left behind; the CLI turns this into the exit code.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainReport {
    /// Jobs completed over the server's lifetime.
    pub completed: usize,
    /// Jobs failed (typed per-job errors).
    pub failed: usize,
    /// Jobs shed (evicted or refused after admission).
    pub shed: usize,
    /// Jobs still queued or running when the drain deadline expired
    /// (0 on a clean drain).
    pub abandoned: usize,
}

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain. (Raw
/// `signal(2)` through the libc std already links — no new dependency.)
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a drain has been requested by signal.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Clear the signal flag (tests that run several servers in one process).
pub fn clear_signal() {
    SIGNALLED.store(false, Ordering::SeqCst);
}

struct Shared {
    adm: Mutex<Admission>,
    jobs: JobTable,
    next_id: AtomicU64,
    stop: AtomicBool,
    max_body: usize,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    log: Option<Arc<AccessLog>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signalled()
    }

    /// One identity-only access-log line per answered request. Correlated
    /// routes pass `(trace_id, job, tenant)`; the rest log route + status.
    fn log_request(&self, method: &str, path: &str, status: u16, ident: Option<(u64, u64, &str)>) {
        let Some(log) = &self.log else { return };
        let mut line = format!(
            "{{\"event\":\"request\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{status}",
            lf_trace::json::escape(method),
            lf_trace::json::escape(path)
        );
        if let Some((trace, job, tenant)) = ident {
            line.push_str(&format!(
                ",\"trace_id\":\"{trace:016x}\",\"job\":{job},\"tenant\":\"{}\"",
                lf_trace::json::escape(tenant)
            ));
        }
        line.push('}');
        log.line(&line);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A handle that asks a running [`Server`] to drain and stop.
#[derive(Clone)]
pub struct StopHandle(Arc<Shared>);

impl StopHandle {
    /// Request a graceful drain (idempotent).
    pub fn stop(&self) {
        self.0.stop.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Bind the listener (the port is open, but nothing is served until
    /// [`Server::run`]).
    ///
    /// # Errors
    ///
    /// Any bind failure (address in use, permission denied, …).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let log = match &cfg.log {
            Some(path) => Some(Arc::new(AccessLog::open(path)?)),
            None => None,
        };
        let jobs = JobTable::default();
        if let Some(log) = &log {
            jobs.attach_log(Arc::clone(log));
        }
        let shared = Arc::new(Shared {
            adm: Mutex::new(Admission::new(cfg.tenants.clone(), cfg.shed_watermark)),
            jobs,
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            max_body: cfg.max_body,
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            log,
        });
        Ok(Self {
            cfg,
            listener,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be read.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for requesting a stop from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle(Arc::clone(&self.shared))
    }

    /// Serve until a stop is requested, then drain and report. Blocks the
    /// calling thread for the server's whole lifetime.
    pub fn run(self) -> DrainReport {
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock);
        self.listener
            .set_nonblocking(true)
            .expect("set_nonblocking on a fresh listener");

        // Connection handlers.
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handler_threads = Vec::new();
        for _ in 0..self.cfg.conn_threads.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            let clock = Arc::clone(&clock);
            handler_threads.push(std::thread::spawn(move || loop {
                let next = rx.lock().unwrap().recv();
                match next {
                    Ok(stream) => handle_connection(stream, &shared, clock.as_ref()),
                    Err(_) => break, // channel closed: server stopping
                }
            }));
        }

        // Worker shards.
        let mut worker_threads = Vec::new();
        for w in 0..self.cfg.workers.max(1) {
            let shared = Arc::clone(&self.shared);
            let wcfg = self.cfg.worker.clone();
            let clock = Arc::clone(&clock);
            worker_threads.push(std::thread::spawn(move || {
                let mut shard = WorkerShard::new(w, &wcfg, clock);
                loop {
                    let draining = shared.draining();
                    let done = shard.step(&shared.adm, &shared.jobs, draining);
                    for o in &done {
                        let ctr = if o.ok { &shared.completed } else { &shared.failed };
                        ctr.fetch_add(1, Ordering::Relaxed);
                    }
                    publish_queue_depths(&shared);
                    if done.is_empty() {
                        if draining && shared.adm.lock().unwrap().total() == 0 {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }));
        }

        // Accept loop.
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("lf serve: accept: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }

        // Drain: close the connection channel, let handlers finish their
        // in-flight request, wait for workers up to the deadline.
        drop(tx);
        for t in handler_threads {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.cfg.drain_deadline;
        let mut worker_threads: Vec<_> = worker_threads.into_iter().collect();
        while !worker_threads.is_empty() && Instant::now() < deadline {
            worker_threads.retain(|t| !t.is_finished());
            if !worker_threads.is_empty() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let abandoned = if worker_threads.is_empty() {
            self.shared.jobs.unfinished()
        } else {
            // Deadline expired with workers still busy; leave them
            // detached (the process is about to exit) and count what
            // never finished.
            self.shared.adm.lock().unwrap().total() + self.shared.jobs.unfinished()
        };
        DrainReport {
            completed: self.shared.completed.load(Ordering::Relaxed) as usize,
            failed: self.shared.failed.load(Ordering::Relaxed) as usize,
            shed: self.shared.shed.load(Ordering::Relaxed) as usize,
            abandoned,
        }
    }
}

fn publish_queue_depths(shared: &Shared) {
    if !lf_metrics::enabled() {
        return;
    }
    let depths: Vec<(String, usize)> = {
        let a = shared.adm.lock().unwrap();
        a.depths().into_iter().map(|(k, d)| (k.to_string(), d)).collect()
    };
    let m = lf_metrics::global();
    for (tenant, depth) in depths {
        m.gauge_with(
            "lf_serve_queue_depth",
            "Jobs waiting in each tenant's admission queue.",
            ("tenant", &tenant),
        )
        .set(depth as f64);
    }
}

fn count_request(route: &'static str) {
    if lf_metrics::enabled() {
        lf_metrics::global()
            .counter_with(
                "lf_serve_requests_total",
                "HTTP requests received, by route.",
                ("route", route),
            )
            .inc();
    }
}

fn count_response(status: u16) {
    if lf_metrics::enabled() {
        lf_metrics::global()
            .counter_with(
                "lf_serve_responses_total",
                "HTTP responses sent, by status code.",
                ("status", &status.to_string()),
            )
            .inc();
    }
}

fn count_tenant(family: &'static str, help: &'static str, tenant: &str) {
    if lf_metrics::enabled() {
        lf_metrics::global()
            .counter_with(family, help, ("tenant", tenant))
            .inc();
    }
}

/// Serve exactly one request on `stream`. All errors are answered (or the
/// connection dropped, for I/O errors) — never panicked on.
fn handle_connection(mut stream: TcpStream, shared: &Shared, clock: &dyn Clock) {
    let req = match http::read_request_capped(&mut stream, shared.max_body) {
        Ok(r) => r,
        Err(e) => {
            let status = match &e {
                HttpError::Malformed(_) => 400,
                HttpError::LengthRequired => 411,
                HttpError::TooLarge { .. } => 413,
                HttpError::Io(_) => {
                    // Stalled or vanished peer: nothing to answer.
                    count_request("unreadable");
                    return;
                }
            };
            count_request("malformed");
            shared.log_request("-", "-", status, None);
            respond_error(&mut stream, status, &e.to_string());
            return;
        }
    };
    route(&mut stream, &req, shared, clock);
}

fn route(stream: &mut TcpStream, req: &Request, shared: &Shared, clock: &dyn Clock) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/forest") => {
            count_request("forest");
            post_forest(stream, req, shared, clock);
        }
        ("GET", "/healthz") => {
            count_request("healthz");
            let status = if shared.draining() { 503 } else { 200 };
            let body: &[u8] = if status == 200 { b"ok\n" } else { b"draining\n" };
            shared.log_request("GET", "/healthz", status, None);
            respond(stream, status, "text/plain", body);
        }
        ("GET", "/metrics") => {
            count_request("metrics");
            let body = lf_metrics::global().snapshot().to_prometheus();
            shared.log_request("GET", "/metrics", 200, None);
            respond(stream, 200, "text/plain; version=0.0.4", body.as_bytes());
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => {
            count_request("jobs");
            get_job(stream, p, shared);
        }
        (m, "/v1/forest") | (m, "/healthz") | (m, "/metrics") => {
            count_request("other");
            shared.log_request(m, &req.path, 405, None);
            respond_error(stream, 405, &format!("method {m} not allowed here"));
        }
        _ => {
            count_request("other");
            shared.log_request(&req.method, &req.path, 404, None);
            respond_error(stream, 404, &format!("no route for {}", req.path));
        }
    }
}

/// The correlation id the client asked for, if any: `X-Trace-Id` (bare
/// hex) or a W3C `traceparent` header.
fn inbound_trace(req: &Request) -> Option<u64> {
    req.header("x-trace-id")
        .and_then(TraceContext::parse_trace_id)
        .or_else(|| req.header("traceparent").and_then(TraceContext::parse_trace_id))
}

fn post_forest(stream: &mut TcpStream, req: &Request, shared: &Shared, clock: &dyn Clock) {
    let tenant = req
        .header("x-tenant")
        .map(str::to_string)
        .or_else(|| req.query.get("tenant").cloned())
        .unwrap_or_else(|| "default".to_string());
    let inbound = inbound_trace(req);
    if shared.draining() {
        // Refused at the door, but still correlated: the refusal gets an
        // id, a trace, a flight event, and an echoed X-Trace-Id.
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = inbound.unwrap_or_else(|| TraceContext::mint(id, &tenant));
        obs::shed_event(id, &tenant, "draining", trace);
        obs::record_wait_outcome("shed", 0.0, trace);
        shared.log_request("POST", "/v1/forest", 503, Some((trace, id, &tenant)));
        respond_error_traced(stream, 503, "shedding: server is draining", trace);
        return;
    }
    let (graph, kind) = match payload::parse_graph(&req.body) {
        Ok(g) => g,
        Err(msg) => {
            shared.log_request("POST", "/v1/forest", 400, None);
            respond_error(stream, 400, &msg);
            return;
        }
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let ctx = match inbound {
        Some(trace) => TraceContext::new(trace, id, tenant.clone()),
        None => TraceContext::minted(id, tenant.clone()),
    };
    let job = QueuedJob {
        id,
        tenant: tenant.clone(),
        ctx: ctx.clone(),
        graph,
        enqueued_at: clock.now(),
    };
    // Insert the table record BEFORE admission: once the job is queued a
    // worker may pull and finish it immediately, and a late insert would
    // overwrite that terminal state with Queued, stranding the job.
    shared.jobs.admit(id, &tenant, ctx.trace_id);
    let admitted = shared.adm.lock().unwrap().submit(job);
    match admitted {
        Ok(evicted) => {
            let now = clock.now();
            for e in evicted {
                shared.jobs.set_state(e.id, JobState::Shed);
                shared.shed.fetch_add(1, Ordering::Relaxed);
                count_tenant(
                    "lf_serve_shed_total",
                    "Jobs shed under overload (evicted or refused), by tenant.",
                    &e.tenant,
                );
                let waited = now.saturating_duration_since(e.enqueued_at);
                obs::record_wait_outcome("evicted", waited.as_nanos() as f64, e.ctx.trace_id);
                obs::shed_event(e.id, &e.tenant, "evicted", e.ctx.trace_id);
            }
            count_tenant(
                "lf_serve_submitted_total",
                "Jobs admitted, by tenant.",
                &tenant,
            );
            publish_queue_depths(shared);
            let body = format!(
                "{{\"job\":{id},\"tenant\":\"{}\",\"format\":\"{}\",\"trace_id\":\"{}\"}}\n",
                lf_trace::json::escape(&tenant),
                kind.as_str(),
                ctx.trace_hex()
            );
            shared.log_request("POST", "/v1/forest", 202, Some((ctx.trace_id, id, &tenant)));
            respond_traced(stream, 202, "application/json", body.as_bytes(), ctx.trace_id);
        }
        Err(e @ SubmitError::TenantQueueFull { .. }) => {
            shared.jobs.set_state(id, JobState::Shed);
            obs::record_wait_outcome("shed", 0.0, ctx.trace_id);
            obs::shed_event(id, &tenant, "refused", ctx.trace_id);
            shared.log_request("POST", "/v1/forest", 429, Some((ctx.trace_id, id, &tenant)));
            respond_error_traced(stream, 429, &e.to_string(), ctx.trace_id);
        }
        Err(e @ SubmitError::Shedding { .. }) => {
            shared.jobs.set_state(id, JobState::Shed);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            count_tenant(
                "lf_serve_shed_total",
                "Jobs shed under overload (evicted or refused), by tenant.",
                &tenant,
            );
            obs::record_wait_outcome("shed", 0.0, ctx.trace_id);
            obs::shed_event(id, &tenant, "refused", ctx.trace_id);
            shared.log_request("POST", "/v1/forest", 503, Some((ctx.trace_id, id, &tenant)));
            respond_error_traced(stream, 503, &e.to_string(), ctx.trace_id);
        }
        Err(e) => {
            shared.jobs.set_state(id, JobState::Shed);
            shared.log_request("POST", "/v1/forest", 500, Some((ctx.trace_id, id, &tenant)));
            respond_error_traced(stream, 500, &e.to_string(), ctx.trace_id);
        }
    }
}

fn get_job(stream: &mut TcpStream, path: &str, shared: &Shared) {
    let rest = &path["/v1/jobs/".len()..];
    let (id_str, mode) = if let Some(prefix) = rest.strip_suffix("/forest") {
        (prefix, "forest")
    } else if let Some(prefix) = rest.strip_suffix("/trace") {
        (prefix, "trace")
    } else {
        (rest, "status")
    };
    let Ok(id) = id_str.parse::<u64>() else {
        shared.log_request("GET", path, 400, None);
        respond_error(stream, 400, &format!("bad job id {id_str:?}"));
        return;
    };
    let Some(rec) = shared.jobs.get(id) else {
        shared.log_request("GET", path, 404, None);
        respond_error(stream, 404, &format!("no such job {id}"));
        return;
    };
    let trace = rec.trace_id;
    let ident = Some((trace, id, rec.tenant.as_str()));
    if mode == "trace" {
        let mut body = rec.trace_json();
        body.push('\n');
        shared.log_request("GET", path, 200, ident);
        respond_traced(stream, 200, "application/json", body.as_bytes(), trace);
        return;
    }
    if mode == "status" {
        let mut body = rec.to_json();
        body.push('\n');
        shared.log_request("GET", path, 200, ident);
        respond_traced(stream, 200, "application/json", body.as_bytes(), trace);
        return;
    }
    match &rec.state {
        JobState::Done { perm, .. } => {
            // One vertex per line: byte-identical to `lf forest --perm`.
            let mut body = String::with_capacity(perm.len() * 7);
            for v in perm {
                body.push_str(&v.to_string());
                body.push('\n');
            }
            shared.log_request("GET", path, 200, ident);
            respond_traced(stream, 200, "text/plain", body.as_bytes(), trace);
        }
        JobState::Queued | JobState::Running => {
            let mut body = rec.to_json();
            body.push('\n');
            shared.log_request("GET", path, 202, ident);
            respond_traced(stream, 202, "application/json", body.as_bytes(), trace);
        }
        JobState::Shed => {
            shared.log_request("GET", path, 410, ident);
            respond_error_traced(stream, 410, &format!("job {id} was shed"), trace);
        }
        JobState::Failed { kind, message } => {
            shared.log_request("GET", path, 500, ident);
            respond_error_traced(
                stream,
                500,
                &format!("job {id} failed ({kind}): {message}"),
                trace,
            );
        }
    }
}

fn respond(stream: &mut impl Write, status: u16, content_type: &str, body: &[u8]) {
    count_response(status);
    if let Err(e) = http::write_response(stream, status, content_type, body) {
        eprintln!("lf serve: write response: {e}");
    }
}

/// [`respond`] echoing the request's correlation id as `X-Trace-Id`.
fn respond_traced(stream: &mut impl Write, status: u16, content_type: &str, body: &[u8], trace: u64) {
    count_response(status);
    let hex = format!("{trace:016x}");
    let headers = [("X-Trace-Id", hex.as_str())];
    if let Err(e) = http::write_response_with(stream, status, content_type, &headers, body) {
        eprintln!("lf serve: write response: {e}");
    }
}

fn respond_error(stream: &mut impl Write, status: u16, msg: &str) {
    count_response(status);
    if let Err(e) = http::write_error(stream, status, msg) {
        eprintln!("lf serve: write error response: {e}");
    }
}

/// [`respond_error`] echoing the correlation id — refusals (429/503/410)
/// stay traceable even though the job never ran.
fn respond_error_traced(stream: &mut impl Write, status: u16, msg: &str, trace: u64) {
    count_response(status);
    let hex = format!("{trace:016x}");
    let headers = [("X-Trace-Id", hex.as_str())];
    if let Err(e) = http::write_error_with(stream, status, msg, &headers) {
        eprintln!("lf serve: write error response: {e}");
    }
}
