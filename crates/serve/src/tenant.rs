//! Tenant identities and policy: priority, DRR weight, queue capacity.
//!
//! The tenant table is static for a server's lifetime, loaded from a
//! plain-text config (`--tenant-config`) of one tenant per line:
//!
//! ```text
//! # name  priority  weight  queue_capacity
//! acme    2         4       64
//! free    0         1       16
//! ```
//!
//! Higher `priority` is better: under overload the *lowest* priority
//! class is shed first. `weight` is the deficit-round-robin share —
//! a weight-4 tenant gets 4 jobs scheduled for every 1 of a weight-1
//! tenant when both have work queued. Unknown tenants map to the
//! `default` entry (always present; the built-in default is priority 1,
//! weight 1, capacity 64).

use std::collections::BTreeMap;

/// One tenant's admission policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name (the `X-Tenant` header / `?tenant=` value).
    pub name: String,
    /// Shedding class; lowest sheds first.
    pub priority: u8,
    /// Deficit-round-robin weight (≥ 1).
    pub weight: u32,
    /// Bounded per-tenant admission queue length.
    pub queue_capacity: usize,
}

impl TenantSpec {
    /// The built-in policy for unknown tenants.
    pub fn default_spec() -> Self {
        Self {
            name: "default".to_string(),
            priority: 1,
            weight: 1,
            queue_capacity: 64,
        }
    }
}

/// The immutable tenant table.
#[derive(Clone, Debug)]
pub struct TenantTable {
    // BTreeMap so iteration (and therefore DRR visiting order) is
    // deterministic by name.
    specs: BTreeMap<String, TenantSpec>,
}

impl Default for TenantTable {
    fn default() -> Self {
        let mut specs = BTreeMap::new();
        let d = TenantSpec::default_spec();
        specs.insert(d.name.clone(), d);
        Self { specs }
    }
}

impl TenantTable {
    /// Parse the `--tenant-config` format: whitespace-separated
    /// `name priority weight capacity` per line; `#` starts a comment;
    /// blank lines ignored. A `default` entry is added if absent.
    ///
    /// # Errors
    ///
    /// A one-line message naming the offending line: wrong field count,
    /// unparsable numbers, zero weight, zero capacity, or a duplicate
    /// tenant name.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut specs = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_ascii_whitespace().collect();
            if f.len() != 4 {
                return Err(format!(
                    "tenant config line {}: expected 'name priority weight capacity', got {raw:?}",
                    i + 1
                ));
            }
            let bad = |what: &str| {
                format!("tenant config line {}: bad {what} in {raw:?}", i + 1)
            };
            let spec = TenantSpec {
                name: f[0].to_string(),
                priority: f[1].parse().map_err(|_| bad("priority"))?,
                weight: f[2].parse().map_err(|_| bad("weight"))?,
                queue_capacity: f[3].parse().map_err(|_| bad("capacity"))?,
            };
            if spec.weight == 0 {
                return Err(bad("weight (must be >= 1)"));
            }
            if spec.queue_capacity == 0 {
                return Err(bad("capacity (must be >= 1)"));
            }
            if specs.insert(spec.name.clone(), spec).is_some() {
                return Err(format!(
                    "tenant config line {}: duplicate tenant {:?}",
                    i + 1,
                    f[0]
                ));
            }
        }
        if !specs.contains_key("default") {
            let d = TenantSpec::default_spec();
            specs.insert(d.name.clone(), d);
        }
        Ok(Self { specs })
    }

    /// The spec governing `name`: its own entry, or the `default` entry
    /// for unknown tenants.
    pub fn spec(&self, name: &str) -> &TenantSpec {
        self.specs
            .get(name)
            .unwrap_or_else(|| &self.specs["default"])
    }

    /// Whether `name` has its own entry (vs falling through to default).
    pub fn is_known(&self, name: &str) -> bool {
        self.specs.contains_key(name)
    }

    /// All specs, in deterministic (name) order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.specs.values()
    }

    /// Number of configured tenants (including `default`).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the table is empty (never true: `default` always exists).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config_with_comments_and_default_fallback() {
        let t = TenantTable::parse(
            "# fleet\nacme 2 4 64\nfree 0 1 16  # throwaway tier\n\n",
        )
        .unwrap();
        assert_eq!(t.len(), 3, "default is added");
        assert_eq!(t.spec("acme").weight, 4);
        assert_eq!(t.spec("free").priority, 0);
        assert_eq!(t.spec("nobody").name, "default");
        assert!(t.is_known("acme"));
        assert!(!t.is_known("nobody"));
    }

    #[test]
    fn explicit_default_wins() {
        let t = TenantTable::parse("default 3 9 128\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.spec("anyone").priority, 3);
        assert_eq!(t.spec("anyone").weight, 9);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "acme 2 4",
            "acme two 4 64",
            "acme 2 four 64",
            "acme 2 4 sixty",
            "acme 2 0 64",
            "acme 2 4 0",
            "acme 1 1 8\nacme 2 2 8",
            "acme 999 1 8",
        ] {
            let e = TenantTable::parse(bad).expect_err(bad);
            assert!(e.contains("line"), "{e}");
        }
    }

    #[test]
    fn iteration_order_is_name_sorted() {
        let t = TenantTable::parse("zeta 1 1 8\nalpha 1 1 8\n").unwrap();
        let names: Vec<&str> = t.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["alpha", "default", "zeta"]);
    }
}
