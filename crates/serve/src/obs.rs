//! Serving-side observability shared by the HTTP server, the worker
//! shards, and the deterministic simulation: the structured JSONL
//! access/lifecycle log, the outcome-labeled admission-wait histogram,
//! and shed flight events.
//!
//! Every log line is **identity-only** — trace id, job id, tenant, state,
//! status — never a wall-clock reading. Under a [`lf_batch::ModelClock`]
//! the same run therefore produces the same lines, which is what lets
//! `repro serve` stay bit-stable with logging enabled.

use lf_flight::FlightEvent;
use std::io::Write;
use std::sync::Mutex;

/// A line-oriented JSONL sink for access and job-lifecycle records
/// (`lf serve --log out.jsonl`). One JSON object per line; writes are
/// serialized and flushed per line so a crash loses at most the line in
/// flight.
pub struct AccessLog {
    out: Mutex<Box<dyn Write + Send>>,
}

impl AccessLog {
    /// Wrap any writer (tests pass a `Vec<u8>` behind a mutex-friendly
    /// adapter; the CLI passes a freshly created file).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Create (truncate) `path` and log into it.
    ///
    /// # Errors
    ///
    /// Any file-creation error.
    pub fn open(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Append one pre-rendered JSON object as a line. I/O errors are
    /// reported to stderr, never propagated — logging must not take the
    /// serving path down.
    pub fn line(&self, json: &str) {
        let mut out = self.out.lock().unwrap();
        if let Err(e) = out.write_all(json.as_bytes()).and_then(|()| {
            out.write_all(b"\n")?;
            out.flush()
        }) {
            eprintln!("lf serve: access log write: {e}");
        }
    }
}

/// Record an admission-wait observation under the `outcome` label
/// (`admitted`, `shed`, `evicted`), carrying the job's trace id as the
/// histogram's exemplar. The tenant-labeled family only ever sees
/// admitted jobs; this family is where refused and evicted work shows up.
pub fn record_wait_outcome(outcome: &'static str, waited_ns: f64, trace: u64) {
    if !lf_metrics::enabled() {
        return;
    }
    lf_metrics::global()
        .histogram_with(
            "lf_serve_admission_wait_outcome_seconds",
            "Admission wait per job by outcome (admitted, shed, evicted).",
            lf_metrics::Unit::Nanos,
            ("outcome", outcome),
        )
        .record_f64_traced(waited_ns, trace);
}

/// Record a shed decision in the flight ring, correlated to the request
/// that caused it. `reason` is `refused` (turned away at the door),
/// `evicted` (admitted, then displaced by higher-priority work), or
/// `draining` (arrived during shutdown).
pub fn shed_event(id: u64, tenant: &str, reason: &str, trace: u64) {
    if !lf_flight::enabled() {
        return;
    }
    lf_flight::record(FlightEvent::Shed {
        id,
        tenant: tenant.to_string(),
        reason: reason.to_string(),
        trace,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A shared Vec writer for asserting on emitted lines.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_appended_with_newlines() {
        let buf = Buf::default();
        let log = AccessLog::new(Box::new(buf.clone()));
        log.line("{\"event\":\"request\",\"status\":200}");
        log.line("{\"event\":\"job\",\"job\":7}");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            lf_trace::json::validate(l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
    }
}
