//! Fair admission: per-tenant bounded queues, deficit-round-robin
//! scheduling, and priority-ordered overload shedding.
//!
//! Admission is a pure, lock-free-of-I/O state machine over explicit
//! instants — the same discipline as the lf-batch scheduler — so the
//! HTTP server drives it under a mutex with the monotonic clock while
//! `repro serve` and the tests drive the identical code under a
//! [`lf_batch::ModelClock`], bit-stably.
//!
//! **Queues.** Each *known* tenant owns a bounded FIFO; unknown tenants
//! share the `default` queue (per-name queues for unauthenticated callers
//! would let one client evade its bound by inventing names). A submission
//! to a full queue fails with [`SubmitError::TenantQueueFull`].
//!
//! **Scheduling.** Workers pull batches by deficit round robin: tenants
//! are visited in deterministic name order, each visit grants the
//! tenant's weight in credits, and every dequeued job costs one credit —
//! a weight-4 tenant drains 4× faster than a weight-1 tenant under
//! contention, and an idle tenant's credit resets so it cannot hoard.
//!
//! **Shedding.** When total queued work reaches the watermark, the
//! lowest-priority class pays first: submissions from the lowest active
//! priority are refused with [`SubmitError::Shedding`], and a submission
//! from a strictly higher class evicts the newest queued job of the
//! lowest-priority backlogged tenant to make room. Higher classes only
//! shed once no lower class has work left to give back.

use crate::tenant::TenantTable;
use lf_batch::SubmitError;
use lf_sparse::Csr;
use lf_trace::TraceContext;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// A parsed, admitted job waiting for a worker shard.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-global job ID.
    pub id: u64,
    /// The submitting tenant (as named by the client, for reporting; the
    /// governing queue may be `default`).
    pub tenant: String,
    /// Request-scoped correlation identity, minted (or accepted from the
    /// caller's `traceparent`) at the HTTP door and threaded through the
    /// scheduler down to the device.
    pub ctx: TraceContext,
    /// The parsed input graph (pre-validated at the HTTP door).
    pub graph: Csr<f64>,
    /// Admission time, for deadline-aware batch closing and wait metrics.
    pub enqueued_at: Instant,
}

/// The admission state machine. All methods take explicit instants.
pub struct Admission {
    table: TenantTable,
    queues: BTreeMap<String, VecDeque<QueuedJob>>,
    deficit: BTreeMap<String, u64>,
    /// Name of the queue served last; the next pull resumes after it.
    cursor: Option<String>,
    shed_watermark: usize,
    total: usize,
}

impl Admission {
    /// An empty admission controller. `shed_watermark` is the total
    /// queued-job count at which overload shedding engages (0 is clamped
    /// to 1: a watermark of 0 would shed the first job ever submitted).
    pub fn new(table: TenantTable, shed_watermark: usize) -> Self {
        Self {
            table,
            queues: BTreeMap::new(),
            deficit: BTreeMap::new(),
            cursor: None,
            shed_watermark: shed_watermark.max(1),
            total: 0,
        }
    }

    /// The tenant table this controller enforces.
    pub fn table(&self) -> &TenantTable {
        &self.table
    }

    /// Total queued jobs across all tenants.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Queue key governing `tenant`: its own name when configured,
    /// otherwise `default`.
    pub fn queue_key<'a>(&self, tenant: &'a str) -> &'a str {
        if self.table.is_known(tenant) {
            tenant
        } else {
            "default"
        }
    }

    /// Per-queue depths, in deterministic name order.
    pub fn depths(&self) -> Vec<(&str, usize)> {
        self.queues.iter().map(|(k, q)| (k.as_str(), q.len())).collect()
    }

    /// Admit `job`, possibly evicting lower-priority queued work; evicted
    /// jobs are returned so the caller can mark them shed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::TenantQueueFull`] when the governing queue is at
    /// its capacity, [`SubmitError::Shedding`] when the service is
    /// overloaded and the submitter's priority class is the one being
    /// shed. In both cases `job` is dropped (never queued).
    pub fn submit(&mut self, job: QueuedJob) -> Result<Vec<QueuedJob>, SubmitError> {
        let key = self.queue_key(&job.tenant).to_string();
        let spec = self.table.spec(&key).clone();
        if self.queues.get(&key).map_or(0, VecDeque::len) >= spec.queue_capacity {
            return Err(SubmitError::TenantQueueFull {
                tenant: key,
                capacity: spec.queue_capacity,
            });
        }
        let mut evicted = Vec::new();
        if self.total >= self.shed_watermark {
            // Overloaded. Find the lowest-priority tenant with queued work.
            let victim = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| (self.table.spec(k).priority, k.clone()))
                .min(); // (priority, name): lowest class, name-tiebroken
            match victim {
                Some((vprio, vkey)) if spec.priority > vprio => {
                    // The submitter outranks the victim class: evict the
                    // newest queued job of the victim tenant to stay at
                    // the watermark, then admit.
                    if let Some(q) = self.queues.get_mut(&vkey) {
                        if let Some(e) = q.pop_back() {
                            self.total -= 1;
                            evicted.push(e);
                        }
                    }
                }
                _ => {
                    // The submitter is in (or below) the lowest active
                    // class — it is the one being shed.
                    return Err(SubmitError::Shedding { tenant: key });
                }
            }
        }
        self.queues.entry(key).or_default().push_back(job);
        self.total += 1;
        Ok(evicted)
    }

    /// Whether a worker should pull a batch at `now`: the queued total
    /// reaches the batch size, the oldest queued job has waited past
    /// `deadline`, or the server is draining. Mirrors the lf-batch
    /// count/deadline close rules one level up, where cross-tenant
    /// fairness is decided.
    pub fn ready(&self, now: Instant, batch_jobs: usize, deadline: Duration, draining: bool) -> bool {
        if self.total == 0 {
            return false;
        }
        if draining || self.total >= batch_jobs {
            return true;
        }
        self.oldest(now) >= deadline
    }

    /// How long the oldest queued job has waited as of `now` (zero when
    /// idle).
    pub fn oldest(&self, now: Instant) -> Duration {
        self.queues
            .values()
            .filter_map(|q| q.front())
            .map(|j| now.saturating_duration_since(j.enqueued_at))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Dequeue up to `max` jobs by deficit round robin.
    pub fn pull(&mut self, max: usize) -> Vec<QueuedJob> {
        let mut out = Vec::new();
        while out.len() < max && self.total > 0 {
            let active: Vec<String> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| k.clone())
                .collect();
            if active.is_empty() {
                break;
            }
            let start = match &self.cursor {
                Some(c) => active.iter().position(|n| n > c).unwrap_or(0),
                None => 0,
            };
            let mut progressed = false;
            for i in 0..active.len() {
                let name = &active[(start + i) % active.len()];
                let credit = self.deficit.entry(name.clone()).or_insert(0);
                *credit += u64::from(self.table.spec(name).weight);
                let q = self.queues.get_mut(name).expect("active queue");
                while *credit >= 1 && out.len() < max {
                    match q.pop_front() {
                        Some(j) => {
                            *credit -= 1;
                            self.total -= 1;
                            out.push(j);
                            progressed = true;
                        }
                        None => break,
                    }
                }
                if q.is_empty() {
                    // Standard DRR: an emptied queue forfeits its credit,
                    // so idle tenants cannot bank a burst.
                    *credit = 0;
                }
                self.cursor = Some(name.clone());
                if out.len() >= max {
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: &str, at: Instant) -> QueuedJob {
        QueuedJob {
            id,
            tenant: tenant.to_string(),
            ctx: TraceContext::minted(id, tenant),
            graph: Csr::zeros(2, 2),
            enqueued_at: at,
        }
    }

    fn table() -> TenantTable {
        TenantTable::parse("a 1 2 8\nb 1 1 8\nflood 0 1 8\n").unwrap()
    }

    #[test]
    fn drr_respects_weights_deterministically() {
        let mut adm = Admission::new(table(), 1000);
        let t = Instant::now();
        let mut id = 0;
        for _ in 0..6 {
            for tn in ["a", "b"] {
                adm.submit(job(id, tn, t)).unwrap();
                id += 1;
            }
        }
        // a has weight 2, b weight 1: each round serves a,a,b.
        let order: Vec<String> = adm.pull(6).into_iter().map(|j| j.tenant).collect();
        assert_eq!(order, ["a", "a", "b", "a", "a", "b"]);
        assert_eq!(adm.total(), 6);
    }

    #[test]
    fn unknown_tenants_share_the_default_queue() {
        let mut adm = Admission::new(table(), 1000);
        let t = Instant::now();
        // default capacity is 64; two unknown names land in one queue.
        adm.submit(job(0, "ghost1", t)).unwrap();
        adm.submit(job(1, "ghost2", t)).unwrap();
        let depths = adm.depths();
        assert_eq!(depths, vec![("default", 2)]);
        assert_eq!(adm.queue_key("ghost1"), "default");
    }

    #[test]
    fn tenant_queue_full_is_per_tenant() {
        let mut adm = Admission::new(table(), 1000);
        let t = Instant::now();
        for i in 0..8 {
            adm.submit(job(i, "b", t)).unwrap();
        }
        let e = adm.submit(job(9, "b", t)).unwrap_err();
        assert_eq!(
            e,
            SubmitError::TenantQueueFull {
                tenant: "b".into(),
                capacity: 8
            }
        );
        // Other tenants are unaffected.
        adm.submit(job(10, "a", t)).unwrap();
    }

    #[test]
    fn overload_sheds_lowest_priority_first() {
        // Watermark 4. flood (priority 0) fills it; its own submissions
        // then shed, while priority-1 tenants evict flood's queued work.
        let mut adm = Admission::new(table(), 4);
        let t = Instant::now();
        for i in 0..4 {
            adm.submit(job(i, "flood", t)).unwrap();
        }
        assert_eq!(
            adm.submit(job(4, "flood", t)).unwrap_err(),
            SubmitError::Shedding {
                tenant: "flood".into()
            }
        );
        let evicted = adm.submit(job(5, "a", t)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tenant, "flood");
        assert_eq!(evicted[0].id, 3, "newest flood job evicted first");
        assert_eq!(adm.total(), 4, "eviction keeps the total at the watermark");
        // Once only priority-1 work remains, that class sheds too.
        for i in 6..9 {
            let ev = adm.submit(job(i, "a", t)).unwrap();
            assert_eq!(ev.len(), 1, "job {i} evicts one flood job");
        }
        assert_eq!(
            adm.submit(job(9, "b", t)).unwrap_err(),
            SubmitError::Shedding { tenant: "b".into() }
        );
    }

    #[test]
    fn ready_on_count_deadline_and_drain() {
        let mut adm = Admission::new(table(), 1000);
        let t = Instant::now();
        assert!(!adm.ready(t, 4, Duration::from_millis(10), false), "empty");
        adm.submit(job(0, "a", t)).unwrap();
        assert!(!adm.ready(t, 4, Duration::from_millis(10), false));
        assert!(adm.ready(t, 1, Duration::from_millis(10), false), "count");
        assert!(adm.ready(t, 4, Duration::from_millis(10), true), "drain");
        let later = t + Duration::from_millis(11);
        assert!(adm.ready(later, 4, Duration::from_millis(10), false), "deadline");
        assert_eq!(adm.oldest(later), Duration::from_millis(11));
    }

    #[test]
    fn pull_resumes_after_the_cursor() {
        let mut adm = Admission::new(table(), 1000);
        let t = Instant::now();
        for i in 0..4 {
            adm.submit(job(i, "a", t)).unwrap();
            adm.submit(job(100 + i, "b", t)).unwrap();
        }
        // First pull of 2 serves a (weight 2). The next pull must resume
        // at b, not restart at a — otherwise b starves under small pulls.
        let first: Vec<String> = adm.pull(2).into_iter().map(|j| j.tenant).collect();
        assert_eq!(first, ["a", "a"]);
        let second: Vec<String> = adm.pull(1).into_iter().map(|j| j.tenant).collect();
        assert_eq!(second, ["b"]);
    }
}
