//! lf-serve: a long-running, multi-tenant extraction server.
//!
//! This crate turns the one-shot extraction pipeline into a service:
//! clients `POST` a graph (MatrixMarket or raw CSR) to `/v1/forest`, poll
//! `GET /v1/jobs/<id>`, and fetch the finished permutation from
//! `GET /v1/jobs/<id>/forest` — byte-identical to `lf forest --perm` on
//! the same input, because worker shards run their batch services under
//! [`lf_batch::SaltPolicy::Solo`].
//!
//! The stack, bottom-up:
//!
//! * [`http`] — a hand-rolled, bounded HTTP/1.1 reader/writer over
//!   `std::net` (this workspace takes no new dependencies; the protocol
//!   subset here is the same spirit as lf-trace's hand-rolled JSON);
//! * [`payload`] — untrusted-body parsing into a validated `Csr<f64>`,
//!   every failure a one-line 400;
//! * [`tenant`] / [`admission`] — per-tenant bounded queues, deficit
//!   round-robin fairness, priority-ordered overload shedding;
//! * [`state`] — the queryable job table;
//! * [`worker`] — shards owning a `Device` + `ExtractionService` each;
//! * [`server`] — accept loop, connection pool, drain-on-SIGTERM;
//! * [`sim`] — the deterministic model-time load loop behind
//!   `repro serve`.
//!
//! Determinism boundary: the HTTP server runs on the monotonic clock and
//! real threads; everything below [`server`] takes explicit instants and
//! is also driven, unchanged, by the single-threaded [`sim`] under a
//! [`lf_batch::ModelClock`] — which is why the served results and the
//! benchmark are reproducible while the transport stays concurrent.

#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod obs;
pub mod payload;
pub mod server;
pub mod sim;
pub mod state;
pub mod tenant;
pub mod worker;

pub use admission::{Admission, QueuedJob};
pub use obs::AccessLog;
pub use payload::{parse_graph, to_raw_csr, PayloadKind};
pub use server::{
    clear_signal, install_signal_handlers, signalled, DrainReport, ServeConfig, Server, StopHandle,
};
pub use sim::{SimConfig, SimReport};
pub use state::{JobRecord, JobState, JobTable};
pub use tenant::{TenantSpec, TenantTable};
pub use worker::{WorkerConfig, WorkerShard};
