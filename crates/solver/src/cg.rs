//! Preconditioned conjugate gradients — an extension beyond the paper's
//! BiCGStab experiments for the SPD members of the collection (the
//! tridiagonal preconditioners are symmetric, so PCG applies directly).

use crate::bicgstab::{record_solve, SolveOpts, SolveStats, StopReason};
use crate::precond::Preconditioner;
use crate::vec_ops::{axpy, dot, norm2, spmv, sub_scaled, xpby};
use lf_kernel::Device;
use lf_sparse::{Csr, Scalar};

/// Solve SPD `A x = b` with preconditioned CG from `x = 0`.
pub fn pcg<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let out = pcg_impl(dev, a, b, precond, opts, x_true);
    record_solve("pcg", &out.1);
    out
}

fn pcg_impl<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let n = a.nrows();
    let tracer = dev.tracer().clone();
    let _solve_span = tracer.span("pcg");
    let bnorm = norm2(dev, b).max(f64::MIN_POSITIVE);
    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let mut z = vec![T::ZERO; n];
    precond.apply(dev, &r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![T::ZERO; n];
    let mut rz = dot(dev, &r, &z);

    let mut stats = SolveStats {
        iterations: 0,
        converged: false,
        rel_residual: vec![norm2(dev, &r) / bnorm],
        fre: Vec::new(),
        stop_reason: StopReason::MaxIterations,
    };
    let record_fre = |x: &[T], stats: &mut SolveStats, dev: &Device| {
        if let Some(xt) = x_true {
            let mut diff = vec![T::ZERO; x.len()];
            sub_scaled(dev, x, T::ONE, xt, &mut diff);
            let d = norm2(dev, xt);
            stats
                .fre
                .push(if d == 0.0 { 0.0 } else { norm2(dev, &diff) / d });
        }
    };
    record_fre(&x, &mut stats, dev);
    if tracer.is_active() {
        tracer.metric("rel_residual", stats.rel_residual[0]);
    }
    if stats.rel_residual[0] <= opts.tol {
        stats.converged = true;
        stats.stop_reason = StopReason::Converged;
        return (x, stats);
    }

    for it in 0..opts.max_iters {
        spmv(dev, a, &p, &mut ap);
        let pap = dot(dev, &p, &ap);
        if pap.abs() < 1e-300 {
            stats.stop_reason = StopReason::Breakdown;
            break;
        }
        let alpha = rz / pap;
        axpy(dev, T::from_f64(alpha), &p, &mut x);
        axpy(dev, T::from_f64(-alpha), &ap, &mut r);
        let relres = norm2(dev, &r) / bnorm;
        stats.iterations = it + 1;
        stats.rel_residual.push(relres);
        record_fre(&x, &mut stats, dev);
        if tracer.is_active() {
            tracer.metric("alpha", alpha);
            tracer.metric("rel_residual", relres);
        }
        if relres <= opts.tol {
            stats.converged = true;
            stats.stop_reason = StopReason::Converged;
            return (x, stats);
        }
        precond.apply(dev, &r, &mut z);
        let rz_new = dot(dev, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p
        xpby(dev, &z, T::from_f64(beta), &mut p);
    }
    (x, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::manufactured_problem;
    use crate::precond::{AlgTriScalPrecond, IdentityPrecond, JacobiPrecond};
    use lf_core::parallel::FactorConfig;
    use lf_sparse::stencil::{grid2d, ANISO1, FIVE_POINT};

    #[test]
    fn cg_converges_on_spd() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(15, 15, &FIVE_POINT);
        let (b, xt) = manufactured_problem(&dev, &a);
        let (_, st) = pcg(&dev, &a, &b, &IdentityPrecond, &SolveOpts::default(), Some(&xt));
        assert!(st.converged, "{:?}", st.stop_reason);
        assert!(st.fre.last().unwrap() < &1e-6);
    }

    #[test]
    fn preconditioned_cg_faster_on_aniso() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(20, 20, &ANISO1);
        let (b, _) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 2000,
        };
        let (_, st_j) = pcg(&dev, &a, &b, &JacobiPrecond::new(&a), &opts, None);
        let alg = AlgTriScalPrecond::new(&dev, &a, &FactorConfig::paper_default(2));
        let (_, st_a) = pcg(&dev, &a, &b, &alg, &opts, None);
        assert!(st_a.converged && st_j.converged);
        assert!(
            st_a.iterations < st_j.iterations,
            "alg {} vs jacobi {}",
            st_a.iterations,
            st_j.iterations
        );
    }
}
