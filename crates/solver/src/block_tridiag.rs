//! 2×2 block tridiagonal systems and their block-Thomas solver — the
//! numerical core of the paper's `AlgTriBlockPrecond` (Sec. 6).

use lf_sparse::Scalar;

/// A dense 2×2 matrix in row-major order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2<T> {
    /// Entries `[[a, b], [c, d]]`.
    pub m: [[T; 2]; 2],
}

impl<T: Scalar> Default for Mat2<T> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<T: Scalar> Mat2<T> {
    /// The zero matrix.
    pub fn zero() -> Self {
        Self {
            m: [[T::ZERO; 2]; 2],
        }
    }

    /// The identity.
    pub fn identity() -> Self {
        Self {
            m: [[T::ONE, T::ZERO], [T::ZERO, T::ONE]],
        }
    }

    /// Construct from entries.
    pub fn new(a: T, b: T, c: T, d: T) -> Self {
        Self { m: [[a, b], [c, d]] }
    }

    /// Determinant.
    pub fn det(&self) -> T {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Inverse; `None` when singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.det();
        if det == T::ZERO || !det.is_finite() {
            return None;
        }
        let inv = T::ONE / det;
        Some(Self::new(
            self.m[1][1] * inv,
            -self.m[0][1] * inv,
            -self.m[1][0] * inv,
            self.m[0][0] * inv,
        ))
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: [T; 2]) -> [T; 2] {
        [
            self.m[0][0] * v[0] + self.m[0][1] * v[1],
            self.m[1][0] * v[0] + self.m[1][1] * v[1],
        ]
    }

    /// Matrix–matrix product.
    pub fn mul(&self, o: &Self) -> Self {
        let mut r = Self::zero();
        for i in 0..2 {
            for j in 0..2 {
                r.m[i][j] = self.m[i][0] * o.m[0][j] + self.m[i][1] * o.m[1][j];
            }
        }
        r
    }

    /// Matrix subtraction.
    pub fn sub(&self, o: &Self) -> Self {
        let mut r = *self;
        for i in 0..2 {
            for j in 0..2 {
                r.m[i][j] -= o.m[i][j];
            }
        }
        r
    }
}

/// A 2×2 block tridiagonal system of `nb` block rows: diagonal blocks
/// `d[i]`, subdiagonal coupling `l[i]` (to block `i−1`) and superdiagonal
/// coupling `u[i]` (to block `i+1`).
#[derive(Clone, Debug)]
pub struct BlockTridiag<T> {
    /// Subdiagonal blocks (`l[0]` unused).
    pub l: Vec<Mat2<T>>,
    /// Diagonal blocks.
    pub d: Vec<Mat2<T>>,
    /// Superdiagonal blocks (`u[nb−1]` unused).
    pub u: Vec<Mat2<T>>,
}

impl<T: Scalar> BlockTridiag<T> {
    /// All-zero system of `nb` block rows.
    pub fn zeros(nb: usize) -> Self {
        Self {
            l: vec![Mat2::zero(); nb],
            d: vec![Mat2::zero(); nb],
            u: vec![Mat2::zero(); nb],
        }
    }

    /// Number of block rows.
    pub fn num_blocks(&self) -> usize {
        self.d.len()
    }

    /// Dense reference `y = B x` on the interleaved fine vector
    /// (`x.len() == 2 · nb`).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let nb = self.num_blocks();
        assert_eq!(x.len(), 2 * nb);
        let mut y = vec![T::ZERO; 2 * nb];
        for i in 0..nb {
            let xi = [x[2 * i], x[2 * i + 1]];
            let mut yi = self.d[i].mul_vec(xi);
            if i > 0 {
                let xm = [x[2 * i - 2], x[2 * i - 1]];
                let t = self.l[i].mul_vec(xm);
                yi[0] += t[0];
                yi[1] += t[1];
            }
            if i + 1 < nb {
                let xp = [x[2 * i + 2], x[2 * i + 3]];
                let t = self.u[i].mul_vec(xp);
                yi[0] += t[0];
                yi[1] += t[1];
            }
            y[2 * i] = yi[0];
            y[2 * i + 1] = yi[1];
        }
        y
    }
}

/// Block-Thomas LU factorization: `S_i = D_i − L_i S_{i−1}⁻¹ U_{i−1}`,
/// with the `S_i⁻¹` stored for the solve sweeps.
#[derive(Clone, Debug)]
pub struct BlockThomasFactorization<T> {
    s_inv: Vec<Mat2<T>>,
    l: Vec<Mat2<T>>,
    u: Vec<Mat2<T>>,
}

impl<T: Scalar> BlockThomasFactorization<T> {
    /// Factor; singular pivot blocks (e.g. fully-zero ghost blocks) fall
    /// back to the identity, making those block equations pass-throughs.
    pub fn new(b: &BlockTridiag<T>) -> Self {
        let nb = b.num_blocks();
        let mut s_inv = Vec::with_capacity(nb);
        for i in 0..nb {
            let s = if i == 0 {
                b.d[0]
            } else {
                let prev: Mat2<T> = s_inv[i - 1];
                b.d[i].sub(&b.l[i].mul(&prev).mul(&b.u[i - 1]))
            };
            s_inv.push(s.inverse().unwrap_or_else(Mat2::identity));
        }
        Self {
            s_inv,
            l: b.l.clone(),
            u: b.u.clone(),
        }
    }

    /// Number of block rows.
    pub fn num_blocks(&self) -> usize {
        self.s_inv.len()
    }

    /// Solve `B x = rhs` in place on the interleaved vector.
    pub fn solve_in_place(&self, rhs: &mut [T]) {
        let nb = self.num_blocks();
        assert_eq!(rhs.len(), 2 * nb);
        if nb == 0 {
            return;
        }
        // forward: y_i = b_i − L_i S_{i−1}⁻¹ y_{i−1}
        for i in 1..nb {
            let ym = [rhs[2 * i - 2], rhs[2 * i - 1]];
            let t = self.l[i].mul(&self.s_inv[i - 1]).mul_vec(ym);
            rhs[2 * i] -= t[0];
            rhs[2 * i + 1] -= t[1];
        }
        // backward: x_i = S_i⁻¹ (y_i − U_i x_{i+1})
        let last = self.s_inv[nb - 1].mul_vec([rhs[2 * nb - 2], rhs[2 * nb - 1]]);
        rhs[2 * nb - 2] = last[0];
        rhs[2 * nb - 1] = last[1];
        for i in (0..nb - 1).rev() {
            let xp = [rhs[2 * i + 2], rhs[2 * i + 3]];
            let t = self.u[i].mul_vec(xp);
            let yi = [rhs[2 * i] - t[0], rhs[2 * i + 1] - t[1]];
            let xi = self.s_inv[i].mul_vec(yi);
            rhs[2 * i] = xi[0];
            rhs[2 * i + 1] = xi[1];
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, rhs: &[T]) -> Vec<T> {
        let mut x = rhs.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat2_algebra() {
        let a = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.det(), -2.0);
        let inv = a.inverse().unwrap();
        let id = a.mul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((id.m[i][j] - want).abs() < 1e-12);
            }
        }
        assert_eq!(a.mul_vec([1.0, 1.0]), [3.0, 7.0]);
        assert!(Mat2::<f64>::zero().inverse().is_none());
    }

    fn random_dominant_block(nb: usize, seed: u64) -> BlockTridiag<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = BlockTridiag::zeros(nb);
        for i in 0..nb {
            let mut off = 0.0;
            if i > 0 {
                for r in 0..2 {
                    for c in 0..2 {
                        let v = rng.random_range(-1.0..1.0);
                        b.l[i].m[r][c] = v;
                        off += v.abs();
                    }
                }
            }
            if i + 1 < nb {
                for r in 0..2 {
                    for c in 0..2 {
                        let v = rng.random_range(-1.0..1.0);
                        b.u[i].m[r][c] = v;
                        off += v.abs();
                    }
                }
            }
            let coupling = rng.random_range(-0.5..0.5);
            b.d[i] = Mat2::new(off + 2.0, coupling, coupling, off + 2.0);
        }
        b
    }

    #[test]
    fn block_thomas_solves_manufactured() {
        for nb in [1usize, 2, 3, 50] {
            let b = random_dominant_block(nb, nb as u64);
            let xt: Vec<f64> = (0..2 * nb).map(|i| (0.21 * i as f64).sin()).collect();
            let rhs = b.matvec(&xt);
            let f = BlockThomasFactorization::new(&b);
            let x = f.solve(&rhs);
            for i in 0..2 * nb {
                assert!((x[i] - xt[i]).abs() < 1e-8, "nb={nb} i={i}");
            }
        }
    }

    #[test]
    fn ghost_blocks_pass_through() {
        let mut b = random_dominant_block(3, 7);
        // block 1 becomes a ghost: identity diagonal, no coupling
        b.d[1] = Mat2::identity();
        b.l[1] = Mat2::zero();
        b.u[1] = Mat2::zero();
        b.u[0] = Mat2::zero();
        b.l[2] = Mat2::zero();
        let f = BlockThomasFactorization::new(&b);
        let rhs = vec![1.0, 2.0, 5.0, 6.0, 3.0, 4.0];
        let x = f.solve(&rhs);
        assert!((x[2] - 5.0).abs() < 1e-12);
        assert!((x[3] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_tridiag_embeds_as_blocks() {
        // a scalar tridiagonal system embedded in 2×2 blocks must give the
        // same solution as the scalar Thomas solver
        use lf_core::extract::Tridiag;
        let n = 10;
        let mut t = Tridiag::<f64>::zeros(n);
        for i in 0..n {
            t.d[i] = 4.0;
            if i > 0 {
                t.dl[i] = -1.0;
            }
            if i + 1 < n {
                t.du[i] = -1.0;
            }
        }
        let nb = n / 2;
        let mut b = BlockTridiag::zeros(nb);
        for k in 0..nb {
            let (i, j) = (2 * k, 2 * k + 1);
            b.d[k] = Mat2::new(t.d[i], t.du[i], t.dl[j], t.d[j]);
            if k > 0 {
                b.l[k] = Mat2::new(0.0, t.dl[i], 0.0, 0.0);
            }
            if k + 1 < nb {
                b.u[k] = Mat2::new(0.0, 0.0, t.du[j], 0.0);
            }
        }
        let xt: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let rhs = t.matvec(&xt);
        let xb = BlockThomasFactorization::new(&b).solve(&rhs);
        let xs = crate::tridiag::ThomasFactorization::new(&t).solve(&rhs);
        for i in 0..n {
            assert!((xb[i] - xs[i]).abs() < 1e-9);
            assert!((xb[i] - xt[i]).abs() < 1e-9);
        }
    }
}
