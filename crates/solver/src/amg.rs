//! Pairwise-aggregation AMG preconditioner — an extension realizing the
//! paper's introductory application of factor-based graph coarsening
//! (Sec. 1: matchings/linear forests used for "directional coarsening in
//! algebraic multigrid" [24]).
//!
//! Each level pairs vertices with a parallel **[0,1]-factor on the
//! strongest connections** (Algorithm 2 with n = 1), aggregates pairs
//! (piecewise-constant transfer), and forms the Galerkin coarse operator
//! `A_c = Pᵀ A P`. Damped-Jacobi smoothing on every level and a dense LU
//! on the coarsest give a standard V-cycle usable as a
//! [`crate::precond::Preconditioner`].
//!
//! On anisotropic problems the matching follows the strong direction, so
//! the hierarchy semicoarsens automatically — the property the paper's
//! citation [24] builds multigrid on.

use crate::dense::DenseLu;
use crate::precond::Preconditioner;
use crate::vec_ops::spmv;
use lf_core::coarsen::coarsen_by_matching;
use lf_core::parallel::{parallel_factor, FactorConfig};
use lf_core::prepare_undirected;
use lf_kernel::{launch, Device, Traffic};
use lf_sparse::{Coo, Csr, Scalar};

/// Configuration of the AMG hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct AmgConfig {
    /// Stop coarsening below this many unknowns (dense LU takes over).
    pub coarsest_size: usize,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Damped-Jacobi smoothing steps before and after coarse correction.
    pub smoothing_steps: usize,
    /// Jacobi damping factor ω.
    pub omega: f64,
    /// Factor configuration for the pairwise matchings.
    pub factor: FactorConfig,
}

impl Default for AmgConfig {
    fn default() -> Self {
        Self {
            coarsest_size: 200,
            max_levels: 25,
            smoothing_steps: 1,
            omega: 0.67,
            factor: FactorConfig::paper_default(1).with_max_iters(20),
        }
    }
}

struct Level<T> {
    a: Csr<T>,
    inv_diag: Vec<T>,
    /// fine vertex → coarse aggregate.
    fine_to_coarse: Vec<u32>,
    n_coarse: usize,
}

/// V-cycle AMG preconditioner built by repeated [0,1]-factor aggregation.
pub struct AmgPrecond<T> {
    levels: Vec<Level<T>>,
    coarse: DenseLu<T>,
    coarse_n: usize,
    cfg: AmgConfig,
    /// Grid + operator complexity diagnostics.
    pub stats: AmgStats,
}

/// Hierarchy diagnostics.
#[derive(Clone, Debug, Default)]
pub struct AmgStats {
    /// Unknowns per level, finest first (including the coarsest).
    pub level_sizes: Vec<usize>,
    /// Σ nnz over levels / nnz(finest).
    pub operator_complexity: f64,
}

fn galerkin_pair<T: Scalar>(a: &Csr<T>, fine_to_coarse: &[u32], nc: usize) -> Csr<T> {
    let mut coo = Coo::new(nc, nc);
    for (i, j, v) in a.iter() {
        coo.push(fine_to_coarse[i as usize], fine_to_coarse[j as usize], v);
    }
    Csr::from_coo(coo)
}

fn inv_diag<T: Scalar>(a: &Csr<T>) -> Vec<T> {
    a.diagonal()
        .into_iter()
        .map(|d| if d == T::ZERO { T::ONE } else { T::ONE / d })
        .collect()
}

impl<T: Scalar> AmgPrecond<T> {
    /// Build the hierarchy for `a` (should be an M-matrix-like problem;
    /// the smoother assumes a meaningful diagonal).
    pub fn new(dev: &Device, a: &Csr<T>, cfg: AmgConfig) -> Self {
        let mut levels = Vec::new();
        let mut cur = a.clone();
        let mut total_nnz = 0usize;
        let fine_nnz = a.nnz().max(1);
        let mut sizes = vec![a.nrows()];
        while cur.nrows() > cfg.coarsest_size && levels.len() + 1 < cfg.max_levels {
            total_nnz += cur.nnz();
            let ap = prepare_undirected(&cur);
            let matching = parallel_factor(dev, &ap, &cfg.factor).factor;
            let (coarsening, _) = coarsen_by_matching(dev, &ap, &matching);
            let nc = coarsening.num_coarse();
            if nc >= cur.nrows() {
                break; // no progress (e.g. edgeless level)
            }
            let next = galerkin_pair(&cur, &coarsening.fine_to_coarse, nc);
            levels.push(Level {
                inv_diag: inv_diag(&cur),
                fine_to_coarse: coarsening.fine_to_coarse,
                n_coarse: nc,
                a: cur,
            });
            sizes.push(nc);
            cur = next;
        }
        total_nnz += cur.nnz();
        let coarse_n = cur.nrows();
        let coarse = DenseLu::from_csr(&cur).unwrap_or_else(|_| {
            // fall back to a regularized diagonal if the Galerkin coarse
            // operator became singular (e.g. pure Neumann problems)
            let mut dense = vec![T::ZERO; coarse_n * coarse_n];
            for (r, c, v) in cur.iter() {
                dense[r as usize * coarse_n + c as usize] = v;
            }
            for i in 0..coarse_n {
                dense[i * coarse_n + i] += T::from_f64(1e-8);
            }
            DenseLu::new(coarse_n, dense).expect("regularized coarse operator")
        });
        Self {
            levels,
            coarse,
            coarse_n,
            cfg,
            stats: AmgStats {
                level_sizes: sizes,
                operator_complexity: total_nnz as f64 / fine_nnz as f64,
            },
        }
    }

    /// Number of levels including the coarsest.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    fn smooth(&self, dev: &Device, level: &Level<T>, r: &[T], z: &mut [T]) {
        // z ← z + ω D⁻¹ (r − A z)
        let n = r.len();
        let mut az = vec![T::ZERO; n];
        for _ in 0..self.cfg.smoothing_steps {
            spmv(dev, &level.a, z, &mut az);
            let inv = &level.inv_diag;
            let omega = T::from_f64(self.cfg.omega);
            launch::update1(
                dev,
                "amg_jacobi",
                z,
                2 * n * std::mem::size_of::<T>(),
                |i, zi| zi + omega * inv[i] * (r[i] - az[i]),
            );
        }
    }

    fn vcycle(&self, dev: &Device, depth: usize, r: &[T], z: &mut [T]) {
        if depth == self.levels.len() {
            let x = self.coarse.solve(r);
            z.copy_from_slice(&x);
            return;
        }
        let level = &self.levels[depth];
        let n = r.len();
        for zi in z.iter_mut() {
            *zi = T::ZERO;
        }
        self.smooth(dev, level, r, z);
        // restrict the residual: rc[c] = Σ_{fine i ∈ c} (r − A z)[i]
        let mut az = vec![T::ZERO; n];
        spmv(dev, &level.a, z, &mut az);
        let mut rc = vec![T::ZERO; level.n_coarse];
        let f2c = &level.fine_to_coarse;
        dev.launch(
            "amg_restrict",
            Traffic::new().reads::<T>(2 * n).writes::<T>(level.n_coarse),
            || {
                for i in 0..n {
                    rc[f2c[i] as usize] += r[i] - az[i];
                }
            },
        );
        let mut ec = vec![T::ZERO; level.n_coarse];
        self.vcycle(dev, depth + 1, &rc, &mut ec);
        // prolong and correct: z += P ec
        launch::update1(dev, "amg_prolong", z, n * 4, |i, zi| {
            zi + ec[f2c[i] as usize]
        });
        self.smooth(dev, level, r, z);
    }
}

impl<T: Scalar> Preconditioner<T> for AmgPrecond<T> {
    fn name(&self) -> &'static str {
        "AmgPrecond"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        if self.levels.is_empty() {
            debug_assert_eq!(r.len(), self.coarse_n);
            let x = self.coarse.solve(r);
            z.copy_from_slice(&x);
            return;
        }
        self.vcycle(dev, 0, r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::{bicgstab, manufactured_problem, SolveOpts};
    use crate::precond::JacobiPrecond;
    use lf_sparse::stencil::{grid2d, ANISO1, FIVE_POINT};

    #[test]
    fn hierarchy_shrinks_geometrically() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(40, 40, &FIVE_POINT);
        let amg = AmgPrecond::new(&dev, &a, AmgConfig::default());
        assert!(amg.num_levels() >= 3);
        let s = &amg.stats.level_sizes;
        for w in s.windows(2) {
            assert!(w[1] < w[0], "level sizes must decrease: {s:?}");
            assert!(w[1] * 3 >= w[0], "pairwise coarsening halves at most");
        }
        assert!(
            amg.stats.operator_complexity < 3.0,
            "complexity {}",
            amg.stats.operator_complexity
        );
    }

    #[test]
    fn small_problem_is_direct_solve() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(5, 5, &FIVE_POINT);
        let amg = AmgPrecond::new(&dev, &a, AmgConfig::default());
        assert_eq!(amg.num_levels(), 1);
        // the apply is then an exact solve
        let xt: Vec<f64> = (0..25).map(|i| (0.3 * i as f64).cos()).collect();
        let b = a.spmv_ref(&xt);
        let mut z = vec![0.0; 25];
        amg.apply(&dev, &b, &mut z);
        for i in 0..25 {
            assert!((z[i] - xt[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn accelerates_bicgstab_on_laplacian() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(32, 32, &FIVE_POINT);
        let (b, xt) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 2000,
        };
        let (_, st_jac) = bicgstab(&dev, &a, &b, &JacobiPrecond::new(&a), &opts, Some(&xt));
        let amg = AmgPrecond::new(&dev, &a, AmgConfig::default());
        let (_, st_amg) = bicgstab(&dev, &a, &b, &amg, &opts, Some(&xt));
        assert!(st_amg.converged);
        assert!(
            st_amg.iterations * 2 < st_jac.iterations,
            "amg {} vs jacobi {}",
            st_amg.iterations,
            st_jac.iterations
        );
        assert!(st_amg.fre.last().unwrap() < &1e-6);
    }

    #[test]
    fn semicoarsens_anisotropic_problems() {
        // on ANISO1 the first-level aggregates should overwhelmingly pair
        // x-neighbors (strong direction)
        let dev = Device::default();
        let nx = 24;
        let a: Csr<f64> = grid2d(nx, 24, &ANISO1);
        let amg = AmgPrecond::new(&dev, &a, AmgConfig::default());
        let f2c = &amg.levels[0].fine_to_coarse;
        let mut pairs = std::collections::HashMap::new();
        for (i, &c) in f2c.iter().enumerate() {
            pairs.entry(c).or_insert_with(Vec::new).push(i);
        }
        let (mut x_pairs, mut total_pairs) = (0usize, 0usize);
        for (_, members) in pairs {
            if members.len() == 2 {
                total_pairs += 1;
                if members[1] == members[0] + 1 {
                    x_pairs += 1;
                }
            }
        }
        assert!(
            x_pairs * 10 >= total_pairs * 7,
            "only {x_pairs}/{total_pairs} pairs follow the strong direction"
        );
    }
}
