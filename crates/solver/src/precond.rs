//! The paper's preconditioners (Sec. 6):
//!
//! * [`IdentityPrecond`] — no preconditioning (baseline);
//! * [`JacobiPrecond`] — diagonal scaling (taken from MAGMA in the paper);
//! * [`TriScalPrecond`] — the tridiagonal part of A **in the original
//!   vertex order** (what you get without the linear forest);
//! * [`AlgTriScalPrecond`] — the *algebraically constructed* scalar
//!   tridiagonal preconditioner: [0,2]-factor → linear forest →
//!   permutation → tridiagonal coefficients;
//! * [`AlgTriBlockPrecond`] — the 2×2 block version: [0,1]-factor pairing,
//!   coarse [0,2]-factor, block tridiagonal system with ghost equations
//!   for unmatched vertices.
//!
//! All preconditioners report the *weight coverage* of the coefficients
//! they capture, which Table 5 and Fig. 4 correlate with convergence.

use crate::block_tridiag::{BlockThomasFactorization, BlockTridiag, Mat2};
use crate::tridiag::ThomasFactorization;
use lf_core::coarsen::{coarsen_by_matching, expand_block_permutation};
use lf_core::extract::Tridiag;
use lf_core::factor::graph_weight;
use lf_core::parallel::FactorConfig;
use lf_core::prelude::*;
use lf_kernel::Device;
use lf_sparse::{Csr, Scalar};

/// `z = M⁻¹ r` application interface for the Krylov solvers.
pub trait Preconditioner<T: Scalar>: Sync {
    /// Short display name (as in the paper's Fig. 4 legend).
    fn name(&self) -> &'static str;
    /// Apply the preconditioner: `z ← M⁻¹ r`.
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]);
    /// Relative weight coverage of the captured off-diagonal coefficients,
    /// when meaningful.
    fn coverage(&self) -> Option<f64> {
        None
    }
}

/// No preconditioning.
pub struct IdentityPrecond;

impl<T: Scalar> Preconditioner<T> for IdentityPrecond {
    fn name(&self) -> &'static str {
        "None"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        crate::vec_ops::copy(dev, r, z);
    }
}

/// Diagonal (Jacobi) preconditioner.
pub struct JacobiPrecond<T> {
    inv_diag: Vec<T>,
}

impl<T: Scalar> JacobiPrecond<T> {
    /// Build from the matrix diagonal; zero diagonal entries become 1.
    pub fn new(a: &Csr<T>) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d == T::ZERO { T::ONE } else { T::ONE / d })
            .collect();
        Self { inv_diag }
    }
}

impl<T: Scalar> Preconditioner<T> for JacobiPrecond<T> {
    fn name(&self) -> &'static str {
        "Jacobi"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        let inv = &self.inv_diag;
        lf_kernel::launch::map1(dev, "jacobi_apply", z, 2 * r.len() * std::mem::size_of::<T>(), |i| {
            inv[i] * r[i]
        });
    }
}

/// Tridiagonal part of A in the **original** ordering — the baseline the
/// algebraic preconditioners are compared against.
pub struct TriScalPrecond<T> {
    thomas: ThomasFactorization<T>,
    coverage: f64,
}

impl<T: Scalar> TriScalPrecond<T> {
    /// Extract `(dl, d, du)` from A as stored and factor.
    pub fn new(a: &Csr<T>) -> Self {
        let n = a.nrows();
        let mut t = Tridiag::zeros(n);
        for i in 0..n {
            t.d[i] = a.get(i, i);
            if i > 0 {
                t.dl[i] = a.get(i, i - 1);
            }
            if i + 1 < n {
                t.du[i] = a.get(i, i + 1);
            }
        }
        Self {
            thomas: ThomasFactorization::new(&t),
            coverage: identity_coverage(a),
        }
    }
}

impl<T: Scalar> Preconditioner<T> for TriScalPrecond<T> {
    fn name(&self) -> &'static str {
        "TriScalPrecond"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        let traffic = lf_kernel::Traffic::new()
            .reads::<T>(4 * r.len())
            .writes::<T>(r.len());
        dev.launch("triscal_apply", traffic, || {
            z.copy_from_slice(r);
            self.thomas.solve_in_place(z);
        });
    }
    fn coverage(&self) -> Option<f64> {
        Some(self.coverage)
    }
}

/// The paper's algebraic scalar tridiagonal preconditioner: solve the
/// forest tridiagonal system in the permuted order,
/// `z = Q T⁻¹ Qᵀ r`.
pub struct AlgTriScalPrecond<T> {
    thomas: ThomasFactorization<T>,
    /// `perm[new] = old`.
    perm: Vec<u32>,
    coverage: f64,
}

impl<T: Scalar> AlgTriScalPrecond<T> {
    /// Run the full linear-forest pipeline on `a` and factor the resulting
    /// tridiagonal system. Panics where [`Self::try_new`] errors.
    pub fn new(dev: &Device, a: &Csr<T>, cfg: &FactorConfig) -> Self {
        Self::try_new(dev, a, cfg).expect("linear-forest pipeline failed")
    }

    /// Fallible [`Self::new`]: reports pipeline failures (wrong degree
    /// bound, non-square matrix) instead of panicking.
    pub fn try_new(
        dev: &Device,
        a: &Csr<T>,
        cfg: &FactorConfig,
    ) -> Result<Self, lf_core::PipelineError> {
        let (tri, forest, _) = tridiagonal_from_matrix(dev, a, cfg)?;
        Ok(Self {
            thomas: ThomasFactorization::new(&tri),
            perm: forest.perm.clone(),
            coverage: weight_coverage(&forest.factor, a),
        })
    }

    /// The permutation used (for inspection).
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }
}

impl<T: Scalar> Preconditioner<T> for AlgTriScalPrecond<T> {
    fn name(&self) -> &'static str {
        "AlgTriScalPrecond"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        let traffic = lf_kernel::Traffic::new()
            .reads::<T>(5 * r.len())
            .reads::<u32>(2 * r.len())
            .writes::<T>(r.len());
        dev.launch("algtriscal_apply", traffic, || {
            let mut rp: Vec<T> = self.perm.iter().map(|&o| r[o as usize]).collect();
            self.thomas.solve_in_place(&mut rp);
            for (k, &o) in self.perm.iter().enumerate() {
                z[o as usize] = rp[k];
            }
        });
    }
    fn coverage(&self) -> Option<f64> {
        Some(self.coverage)
    }
}

/// The paper's algebraic 2×2 block tridiagonal preconditioner
/// (`AlgTriBlockPrecond`): a [0,1]-factor pairs vertices, a [0,2]-factor
/// on the pair graph orders the pairs into chains, and unmatched vertices
/// get uncoupled ghost equations (unit diagonal) so the block structure
/// stays uniform.
pub struct AlgTriBlockPrecond<T> {
    thomas: BlockThomasFactorization<T>,
    /// Fine vertex for each extended row (u32::MAX = ghost).
    layout: Vec<u32>,
    coverage: f64,
}

impl<T: Scalar> AlgTriBlockPrecond<T> {
    /// Build from the matrix; `cfg2` configures both factor computations
    /// (its `n` is overridden per stage; Table 5 varies `m` between 1 and
    /// 5 for this preconditioner).
    pub fn new(dev: &Device, a: &Csr<T>, cfg: &FactorConfig) -> Self {
        Self::try_new(dev, a, cfg).expect("linear-forest pipeline failed")
    }

    /// Fallible [`Self::new`]: reports pipeline failures instead of
    /// panicking.
    pub fn try_new(
        dev: &Device,
        a: &Csr<T>,
        cfg: &FactorConfig,
    ) -> Result<Self, lf_core::PipelineError> {
        let ap = prepare_undirected(a);
        // stage 1: [0,1]-factor pairing on the fine graph
        let m_cfg = FactorConfig { n: 1, ..*cfg };
        let matching = try_parallel_factor(dev, &ap, &m_cfg)?.factor;
        let (coarsening, coarse) = coarsen_by_matching(dev, &ap, &matching);
        // stage 2: [0,2]-factor + linear forest on the coarse graph
        let c_cfg = FactorConfig { n: 2, ..*cfg };
        let (forest, _) = extract_linear_forest(dev, &coarse, &c_cfg)?;
        let layout = expand_block_permutation(&coarsening, &forest.perm);

        // assemble the extended 2×2 block tridiagonal system from A
        let nb = forest.perm.len();
        let mut sys = BlockTridiag::zeros(nb);
        let entry = |i: u32, j: u32| -> T {
            if i == u32::MAX || j == u32::MAX {
                T::ZERO
            } else {
                a.get(i as usize, j as usize)
            }
        };
        let mut captured = 0.0f64;
        for k in 0..nb {
            let (f0, f1) = (layout[2 * k], layout[2 * k + 1]);
            let mut d = Mat2::new(entry(f0, f0), entry(f0, f1), entry(f1, f0), entry(f1, f1));
            if f1 == u32::MAX {
                // ghost equation: diagonal 1 (paper Sec. 6)
                d.m[1][1] = T::ONE;
            }
            captured += d.m[0][1].to_f64().abs() + d.m[1][0].to_f64().abs();
            sys.d[k] = d;
            if k + 1 < nb {
                // couple only consecutive pairs on the same coarse path
                let (c_here, c_next) = (forest.perm[k], forest.perm[k + 1]);
                if forest.factor.contains(c_here as usize, c_next) {
                    let (g0, g1) = (layout[2 * k + 2], layout[2 * k + 3]);
                    let u = Mat2::new(entry(f0, g0), entry(f0, g1), entry(f1, g0), entry(f1, g1));
                    let l = Mat2::new(entry(g0, f0), entry(g0, f1), entry(g1, f0), entry(g1, f1));
                    for r in 0..2 {
                        for c in 0..2 {
                            captured += u.m[r][c].to_f64().abs() + l.m[r][c].to_f64().abs();
                        }
                    }
                    sys.u[k] = u;
                    sys.l[k + 1] = l;
                }
            }
        }
        let denom = graph_weight(a);
        Ok(Self {
            thomas: BlockThomasFactorization::new(&sys),
            layout,
            coverage: if denom == 0.0 { 0.0 } else { captured / denom },
        })
    }

    /// Number of 2×2 blocks (including ghost-padded singletons).
    pub fn num_blocks(&self) -> usize {
        self.layout.len() / 2
    }

    /// Automatic charging-period selection — the "automatic parameter
    /// control in nested factor computations" the paper explicitly defers
    /// (Sec. 6). Builds the preconditioner for every `m` in `candidates`
    /// (Table 5 uses {1, 5}) and keeps the one with the highest weight
    /// coverage, returning it together with the winning `m`.
    pub fn new_auto(
        dev: &Device,
        a: &Csr<T>,
        base: &FactorConfig,
        candidates: &[usize],
    ) -> (Self, usize) {
        assert!(!candidates.is_empty(), "need at least one candidate m");
        let mut best: Option<(Self, usize)> = None;
        for &m in candidates {
            let cfg = FactorConfig { m, ..*base };
            let p = Self::new(dev, a, &cfg);
            if best
                .as_ref()
                .map(|(b, _)| p.coverage > b.coverage)
                .unwrap_or(true)
            {
                best = Some((p, m));
            }
        }
        best.expect("candidates nonempty")
    }
}

impl<T: Scalar> Preconditioner<T> for AlgTriBlockPrecond<T> {
    fn name(&self) -> &'static str {
        "AlgTriBlockPrecond"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        let traffic = lf_kernel::Traffic::new()
            .reads::<T>(r.len() + 14 * self.num_blocks())
            .reads::<u32>(self.layout.len())
            .writes::<T>(r.len());
        dev.launch("algtriblock_apply", traffic, || {
            let mut ext: Vec<T> = self
                .layout
                .iter()
                .map(|&f| if f == u32::MAX { T::ZERO } else { r[f as usize] })
                .collect();
            self.thomas.solve_in_place(&mut ext);
            for (row, &f) in self.layout.iter().enumerate() {
                if f != u32::MAX {
                    z[f as usize] = ext[row];
                }
            }
        });
    }
    fn coverage(&self) -> Option<f64> {
        Some(self.coverage)
    }
}

/// 2×2 block-Jacobi preconditioner: the diagonal blocks of the
/// [0,1]-factor pairing, inverted — the block analog of [`JacobiPrecond`]
/// and the "no chaining" ablation point between Jacobi and
/// [`AlgTriBlockPrecond`].
pub struct BlockJacobiPrecond<T> {
    /// Fine vertex per extended row (u32::MAX = ghost singleton pad).
    layout: Vec<u32>,
    inv_blocks: Vec<Mat2<T>>,
    coverage: f64,
}

impl<T: Scalar> BlockJacobiPrecond<T> {
    /// Pair vertices with a parallel [0,1]-factor and invert each pair's
    /// 2×2 diagonal block.
    pub fn new(dev: &Device, a: &Csr<T>, cfg: &FactorConfig) -> Self {
        let ap = prepare_undirected(a);
        let m_cfg = FactorConfig { n: 1, ..*cfg };
        let matching = parallel_factor(dev, &ap, &m_cfg).factor;
        let (coarsening, _) = coarsen_by_matching(dev, &ap, &matching);
        let mut layout = Vec::with_capacity(2 * coarsening.num_coarse());
        let mut inv_blocks = Vec::with_capacity(coarsening.num_coarse());
        let mut captured = 0.0f64;
        for &(v, w) in &coarsening.groups {
            layout.push(v);
            layout.push(w.unwrap_or(u32::MAX));
            let block = match w {
                Some(w) => {
                    let (vu, wu) = (v as usize, w as usize);
                    captured += a.get(vu, wu).to_f64().abs() + a.get(wu, vu).to_f64().abs();
                    Mat2::new(a.get(vu, vu), a.get(vu, wu), a.get(wu, vu), a.get(wu, wu))
                }
                None => {
                    let d = a.get(v as usize, v as usize);
                    Mat2::new(d, T::ZERO, T::ZERO, T::ONE)
                }
            };
            inv_blocks.push(block.inverse().unwrap_or_else(Mat2::identity));
        }
        let denom = graph_weight(a);
        Self {
            layout,
            inv_blocks,
            coverage: if denom == 0.0 { 0.0 } else { captured / denom },
        }
    }
}

impl<T: Scalar> Preconditioner<T> for BlockJacobiPrecond<T> {
    fn name(&self) -> &'static str {
        "BlockJacobiPrecond"
    }
    fn apply(&self, dev: &Device, r: &[T], z: &mut [T]) {
        let traffic = lf_kernel::Traffic::new()
            .reads::<T>(r.len())
            .reads::<Mat2<T>>(self.inv_blocks.len())
            .writes::<T>(r.len());
        dev.launch("blockjacobi_apply", traffic, || {
            for (k, inv) in self.inv_blocks.iter().enumerate() {
                let (f0, f1) = (self.layout[2 * k], self.layout[2 * k + 1]);
                let r0 = if f0 == u32::MAX { T::ZERO } else { r[f0 as usize] };
                let r1 = if f1 == u32::MAX { T::ZERO } else { r[f1 as usize] };
                let x = inv.mul_vec([r0, r1]);
                if f0 != u32::MAX {
                    z[f0 as usize] = x[0];
                }
                if f1 != u32::MAX {
                    z[f1 as usize] = x[1];
                }
            }
        });
    }
    fn coverage(&self) -> Option<f64> {
        Some(self.coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};

    fn apply_dense<T: Scalar, P: Preconditioner<T>>(p: &P, n: usize, dev: &Device) -> Vec<Vec<T>> {
        // build M⁻¹ column by column to verify linear-operator behaviour
        (0..n)
            .map(|j| {
                let mut e = vec![T::ZERO; n];
                e[j] = T::ONE;
                let mut z = vec![T::ZERO; n];
                p.apply(dev, &e, &mut z);
                z
            })
            .collect()
    }

    #[test]
    fn identity_and_jacobi() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(4, 4, &FIVE_POINT);
        let r: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut z = vec![0.0; 16];
        IdentityPrecond.apply(&dev, &r, &mut z);
        assert_eq!(z, r);
        let j = JacobiPrecond::new(&a);
        j.apply(&dev, &r, &mut z);
        for i in 0..16 {
            assert!((z[i] - r[i] / a.get(i, i)).abs() < 1e-12);
        }
        assert_eq!(Preconditioner::<f64>::name(&j), "Jacobi");
    }

    #[test]
    fn triscal_solves_its_tridiagonal() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(5, 3, &FIVE_POINT);
        let p = TriScalPrecond::new(&a);
        // applying M then M⁻¹ must round-trip for tridiagonal vectors:
        // M z = r where M is the tridiagonal part of A
        let n = a.nrows();
        let mut t = Tridiag::zeros(n);
        for i in 0..n {
            t.d[i] = a.get(i, i);
            if i > 0 {
                t.dl[i] = a.get(i, i - 1);
            }
            if i + 1 < n {
                t.du[i] = a.get(i, i + 1);
            }
        }
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let r = t.matvec(&xt);
        let mut z = vec![0.0; n];
        p.apply(&dev, &r, &mut z);
        for i in 0..n {
            assert!((z[i] - xt[i]).abs() < 1e-9);
        }
        assert!(p.coverage().unwrap() > 0.0);
    }

    #[test]
    fn algtriscal_is_spd_preserving_permuted_solve() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(8, 8, &ANISO1);
        let cfg = FactorConfig::paper_default(2);
        let p = AlgTriScalPrecond::new(&dev, &a, &cfg);
        // coverage must beat the natural ordering on ANISO1 (Table 5:
        // 0.67 vs c_id = 0.68 — comparable; but must be well over half)
        assert!(p.coverage().unwrap() > 0.5, "{}", p.coverage().unwrap());
        // M⁻¹ is a linear operator: apply to e_j columns, check symmetry
        // (A and the forest system are symmetric here)
        let minv = apply_dense(&p, 64, &dev);
        for (i, row) in minv.iter().enumerate() {
            for (j, &v) in row.iter().enumerate().skip(i + 1) {
                assert!(
                    (v - minv[j][i]).abs() < 1e-9,
                    "M⁻¹ not symmetric at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn algtriblock_builds_and_applies() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(6, 6, &ANISO2);
        let cfg = FactorConfig::paper_default(2);
        let p = AlgTriBlockPrecond::new(&dev, &a, &cfg);
        assert!(p.num_blocks() >= 18, "36 vertices → ≥ 18 blocks");
        let r: Vec<f64> = (0..36).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut z = vec![0.0; 36];
        p.apply(&dev, &r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!(z.iter().any(|&v| v != 0.0));
        // block coverage should capture at least the matching weight
        assert!(p.coverage().unwrap() > 0.3, "{}", p.coverage().unwrap());
    }

    #[test]
    fn block_jacobi_sits_between_jacobi_and_block_tridiag() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(12, 12, &ANISO1);
        let cfg = FactorConfig::paper_default(2);
        let bj = BlockJacobiPrecond::new(&dev, &a, &cfg);
        let bt = AlgTriBlockPrecond::new(&dev, &a, &cfg);
        let c_bj = Preconditioner::<f64>::coverage(&bj).unwrap();
        let c_bt = Preconditioner::<f64>::coverage(&bt).unwrap();
        assert!(c_bj > 0.0);
        assert!(c_bt > c_bj, "chaining pairs must add coverage: {c_bt} vs {c_bj}");
        // exactness on a pure pair matrix: block-Jacobi is a direct solve
        let mut coo = lf_sparse::Coo::<f64>::new(4, 4);
        coo.push(0, 0, 3.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 2, 4.0);
        coo.push(3, 3, 4.0);
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(2, 3, -2.0);
        let pairs = Csr::from_coo(coo);
        let p = BlockJacobiPrecond::new(&dev, &pairs, &cfg);
        let xt = vec![1.0, -2.0, 0.5, 3.0];
        let b = pairs.spmv_ref(&xt);
        let mut z = vec![0.0; 4];
        p.apply(&dev, &b, &mut z);
        for i in 0..4 {
            assert!((z[i] - xt[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn new_auto_picks_the_better_m() {
        let dev = Device::default();
        let base = FactorConfig::paper_default(2);
        // uniform weights (ECOLOGY class): m = 5 required
        let uni: Csr<f64> = grid2d(14, 14, &FIVE_POINT);
        let (auto, m) = AlgTriBlockPrecond::new_auto(&dev, &uni, &base, &[1, 5]);
        assert_eq!(m, 5, "tied weights need charging");
        let c_auto = Preconditioner::<f64>::coverage(&auto).unwrap();
        let c1 = Preconditioner::<f64>::coverage(&AlgTriBlockPrecond::new(
            &dev,
            &uni,
            &FactorConfig { m: 1, ..base },
        ))
        .unwrap();
        assert!(c_auto >= c1);
        // distinct anisotropic weights: m = 1 wins (no charging at all)
        let aniso: Csr<f64> = grid2d(14, 14, &ANISO1);
        let (_, m) = AlgTriBlockPrecond::new_auto(&dev, &aniso, &base, &[1, 5]);
        assert_eq!(m, 1, "distinct weights prefer uncharged propositions");
    }

    #[test]
    fn coverage_ordering_matches_paper_expectations() {
        // On ANISO2 the natural tridiagonal is weak (c_id = 0.13) while the
        // algebraic preconditioners capture the strong anti-diagonal chains.
        let dev = Device::default();
        let a: Csr<f64> = grid2d(10, 10, &ANISO2);
        let cfg = FactorConfig::paper_default(2);
        let tri = TriScalPrecond::new(&a);
        let alg = AlgTriScalPrecond::new(&dev, &a, &cfg);
        assert!(
            alg.coverage().unwrap() > tri.coverage().unwrap() + 0.3,
            "alg {:?} vs tri {:?}",
            alg.coverage(),
            tri.coverage()
        );
    }
}
