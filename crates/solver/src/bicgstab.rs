//! Preconditioned BiCGStab (van der Vorst; Saad [34]) — the outer Krylov
//! solver of the paper's Fig. 4 experiments, with the paper's metrics: the
//! relative residual norm and the **forward relative error**
//! `FRE = ‖x − x_t‖₂ / ‖x_t‖₂` against a manufactured true solution
//! `x_t[i] = sin(16πi/N)`.

use crate::precond::Preconditioner;
use crate::vec_ops::{axpy, copy, dot, norm2, spmv, sub_scaled, xpby};
use lf_kernel::{launch, Device};
use lf_sparse::{Csr, Scalar};

/// Convergence history and status of a solve.
#[derive(Clone, Debug)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// Relative residual ‖r_k‖/‖b‖ per iteration (index 0 = initial).
    pub rel_residual: Vec<f64>,
    /// Forward relative error per iteration when a true solution is given.
    pub fre: Vec<f64>,
    /// Reason the solve stopped.
    pub stop_reason: StopReason,
}

/// Why a Krylov solve terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Residual tolerance reached.
    Converged,
    /// Iteration limit hit.
    MaxIterations,
    /// A scalar broke down (ρ or ω ≈ 0) — restart would be needed.
    Breakdown,
}

/// Options for [`bicgstab`].
#[derive(Clone, Copy, Debug)]
pub struct SolveOpts {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
}

impl Default for SolveOpts {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 1000,
        }
    }
}

/// The paper's manufactured problem: `x_t[i] = sin(16πi/N)`, `b = A·x_t`.
/// Returns `(b, x_t)`.
pub fn manufactured_problem<T: Scalar>(dev: &Device, a: &Csr<T>) -> (Vec<T>, Vec<T>) {
    let n = a.nrows();
    let mut xt = vec![T::ZERO; n];
    launch::map1(dev, "manufacture_xt", &mut xt, 0, |i| {
        T::from_f64((16.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
    });
    let mut b = vec![T::ZERO; n];
    spmv(dev, a, &xt, &mut b);
    (b, xt)
}

fn fre<T: Scalar>(dev: &Device, x: &[T], xt: &[T]) -> f64 {
    let mut diff = vec![T::ZERO; x.len()];
    sub_scaled(dev, x, T::ONE, xt, &mut diff);
    let denom = norm2(dev, xt);
    if denom == 0.0 {
        0.0
    } else {
        norm2(dev, &diff) / denom
    }
}

/// Record a finished Krylov solve into the process-wide metrics registry
/// (iterations-to-termination histogram plus solve/convergence counters,
/// all labeled by solver name). One relaxed load when metrics are off.
pub(crate) fn record_solve(solver: &'static str, stats: &SolveStats) {
    if !lf_metrics::enabled() {
        return;
    }
    let m = lf_metrics::global();
    m.counter_with("lf_solver_solves_total", "Krylov solves run.", ("solver", solver))
        .inc();
    if stats.converged {
        m.counter_with(
            "lf_solver_converged_total",
            "Krylov solves that met the residual tolerance.",
            ("solver", solver),
        )
        .inc();
    }
    m.histogram_with(
        "lf_solver_iterations",
        "Iterations to termination per Krylov solve.",
        lf_metrics::Unit::Count,
        ("solver", solver),
    )
    .record(stats.iterations as u64);
}

/// Solve `A x = b` with preconditioned BiCGStab starting from `x = 0`.
/// When `x_true` is given, the FRE is recorded each iteration (Fig. 4's
/// second metric).
pub fn bicgstab<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let out = bicgstab_impl(dev, a, b, precond, opts, x_true);
    record_solve("bicgstab", &out.1);
    out
}

fn bicgstab_impl<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    let tracer = dev.tracer().clone();
    let _solve_span = tracer.span("bicgstab");
    let bnorm = norm2(dev, b).max(f64::MIN_POSITIVE);

    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let rhat = b.to_vec(); // r̂₀ = r₀ for x₀ = 0
    let mut p = vec![T::ZERO; n];
    let mut v = vec![T::ZERO; n];
    let mut phat = vec![T::ZERO; n];
    let mut shat = vec![T::ZERO; n];
    let mut s = vec![T::ZERO; n];
    let mut t = vec![T::ZERO; n];
    let mut tmp = vec![T::ZERO; n];

    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;

    let mut stats = SolveStats {
        iterations: 0,
        converged: false,
        rel_residual: vec![norm2(dev, &r) / bnorm],
        fre: Vec::new(),
        stop_reason: StopReason::MaxIterations,
    };
    if let Some(xt) = x_true {
        stats.fre.push(fre(dev, &x, xt));
    }
    if tracer.is_active() {
        tracer.metric("rel_residual", stats.rel_residual[0]);
    }
    if stats.rel_residual[0] <= opts.tol {
        stats.converged = true;
        stats.stop_reason = StopReason::Converged;
        return (x, stats);
    }

    for it in 0..opts.max_iters {
        let rho_new = dot(dev, &rhat, &r);
        if rho_new.abs() < 1e-300 || omega.abs() < 1e-300 {
            stats.stop_reason = StopReason::Breakdown;
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p − omega v)
        axpy(dev, T::from_f64(-omega), &v, &mut p);
        xpby(dev, &r, T::from_f64(beta), &mut p);
        precond.apply(dev, &p, &mut phat);
        spmv(dev, a, &phat, &mut v);
        let rhat_v = dot(dev, &rhat, &v);
        if rhat_v.abs() < 1e-300 {
            stats.stop_reason = StopReason::Breakdown;
            break;
        }
        alpha = rho / rhat_v;
        // s = r − alpha v
        sub_scaled(dev, &r, T::from_f64(alpha), &v, &mut s);
        let snorm = norm2(dev, &s);
        if snorm / bnorm <= opts.tol {
            axpy(dev, T::from_f64(alpha), &phat, &mut x);
            stats.iterations = it + 1;
            stats.rel_residual.push(snorm / bnorm);
            if tracer.is_active() {
                tracer.metric("rho", rho);
                tracer.metric("omega", omega);
                tracer.metric("rel_residual", snorm / bnorm);
            }
            if let Some(xt) = x_true {
                stats.fre.push(fre(dev, &x, xt));
            }
            stats.converged = true;
            stats.stop_reason = StopReason::Converged;
            return (x, stats);
        }
        precond.apply(dev, &s, &mut shat);
        spmv(dev, a, &shat, &mut t);
        let tt = dot(dev, &t, &t);
        if tt.abs() < 1e-300 {
            stats.stop_reason = StopReason::Breakdown;
            break;
        }
        omega = dot(dev, &t, &s) / tt;
        // x += alpha·phat + omega·shat
        axpy(dev, T::from_f64(alpha), &phat, &mut x);
        axpy(dev, T::from_f64(omega), &shat, &mut x);
        // r = s − omega t
        sub_scaled(dev, &s, T::from_f64(omega), &t, &mut tmp);
        copy(dev, &tmp, &mut r);

        let relres = norm2(dev, &r) / bnorm;
        stats.iterations = it + 1;
        stats.rel_residual.push(relres);
        if tracer.is_active() {
            tracer.metric("rho", rho);
            tracer.metric("omega", omega);
            tracer.metric("rel_residual", relres);
        }
        if let Some(xt) = x_true {
            stats.fre.push(fre(dev, &x, xt));
        }
        if relres <= opts.tol {
            stats.converged = true;
            stats.stop_reason = StopReason::Converged;
            return (x, stats);
        }
        if !relres.is_finite() {
            stats.stop_reason = StopReason::Breakdown;
            break;
        }
    }
    (x, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{
        AlgTriScalPrecond, IdentityPrecond, JacobiPrecond, TriScalPrecond,
    };
    use lf_core::parallel::FactorConfig;
    use lf_sparse::stencil::{grid2d, ANISO2, FIVE_POINT};

    #[test]
    fn solves_feed_metrics_registry_when_enabled() {
        // Process-global registry: assert only deltas our own solve caused
        // on the bicgstab-labeled series.
        let dev = Device::default();
        let a = grid2d::<f64>(12, 12, &FIVE_POINT);
        let (b, xt) = manufactured_problem(&dev, &a);
        let m = lf_metrics::global();
        let solves = m.counter_with("lf_solver_solves_total", "Krylov solves run.", ("solver", "bicgstab"));
        let before = solves.get();
        lf_metrics::enable();
        let (_, st) = bicgstab(&dev, &a, &b, &IdentityPrecond, &SolveOpts::default(), Some(&xt));
        lf_metrics::disable();
        assert!(st.converged);
        assert!(solves.get() > before, "solve counter did not advance");
        let snap = m.snapshot();
        let iters = snap
            .families
            .iter()
            .find(|f| f.name == "lf_solver_iterations")
            .expect("iterations histogram");
        assert_eq!(iters.label_key.as_deref(), Some("solver"));
        assert!(iters.series.iter().any(|s| s.label.as_deref() == Some("bicgstab")));
    }

    #[test]
    fn unpreconditioned_converges_on_laplacian() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(12, 12, &FIVE_POINT);
        let (b, xt) = manufactured_problem(&dev, &a);
        let (x, st) = bicgstab(
            &dev,
            &a,
            &b,
            &IdentityPrecond,
            &SolveOpts::default(),
            Some(&xt),
        );
        assert!(st.converged, "{:?}", st.stop_reason);
        assert!(st.fre.last().unwrap() < &1e-6, "fre {:?}", st.fre.last());
        let r = a.spmv_ref(&x);
        let res: f64 = r
            .iter()
            .zip(&b)
            .map(|(y, bb)| (y - bb) * (y - bb))
            .sum::<f64>()
            .sqrt();
        assert!(res / norm2(&dev, &b) < 1e-7);
    }

    #[test]
    fn residual_history_monotone_enough() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(10, 10, &FIVE_POINT);
        let (b, _) = manufactured_problem(&dev, &a);
        let (_, st) = bicgstab(
            &dev,
            &a,
            &b,
            &JacobiPrecond::new(&a),
            &SolveOpts::default(),
            None,
        );
        assert!(st.converged);
        assert!(st.rel_residual.first().unwrap() > st.rel_residual.last().unwrap());
        assert_eq!(st.rel_residual.len(), st.iterations + 1);
    }

    #[test]
    fn preconditioning_helps_on_aniso2() {
        // the paper's headline effect: AlgTriScal ≪ TriScal/Jacobi in
        // iteration count on strongly anisotropic problems
        let dev = Device::default();
        let a: Csr<f64> = grid2d(24, 24, &ANISO2);
        let (b, xt) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 3000,
        };
        let (_, st_jac) = bicgstab(&dev, &a, &b, &JacobiPrecond::new(&a), &opts, Some(&xt));
        let (_, st_tri) = bicgstab(&dev, &a, &b, &TriScalPrecond::new(&a), &opts, Some(&xt));
        let alg = AlgTriScalPrecond::new(&dev, &a, &FactorConfig::paper_default(2));
        let (_, st_alg) = bicgstab(&dev, &a, &b, &alg, &opts, Some(&xt));
        assert!(st_alg.converged);
        assert!(
            st_alg.iterations < st_jac.iterations,
            "alg {} vs jacobi {}",
            st_alg.iterations,
            st_jac.iterations
        );
        assert!(
            st_alg.iterations <= st_tri.iterations,
            "alg {} vs triscal {}",
            st_alg.iterations,
            st_tri.iterations
        );
    }

    #[test]
    fn zero_rhs_is_immediately_converged() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(4, 4, &FIVE_POINT);
        let b = vec![0.0; 16];
        let (x, st) = bicgstab(&dev, &a, &b, &IdentityPrecond, &SolveOpts::default(), None);
        assert!(st.converged);
        assert_eq!(st.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn manufactured_solution_shape() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(8, 8, &FIVE_POINT);
        let (_, xt) = manufactured_problem(&dev, &a);
        assert_eq!(xt[0], 0.0);
        let n = 64.0;
        let want = (16.0 * std::f64::consts::PI * 5.0 / n).sin();
        assert!((xt[5] - want).abs() < 1e-12);
    }
}
