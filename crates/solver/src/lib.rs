//! # lf-solver — iterative-solver substrate
//!
//! BiCGStab (the paper's outer Krylov solver, Fig. 4) and CG, tridiagonal
//! solves (sequential Thomas and device-parallel cyclic reduction), 2×2
//! block tridiagonal solves, and the paper's four preconditioners:
//! Jacobi, `TriScalPrecond` (natural-order tridiagonal part),
//! `AlgTriScalPrecond` (linear-forest tridiagonal) and
//! `AlgTriBlockPrecond` ([0,1]-coarsened 2×2 block tridiagonal).
//!
//! ```
//! use lf_kernel::Device;
//! use lf_solver::prelude::*;
//! use lf_sparse::prelude::*;
//!
//! let dev = Device::default();
//! let a: Csr<f64> = grid2d(8, 8, &FIVE_POINT);
//! let (b, xt) = manufactured_problem(&dev, &a);
//! let (x, stats) = bicgstab(&dev, &a, &b, &JacobiPrecond::new(&a),
//!                           &SolveOpts::default(), Some(&xt));
//! assert!(stats.converged);
//! assert!((x[5] - xt[5]).abs() < 1e-5);
//! ```

#![warn(missing_docs)]

pub mod amg;
pub mod bicgstab;
pub mod block_tridiag;
pub mod cg;
pub mod dense;
pub mod gmres;
pub mod precond;
pub mod tridiag;
pub mod vec_ops;

pub use bicgstab::{bicgstab, manufactured_problem, SolveOpts, SolveStats, StopReason};
pub use amg::{AmgConfig, AmgPrecond};
pub use cg::pcg;
pub use dense::DenseLu;
pub use gmres::gmres;
pub use precond::{
    AlgTriBlockPrecond, AlgTriScalPrecond, BlockJacobiPrecond, IdentityPrecond, JacobiPrecond,
    Preconditioner, TriScalPrecond,
};
pub use tridiag::{pcr_solve, ThomasFactorization};

/// Commonly used items.
pub mod prelude {
    pub use crate::bicgstab::{bicgstab, manufactured_problem, SolveOpts, SolveStats};
    pub use crate::amg::{AmgConfig, AmgPrecond};
    pub use crate::cg::pcg;
    pub use crate::gmres::gmres;
    pub use crate::precond::{
        AlgTriBlockPrecond, AlgTriScalPrecond, BlockJacobiPrecond, IdentityPrecond,
        JacobiPrecond, Preconditioner, TriScalPrecond,
    };
    pub use crate::tridiag::{pcr_solve, ThomasFactorization};
}
