//! Small dense LU with partial pivoting — the coarsest-level solver of
//! the AMG preconditioner (and a reference solver for tests).

use lf_sparse::{Csr, Scalar};

/// LU factorization with partial pivoting of a small dense matrix.
#[derive(Clone, Debug)]
pub struct DenseLu<T> {
    n: usize,
    /// Combined L (unit lower) and U factors, row-major.
    lu: Vec<T>,
    /// Row permutation: `piv[k]` is the original row in position k.
    piv: Vec<u32>,
}

/// Error for singular systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is numerically singular")
    }
}

impl std::error::Error for SingularMatrix {}

impl<T: Scalar> DenseLu<T> {
    /// Factor a dense row-major matrix.
    pub fn new(n: usize, mut lu: Vec<T>) -> Result<Self, SingularMatrix> {
        assert_eq!(lu.len(), n * n);
        let mut piv: Vec<u32> = (0..n as u32).collect();
        for k in 0..n {
            // partial pivot
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best == T::ZERO || !best.is_finite() {
                return Err(SingularMatrix);
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let m = lu[r * n + k] / pivot;
                lu[r * n + k] = m;
                for j in (k + 1)..n {
                    let sub = m * lu[k * n + j];
                    lu[r * n + j] -= sub;
                }
            }
        }
        Ok(Self { n, lu, piv })
    }

    /// Factor from a sparse matrix (densified).
    pub fn from_csr(a: &Csr<T>) -> Result<Self, SingularMatrix> {
        let n = a.nrows();
        assert_eq!(n, a.ncols());
        let mut dense = vec![T::ZERO; n * n];
        for (r, c, v) in a.iter() {
            dense[r as usize * n + c as usize] = v;
        }
        Self::new(n, dense)
    }

    /// System order.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // apply permutation
        let mut x: Vec<T> = self.piv.iter().map(|&p| b[p as usize]).collect();
        // forward: L y = Pb
        for r in 1..n {
            for k in 0..r {
                let sub = self.lu[r * n + k] * x[k];
                x[r] -= sub;
            }
        }
        // backward: U x = y
        for r in (0..n).rev() {
            for k in (r + 1)..n {
                let sub = self.lu[r * n + k] * x[k];
                x[r] -= sub;
            }
            x[r] /= self.lu[r * n + r];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::random::random_spd;

    #[test]
    fn solves_small_system() {
        // [[2, 1], [1, 3]] x = [3, 5] → x = [0.8, 1.4]
        let lu = DenseLu::new(2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]]: needs the row swap
        let lu = DenseLu::new(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn detects_singular() {
        assert!(DenseLu::new(2, vec![1.0, 2.0, 2.0, 4.0]).is_err());
        assert!(DenseLu::new(1, vec![0.0]).is_err());
    }

    #[test]
    fn from_csr_random_spd_roundtrip() {
        let a: Csr<f64> = random_spd(40, 6.0, 0.5, 3);
        let lu = DenseLu::from_csr(&a).unwrap();
        let xt: Vec<f64> = (0..40).map(|i| (0.17 * i as f64).sin()).collect();
        let b = a.spmv_ref(&xt);
        let x = lu.solve(&b);
        for i in 0..40 {
            assert!((x[i] - xt[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn f32_generic() {
        let lu = DenseLu::<f32>::new(2, vec![4.0, 0.0, 0.0, 2.0]).unwrap();
        assert_eq!(lu.solve(&[8.0, 8.0]), vec![2.0, 4.0]);
    }
}
