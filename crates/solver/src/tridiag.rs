//! Tridiagonal solvers.
//!
//! The paper's application builds tridiagonal preconditioners because
//! tridiagonal systems solve at the bandwidth limit of the GPU [21]. Two
//! solvers are provided:
//!
//! * [`ThomasFactorization`] — the classic O(N) LU sweep (sequential; the
//!   CPU work-efficient reference), factored once and reused per apply;
//! * [`pcr_solve`] — **parallel cyclic reduction** (Dieguez et al. [9],
//!   whose access pattern the paper's bidirectional scan mirrors):
//!   `⌈log₂ N⌉` device kernels, each combining every equation with its
//!   stride-q neighbors until the system is diagonal.

use lf_core::extract::Tridiag;
use lf_kernel::{launch, Device, PingPong};
use lf_sparse::Scalar;

/// LU factorization of a tridiagonal matrix without pivoting (valid for
/// the diagonally dominant systems produced from the collection matrices).
#[derive(Clone, Debug)]
pub struct ThomasFactorization<T> {
    /// Elimination multipliers `l[i] = dl[i] / d'[i−1]`.
    l: Vec<T>,
    /// Modified pivots `d'[i]`.
    dp: Vec<T>,
    /// Original superdiagonal.
    du: Vec<T>,
}

impl<T: Scalar> ThomasFactorization<T> {
    /// Factor the system; rows with zero pivot (e.g. all-zero ghost rows)
    /// get a unit pivot so the solve treats them as identity equations.
    pub fn new(t: &Tridiag<T>) -> Self {
        let n = t.len();
        let mut l = vec![T::ZERO; n];
        let mut dp = vec![T::ZERO; n];
        for i in 0..n {
            let prev = if i > 0 { dp[i - 1] } else { T::ONE };
            let li = if i > 0 { t.dl[i] / prev } else { T::ZERO };
            l[i] = li;
            let mut piv = t.d[i] - li * if i > 0 { t.du[i - 1] } else { T::ZERO };
            if piv == T::ZERO {
                piv = T::ONE;
            }
            dp[i] = piv;
        }
        Self {
            l,
            dp,
            du: t.du.clone(),
        }
    }

    /// Order of the system.
    pub fn len(&self) -> usize {
        self.dp.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.dp.is_empty()
    }

    /// Solve `T x = b` in place (forward then backward sweep).
    pub fn solve_in_place(&self, b: &mut [T]) {
        let n = self.len();
        assert_eq!(b.len(), n);
        for i in 1..n {
            let update = self.l[i] * b[i - 1];
            b[i] -= update;
        }
        if n > 0 {
            b[n - 1] /= self.dp[n - 1];
            for i in (0..n - 1).rev() {
                b[i] = (b[i] - self.du[i] * b[i + 1]) / self.dp[i];
            }
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// Solve `T x = b` with parallel cyclic reduction on the device:
/// `⌈log₂ N⌉` kernel launches over ping-pong equation buffers. Zero
/// diagonal entries are treated as unit pivots (identity equations).
pub fn pcr_solve<T: Scalar>(dev: &Device, t: &Tridiag<T>, b: &[T]) -> Vec<T> {
    let n = t.len();
    assert_eq!(b.len(), n);
    if n == 0 {
        return Vec::new();
    }
    // Equation state per row: (dl, d, du, rhs).
    let mut eq = PingPong::new(n, [T::ZERO; 4]);
    {
        let dst = eq.dst_mut();
        launch::map1(dev, "pcr_init", dst, n * 4 * std::mem::size_of::<T>(), |i| {
            let d = if t.d[i] == T::ZERO { T::ONE } else { t.d[i] };
            [t.dl[i], d, t.du[i], b[i]]
        });
    }
    eq.swap();

    let steps = n.max(2).next_power_of_two().trailing_zeros() as usize;
    let mut stride = 1usize;
    for _ in 0..steps {
        let (src, dst) = eq.src_dst_mut();
        let read = 3 * n * 4 * std::mem::size_of::<T>();
        launch::map1(dev, "pcr_step", dst, read, |i| {
            let [dl, d, du, rhs] = src[i];
            // neighbor equations; out-of-range rows act as identity rows
            let identity = [T::ZERO, T::ONE, T::ZERO, T::ZERO];
            let up = if i >= stride { src[i - stride] } else { identity };
            let dn = if i + stride < n {
                src[i + stride]
            } else {
                identity
            };
            let alpha = -dl / up[1];
            let beta = -du / dn[1];
            [
                alpha * up[0],
                d + alpha * up[2] + beta * dn[0],
                beta * dn[2],
                rhs + alpha * up[3] + beta * dn[3],
            ]
        });
        eq.swap();
        stride *= 2;
    }

    let src = eq.src();
    let mut x = vec![T::ZERO; n];
    launch::map1(dev, "pcr_extract", &mut x, n * 4 * std::mem::size_of::<T>(), |i| {
        src[i][3] / src[i][1]
    });
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Tridiag<f64> {
        // diagonally dominant: -1, 3, -1 with varying perturbations
        let mut t = Tridiag::zeros(n);
        for i in 0..n {
            t.d[i] = 3.0 + (i % 5) as f64 * 0.1;
            if i > 0 {
                t.dl[i] = -1.0 - (i % 3) as f64 * 0.2;
            }
            if i + 1 < n {
                t.du[i] = -0.5 - (i % 4) as f64 * 0.1;
            }
        }
        t
    }

    #[test]
    fn thomas_solves_manufactured() {
        for n in [1usize, 2, 3, 17, 500] {
            let t = toy(n);
            let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let b = t.matvec(&xt);
            let f = ThomasFactorization::new(&t);
            let x = f.solve(&b);
            for i in 0..n {
                assert!((x[i] - xt[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn pcr_matches_thomas() {
        let dev = Device::default();
        for n in [1usize, 2, 7, 64, 1000] {
            let t = toy(n);
            let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let b = t.matvec(&xt);
            let x = pcr_solve(&dev, &t, &b);
            for i in 0..n {
                assert!((x[i] - xt[i]).abs() < 1e-8, "n={n} i={i}: {}", x[i]);
            }
        }
    }

    #[test]
    fn pcr_launch_count_is_logarithmic() {
        let dev = Device::default();
        let n = 1024;
        let t = toy(n);
        let b = vec![1.0; n];
        pcr_solve(&dev, &t, &b);
        let s = dev.stats();
        assert_eq!(s.kernels["pcr_step"].launches, 10);
    }

    #[test]
    fn ghost_rows_pass_through() {
        // a zero row (ghost equation) must not break the solve
        let mut t = toy(5);
        t.d[2] = 0.0;
        t.dl[2] = 0.0;
        t.du[2] = 0.0;
        t.du[1] = 0.0;
        t.dl[3] = 0.0;
        let f = ThomasFactorization::new(&t);
        let mut b = vec![1.0, 2.0, 7.0, 3.0, 4.0];
        f.solve_in_place(&mut b);
        assert_eq!(b[2], 7.0, "ghost row x = rhs");
        let dev = Device::default();
        let x = pcr_solve(&dev, &t, &[1.0, 2.0, 7.0, 3.0, 4.0]);
        assert!((x[2] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_system() {
        let mut t = Tridiag::zeros(4);
        t.d = vec![2.0, 4.0, 8.0, 16.0];
        let f = ThomasFactorization::new(&t);
        assert_eq!(f.solve(&[2.0, 4.0, 8.0, 16.0]), vec![1.0; 4]);
    }
}
