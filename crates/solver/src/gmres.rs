//! Restarted GMRES — an extension beyond the paper's BiCGStab for the
//! nonsymmetric collection members (ATMOSMOD, ML_GEER, TRANSPORT).
//! Right-preconditioned GMRES(m) with Arnoldi (modified Gram–Schmidt) and
//! Givens-rotation least squares, after Saad [34] Alg. 9.5.

use crate::bicgstab::{record_solve, SolveOpts, SolveStats, StopReason};
use crate::precond::Preconditioner;
use crate::vec_ops::{axpy, dot, norm2, spmv};
use lf_kernel::Device;
use lf_sparse::{Csr, Scalar};

/// Solve `A x = b` with right-preconditioned restarted GMRES(m) from
/// `x = 0`. `restart` is the Krylov dimension between restarts.
pub fn gmres<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    restart: usize,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let out = gmres_impl(dev, a, b, precond, restart, opts, x_true);
    record_solve("gmres", &out.1);
    out
}

fn gmres_impl<T: Scalar, P: Preconditioner<T> + ?Sized>(
    dev: &Device,
    a: &Csr<T>,
    b: &[T],
    precond: &P,
    restart: usize,
    opts: &SolveOpts,
    x_true: Option<&[T]>,
) -> (Vec<T>, SolveStats) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert!(restart >= 1);
    let tracer = dev.tracer().clone();
    let _solve_span = tracer.span("gmres");
    let bnorm = norm2(dev, b).max(f64::MIN_POSITIVE);

    let mut x = vec![T::ZERO; n];
    let mut stats = SolveStats {
        iterations: 0,
        converged: false,
        rel_residual: Vec::new(),
        fre: Vec::new(),
        stop_reason: StopReason::MaxIterations,
    };
    let record = |x: &[T], relres: f64, stats: &mut SolveStats, dev: &Device| {
        stats.rel_residual.push(relres);
        if let Some(xt) = x_true {
            let mut diff = vec![T::ZERO; x.len()];
            crate::vec_ops::sub_scaled(dev, x, T::ONE, xt, &mut diff);
            let d = norm2(dev, xt);
            stats
                .fre
                .push(if d == 0.0 { 0.0 } else { norm2(dev, &diff) / d });
        }
    };

    // initial residual (x = 0)
    let mut r = b.to_vec();
    let mut beta = norm2(dev, &r);
    record(&x, beta / bnorm, &mut stats, dev);
    if tracer.is_active() {
        tracer.metric("rel_residual", beta / bnorm);
    }
    if beta / bnorm <= opts.tol {
        stats.converged = true;
        stats.stop_reason = StopReason::Converged;
        return (x, stats);
    }

    let mut total_iters = 0usize;
    'outer: while total_iters < opts.max_iters {
        // Arnoldi basis V, Hessenberg H (column-major per Arnoldi step),
        // preconditioned directions Z with v_{j+1} H = A z_j.
        let mut v: Vec<Vec<T>> = Vec::with_capacity(restart + 1);
        let mut z: Vec<Vec<T>> = Vec::with_capacity(restart);
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs = Vec::with_capacity(restart);
        let mut sn = Vec::with_capacity(restart);
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        {
            let inv_beta = T::from_f64(1.0 / beta);
            let v0: Vec<T> = r.iter().map(|&ri| ri * inv_beta).collect();
            v.push(v0);
        }

        let mut k_used = 0usize;
        for j in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A M⁻¹ v_j
            let mut zj = vec![T::ZERO; n];
            precond.apply(dev, &v[j], &mut zj);
            let mut w = vec![T::ZERO; n];
            spmv(dev, a, &zj, &mut w);
            z.push(zj);
            // modified Gram–Schmidt
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(dev, vi, &w);
                hj[i] = hij;
                axpy(dev, T::from_f64(-hij), vi, &mut w);
            }
            let wnorm = norm2(dev, &w);
            hj[j + 1] = wnorm;
            // apply previous Givens rotations to the new column
            for i in 0..j {
                let (c, s): (f64, f64) = (cs[i], sn[i]);
                let t0 = c * hj[i] + s * hj[i + 1];
                let t1 = -s * hj[i] + c * hj[i + 1];
                hj[i] = t0;
                hj[i + 1] = t1;
            }
            // new rotation annihilating hj[j+1]
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            let (c, s) = if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (hj[j] / denom, hj[j + 1] / denom)
            };
            cs.push(c);
            sn.push(s);
            hj[j] = denom;
            hj[j + 1] = 0.0;
            let g0 = c * g[j];
            let g1 = -s * g[j];
            g[j] = g0;
            g[j + 1] = g1;
            h.push(hj);
            k_used = j + 1;

            let relres = g[j + 1].abs() / bnorm;
            // provisional x for FRE tracking is expensive; record residual
            // now and FRE only at restart/convergence
            stats.iterations = total_iters;
            stats.rel_residual.push(relres);
            if tracer.is_active() {
                tracer.metric("rel_residual", relres);
            }
            if let Some(_xt) = x_true {
                // placeholder; corrected below when x is formed
                stats.fre.push(f64::NAN);
            }
            if relres <= opts.tol {
                update_solution(dev, &mut x, &h, &g, &z, k_used);
                if x_true.is_some() {
                    fix_last_fre(dev, &x, x_true, &mut stats);
                }
                stats.converged = true;
                stats.stop_reason = StopReason::Converged;
                return (x, stats);
            }
            if wnorm < 1e-300 {
                // lucky/unlucky breakdown: subspace exhausted
                update_solution(dev, &mut x, &h, &g, &z, k_used);
                if x_true.is_some() {
                    fix_last_fre(dev, &x, x_true, &mut stats);
                }
                stats.stop_reason = StopReason::Breakdown;
                break 'outer;
            }
            let inv = T::from_f64(1.0 / wnorm);
            let vnext: Vec<T> = w.iter().map(|&wi| wi * inv).collect();
            v.push(vnext);
        }
        // restart: form x, recompute residual
        update_solution(dev, &mut x, &h, &g, &z, k_used);
        if x_true.is_some() {
            fix_last_fre(dev, &x, x_true, &mut stats);
        }
        let mut ax = vec![T::ZERO; n];
        spmv(dev, a, &x, &mut ax);
        for (ri, (&bi, &axi)) in r.iter_mut().zip(b.iter().zip(&ax)) {
            *ri = bi - axi;
        }
        beta = norm2(dev, &r);
        if beta / bnorm <= opts.tol {
            stats.converged = true;
            stats.stop_reason = StopReason::Converged;
            return (x, stats);
        }
    }
    (x, stats)
}

/// Back-substitute `H y = g` and accumulate `x += Σ y_j z_j`.
fn update_solution<T: Scalar>(
    dev: &Device,
    x: &mut [T],
    h: &[Vec<f64>],
    g: &[f64],
    z: &[Vec<T>],
    k: usize,
) {
    if k == 0 {
        return;
    }
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut s = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            s -= h[j][i] * yj;
        }
        y[i] = s / h[i][i];
    }
    for (j, yj) in y.iter().enumerate() {
        axpy(dev, T::from_f64(*yj), &z[j], x);
    }
}

fn fix_last_fre<T: Scalar>(
    dev: &Device,
    x: &[T],
    x_true: Option<&[T]>,
    stats: &mut SolveStats,
) {
    if let (Some(xt), Some(last)) = (x_true, stats.fre.last_mut()) {
        let mut diff = vec![T::ZERO; x.len()];
        crate::vec_ops::sub_scaled(dev, x, T::ONE, xt, &mut diff);
        let d = norm2(dev, xt);
        *last = if d == 0.0 { 0.0 } else { norm2(dev, &diff) / d };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::manufactured_problem;
    use crate::precond::{AlgTriScalPrecond, IdentityPrecond, JacobiPrecond};
    use lf_core::parallel::FactorConfig;
    use lf_sparse::stencil::{grid2d, FIVE_POINT};
    use lf_sparse::Collection;

    #[test]
    fn converges_on_spd_laplacian() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(12, 12, &FIVE_POINT);
        let (b, xt) = manufactured_problem(&dev, &a);
        let (x, st) = gmres(&dev, &a, &b, &IdentityPrecond, 30, &SolveOpts::default(), Some(&xt));
        assert!(st.converged, "{:?}", st.stop_reason);
        for i in 0..a.nrows() {
            assert!((x[i] - xt[i]).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn converges_on_nonsymmetric_transport() {
        let dev = Device::default();
        let a = Collection::Transport.generate(800);
        assert!(!a.is_symmetric());
        let (b, xt) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 2000,
        };
        let (_, st) = gmres(&dev, &a, &b, &JacobiPrecond::new(&a), 40, &opts, Some(&xt));
        assert!(st.converged);
        assert!(st.fre.last().unwrap() < &1e-6);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let dev = Device::default();
        let a = Collection::Atmosmodm.generate(1200);
        let (b, _) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 3000,
        };
        let (_, st_jac) = gmres(&dev, &a, &b, &JacobiPrecond::new(&a), 50, &opts, None);
        let alg = AlgTriScalPrecond::new(&dev, &a, &FactorConfig::paper_default(2));
        let (_, st_alg) = gmres(&dev, &a, &b, &alg, 50, &opts, None);
        assert!(st_alg.converged && st_jac.converged);
        assert!(
            st_alg.iterations * 2 <= st_jac.iterations,
            "alg {} vs jacobi {}",
            st_alg.iterations,
            st_jac.iterations
        );
    }

    #[test]
    fn restart_one_is_valid() {
        // GMRES(1) degenerates to a minimal-residual iteration but must
        // still converge on an SPD system
        let dev = Device::default();
        let a: Csr<f64> = grid2d(6, 6, &FIVE_POINT);
        let (b, _) = manufactured_problem(&dev, &a);
        let opts = SolveOpts {
            tol: 1e-8,
            max_iters: 5000,
        };
        let (_, st) = gmres(&dev, &a, &b, &JacobiPrecond::new(&a), 1, &opts, None);
        assert!(st.converged);
    }

    #[test]
    fn zero_rhs_immediate() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(4, 4, &FIVE_POINT);
        let (x, st) = gmres(
            &dev,
            &a,
            &[0.0; 16],
            &IdentityPrecond,
            10,
            &SolveOpts::default(),
            None,
        );
        assert!(st.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
