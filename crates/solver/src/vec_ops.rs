//! Device BLAS-1 vector kernels used by the Krylov solvers.

use lf_kernel::{launch, reduce, Device};
use lf_sparse::Scalar;

/// `out = a · x` (sparse matrix–vector product via the row-parallel
/// generalized SpMV).
pub fn spmv<T: Scalar>(dev: &Device, a: &lf_sparse::Csr<T>, x: &[T], out: &mut [T]) {
    let zero = vec![T::ZERO; a.nrows()];
    lf_sparse::gespmv_rowpar(dev, "spmv", a, &lf_sparse::AxpyOps { x, d: &zero }, out);
}

/// Dot product `xᵀ y` (accumulated in f64 for stability, as a GPU
/// tree-reduction would effectively do).
pub fn dot<T: Scalar>(dev: &Device, x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len());
    let traffic = lf_kernel::Traffic::new().reads::<T>(2 * x.len());
    dev.launch("dot", traffic, || {
        use rayon::prelude::*;
        if x.len() < 4096 {
            x.iter()
                .zip(y)
                .map(|(a, b)| a.to_f64() * b.to_f64())
                .sum()
        } else {
            x.par_iter()
                .zip_eq(y.par_iter())
                .map(|(a, b)| a.to_f64() * b.to_f64())
                .sum()
        }
    })
}

/// Euclidean norm ‖x‖₂.
pub fn norm2<T: Scalar>(dev: &Device, x: &[T]) -> f64 {
    reduce::reduce(
        dev,
        "norm2",
        x,
        0.0f64,
        |v| v.to_f64() * v.to_f64(),
        |a, b| a + b,
    )
    .sqrt()
}

/// `y ← y + alpha · x`.
pub fn axpy<T: Scalar>(dev: &Device, alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    launch::update1(dev, "axpy", y, std::mem::size_of_val(x), |i, yi| {
        yi + alpha * x[i]
    });
}

/// `y ← x + beta · y` (the "xpby" shape used by BiCGStab's p-update).
pub fn xpby<T: Scalar>(dev: &Device, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    launch::update1(dev, "xpby", y, std::mem::size_of_val(x), |i, yi| {
        x[i] + beta * yi
    });
}

/// `out ← x − alpha · y`.
pub fn sub_scaled<T: Scalar>(dev: &Device, x: &[T], alpha: T, y: &[T], out: &mut [T]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), out.len());
    launch::map1(
        dev,
        "sub_scaled",
        out,
        2 * x.len() * std::mem::size_of::<T>(),
        |i| x[i] - alpha * y[i],
    );
}

/// Elementwise copy.
pub fn copy<T: Scalar>(dev: &Device, src: &[T], dst: &mut [T]) {
    launch::copy(dev, "veccopy", dst, src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products() {
        let dev = Device::default();
        let x: Vec<f64> = (0..10_000).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..10_000).map(|i| (i % 3) as f64).collect();
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&dev, &x, &y) - want).abs() < 1e-9);
        let s: Vec<f32> = vec![1.5, 2.0];
        assert_eq!(dot(&dev, &s, &s), 1.5 * 1.5 + 4.0);
    }

    #[test]
    fn norms_and_axpy() {
        let dev = Device::default();
        let x = vec![3.0f64, 4.0];
        assert!((norm2(&dev, &x) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0f64, 1.0];
        axpy(&dev, 2.0, &x, &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        xpby(&dev, &x, 0.5, &mut y);
        assert_eq!(y, vec![6.5, 8.5]);
        let mut out = vec![0.0f64; 2];
        sub_scaled(&dev, &x, 1.0, &[1.0, 1.0], &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn spmv_matches_reference() {
        let dev = Device::default();
        let a: lf_sparse::Csr<f64> =
            lf_sparse::stencil::grid2d(9, 7, &lf_sparse::stencil::FIVE_POINT);
        let x: Vec<f64> = (0..63).map(|i| (i as f64).cos()).collect();
        let mut out = vec![0.0; 63];
        spmv(&dev, &a, &x, &mut out);
        let want = a.spmv_ref(&x);
        for (g, w) in out.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }
}
