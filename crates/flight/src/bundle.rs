//! Postmortem bundles (schema `lf-flight/1`).
//!
//! A bundle is a self-contained directory dumped at the moment of
//! failure: `bundle.json` holds the failure reason, the effective
//! pipeline configuration, the input's content hash, the final outcome,
//! deterministic device-model totals, the last-N flight events, and a
//! full metrics snapshot; the raw input matrix rides along as
//! `input.mtx` when it is under the caller's size cap. Everything a
//! replay needs is inside the directory — no reference back to the
//! original environment survives except the git-tracked binaries.
//!
//! All 64-bit hashes are serialized as `"0x…"` hex strings so they
//! survive the f64 number model of JSON bit-exactly (see [`crate::value`]).

use crate::event::FlightEvent;
use crate::value::{hex, parse_hex, Value};
use lf_trace::json::escape;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema tag of `bundle.json`; bump on any layout change.
pub const BUNDLE_SCHEMA: &str = "lf-flight/1";

/// Name of the optional raw-input file inside a bundle directory.
pub const INPUT_FILE: &str = "input.mtx";

/// The effective configuration of the failed run — everything replay
/// needs to reconstruct the device and factor configuration bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct EffectiveConfig {
    /// Which pipeline ran (`forest`, `tridiag`, `factor`, `batch-solo`,
    /// `bench`, or a CLI subcommand name for panic bundles).
    pub pipeline: String,
    /// Backend kind (`model`, `cpu`).
    pub backend: String,
    /// Whether the peephole fusion pass was enabled.
    pub fusion: bool,
    /// Factor cap `n` of the `[0,n]`-factor.
    pub n: u64,
    /// Outer iteration cap `M`.
    pub max_iters: u64,
    /// Proposal rounds `m` per iteration.
    pub m: u64,
    /// Extra confirmation rounds `k_m`.
    pub k_m: u64,
    /// Proposal acceptance probability `p`.
    pub p: f64,
    /// Whether frontier compaction was enabled.
    pub frontier: bool,
    /// Deterministic tie-breaking salt (the per-job salt in service runs).
    pub charge_salt: u32,
    /// SpMV engine (`SrCsr`, `RowParallel`).
    pub engine: String,
    /// Injected fault, if any (`break-mutuality`, `corrupt-weight`,
    /// `swap-permutation`).
    pub fault: Option<String>,
    /// Input provenance spec (e.g. `gen:aniso1:4000`) when known; the
    /// replay input is `input.mtx`, this is documentation.
    pub input: Option<String>,
}

impl Default for EffectiveConfig {
    fn default() -> Self {
        // Mirrors `FactorConfig::paper_default(2)` on the model backend;
        // lf-flight sits below lf-core so the values are restated here.
        Self {
            pipeline: "unknown".into(),
            backend: "model".into(),
            fusion: true,
            n: 2,
            max_iters: 5,
            m: 5,
            k_m: 0,
            p: 0.5,
            frontier: false,
            charge_salt: 0,
            engine: "SrCsr".into(),
            fault: None,
            input: None,
        }
    }
}

impl EffectiveConfig {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"pipeline\":\"{}\",\"backend\":\"{}\",\"fusion\":{},\"n\":{},\
             \"max_iters\":{},\"m\":{},\"k_m\":{},\"p\":{},\"frontier\":{},\
             \"charge_salt\":{},\"engine\":\"{}\"",
            escape(&self.pipeline),
            escape(&self.backend),
            self.fusion,
            self.n,
            self.max_iters,
            self.m,
            self.k_m,
            lf_trace::json::number(self.p),
            self.frontier,
            self.charge_salt,
            escape(&self.engine),
        );
        if let Some(f) = &self.fault {
            out.push_str(&format!(",\"fault\":\"{}\"", escape(f)));
        }
        if let Some(i) = &self.input {
            out.push_str(&format!(",\"input\":\"{}\"", escape(i)));
        }
        out.push('}');
        out
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("config field {k} missing or not a string"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("config field {k} missing or not an integer"))
        };
        let b = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("config field {k} missing or not a bool"))
        };
        Ok(Self {
            pipeline: s("pipeline")?,
            backend: s("backend")?,
            fusion: b("fusion")?,
            n: u("n")?,
            max_iters: u("max_iters")?,
            m: u("m")?,
            k_m: u("k_m")?,
            p: v
                .get("p")
                .and_then(Value::as_f64)
                .ok_or("config field p missing or not a number")?,
            frontier: b("frontier")?,
            charge_salt: u("charge_salt")? as u32,
            engine: s("engine")?,
            fault: v.get("fault").and_then(Value::as_str).map(str::to_string),
            input: v.get("input").and_then(Value::as_str).map(str::to_string),
        })
    }
}

/// Deterministic device-model totals at dump time (never wall clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelTotals {
    /// Total kernel launches.
    pub launches: u64,
    /// Total modeled bytes read.
    pub read: u64,
    /// Total modeled bytes written.
    pub written: u64,
    /// Total bandwidth-model time in nanoseconds.
    pub model_ns: u64,
}

impl ModelTotals {
    /// Serialize as a JSON object.
    pub fn to_json(self) -> String {
        format!(
            "{{\"launches\":{},\"read\":{},\"written\":{},\"model_ns\":{}}}",
            self.launches, self.read, self.written, self.model_ns
        )
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("model field {k} missing or not an integer"))
        };
        Ok(Self {
            launches: u("launches")?,
            read: u("read")?,
            written: u("written")?,
            model_ns: u("model_ns")?,
        })
    }
}

/// The recorded (or replayed) end state of the run.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The run failed with a typed error.
    Error {
        /// Error class (`pipeline`, `audit`, `check`, `job`, `panic`).
        kind: String,
        /// Rendered error message.
        message: String,
    },
    /// The run produced a forest (or bare factor) successfully.
    Forest {
        /// Structural fingerprint of the result (FNV-1a).
        hash: u64,
        /// Number of extracted paths (0 for bare-factor pipelines).
        num_paths: u64,
        /// Factor iterations used.
        iterations: u64,
        /// Whether the factor loop reached a maximal factor early.
        maximal: bool,
    },
}

impl Outcome {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        match self {
            Outcome::Error { kind, message } => format!(
                "{{\"kind\":\"error\",\"error_kind\":\"{}\",\"message\":\"{}\"}}",
                escape(kind),
                escape(message)
            ),
            Outcome::Forest {
                hash,
                num_paths,
                iterations,
                maximal,
            } => format!(
                "{{\"kind\":\"forest\",\"hash\":\"{}\",\"num_paths\":{num_paths},\
                 \"iterations\":{iterations},\"maximal\":{maximal}}}",
                hex(*hash)
            ),
        }
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        match v.get("kind").and_then(Value::as_str) {
            Some("error") => Ok(Outcome::Error {
                kind: v
                    .get("error_kind")
                    .and_then(Value::as_str)
                    .ok_or("outcome error_kind missing")?
                    .to_string(),
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or("outcome message missing")?
                    .to_string(),
            }),
            Some("forest") => Ok(Outcome::Forest {
                hash: v
                    .get("hash")
                    .and_then(Value::as_str)
                    .and_then(parse_hex)
                    .ok_or("outcome hash missing or not hex")?,
                num_paths: v
                    .get("num_paths")
                    .and_then(Value::as_u64)
                    .ok_or("outcome num_paths missing")?,
                iterations: v
                    .get("iterations")
                    .and_then(Value::as_u64)
                    .ok_or("outcome iterations missing")?,
                maximal: v
                    .get("maximal")
                    .and_then(Value::as_bool)
                    .ok_or("outcome maximal missing")?,
            }),
            _ => Err("outcome kind missing or unknown".into()),
        }
    }
}

/// Correlation identity (and assembled lifecycle timeline) of the job
/// whose failure triggered the dump. lf-flight sits below the scheduler
/// that builds timelines, so the timeline rides along as a raw embedded
/// JSON document, like the metrics snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct JobCorrelation {
    /// Request-scoped correlation id (0 = uncorrelated).
    pub trace_id: u64,
    /// Ingress/service-assigned job id.
    pub job_id: u64,
    /// Tenant the job was submitted under (`"cli"` for direct runs).
    pub tenant: String,
    /// Assembled lifecycle timeline as an embedded JSON object, when the
    /// scheduler got far enough to build one (`"null"` otherwise).
    pub timeline_json: String,
}

impl JobCorrelation {
    fn to_json(&self) -> String {
        let timeline = self.timeline_json.trim();
        format!(
            "{{\"trace_id\":\"{}\",\"id\":{},\"tenant\":\"{}\",\"timeline\":{}}}",
            hex(self.trace_id),
            self.job_id,
            escape(&self.tenant),
            if timeline.is_empty() { "null" } else { timeline }
        )
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(Self {
            trace_id: v
                .get("trace_id")
                .and_then(Value::as_str)
                .and_then(parse_hex)
                .ok_or("job trace_id missing or not hex")?,
            job_id: v
                .get("id")
                .and_then(Value::as_u64)
                .ok_or("job id missing")?,
            tenant: v
                .get("tenant")
                .and_then(Value::as_str)
                .ok_or("job tenant missing")?
                .to_string(),
            timeline_json: v
                .get("timeline")
                .map(Value::to_json)
                .unwrap_or_else(|| "null".into()),
        })
    }
}

/// A fully assembled postmortem bundle (the in-memory form of
/// `bundle.json`).
#[derive(Clone, Debug)]
pub struct Bundle {
    /// Failure class that triggered the dump (`pipeline`, `audit`,
    /// `check`, `job`, `panic`).
    pub reason_kind: String,
    /// Human-readable failure description.
    pub reason: String,
    /// Effective configuration of the failed run.
    pub config: EffectiveConfig,
    /// FNV-1a content hash of the input matrix, when the caller had it.
    pub input_hash: Option<u64>,
    /// Bundle-relative raw-input filename ([`INPUT_FILE`]) when the
    /// input was small enough to embed.
    pub input_file: Option<String>,
    /// Recorded end state of the run.
    pub outcome: Option<Outcome>,
    /// Deterministic device totals at dump time.
    pub model: Option<ModelTotals>,
    /// Correlation identity + lifecycle timeline of the failing job,
    /// when the failure was job-scoped.
    pub job: Option<JobCorrelation>,
    /// Total events ever recorded (may exceed `events.len()` when the
    /// ring wrapped).
    pub events_recorded: u64,
    /// Retained flight events, oldest first, with sequence numbers.
    pub events: Vec<(u64, FlightEvent)>,
    /// Embedded metrics snapshot (a complete `lf-metrics` JSON document).
    pub metrics_json: String,
}

impl Bundle {
    /// Assemble a bundle from the global recorder state: the retained
    /// events of [`crate::recorder`] plus a fresh metrics snapshot.
    /// Input hash, outcome, and model totals start empty — the dump site
    /// fills in what it has.
    pub fn capture(reason_kind: &str, reason: impl Into<String>, config: EffectiveConfig) -> Self {
        let ring = crate::recorder();
        Self {
            reason_kind: reason_kind.to_string(),
            reason: reason.into(),
            config,
            input_hash: None,
            input_file: None,
            outcome: None,
            model: None,
            job: None,
            events_recorded: ring.recorded(),
            events: ring.snapshot(),
            metrics_json: lf_metrics::global().snapshot().to_json(),
        }
    }

    /// Serialize as the `bundle.json` document.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{BUNDLE_SCHEMA}\",\"reason\":{{\"kind\":\"{}\",\"message\":\"{}\"}},\
             \"config\":{}",
            escape(&self.reason_kind),
            escape(&self.reason),
            self.config.to_json()
        );
        if let Some(h) = self.input_hash {
            out.push_str(&format!(",\"input_hash\":\"{}\"", hex(h)));
        }
        if let Some(f) = &self.input_file {
            out.push_str(&format!(",\"input_file\":\"{}\"", escape(f)));
        }
        if let Some(o) = &self.outcome {
            out.push_str(&format!(",\"outcome\":{}", o.to_json()));
        }
        if let Some(m) = &self.model {
            out.push_str(&format!(",\"model\":{}", m.to_json()));
        }
        if let Some(j) = &self.job {
            out.push_str(&format!(",\"job\":{}", j.to_json()));
        }
        let entries: Vec<String> = self
            .events
            .iter()
            .map(|(seq, ev)| format!("{{\"seq\":{seq},\"event\":{}}}", ev.to_json()))
            .collect();
        out.push_str(&format!(
            ",\"events\":{{\"recorded\":{},\"entries\":[{}]}}",
            self.events_recorded,
            entries.join(",")
        ));
        let metrics = self.metrics_json.trim();
        out.push_str(&format!(
            ",\"metrics\":{}}}\n",
            if metrics.is_empty() { "null" } else { metrics }
        ));
        out
    }

    /// Parse a `bundle.json` document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(BUNDLE_SCHEMA) => {}
            Some(other) => return Err(format!("bundle schema {other:?} is not {BUNDLE_SCHEMA}")),
            None => return Err("bundle has no schema tag".into()),
        }
        let reason = v.get("reason").ok_or("bundle has no reason")?;
        let events = v.get("events").ok_or("bundle has no events")?;
        let entries = events
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("bundle events.entries missing")?;
        let mut parsed_events = Vec::with_capacity(entries.len());
        for e in entries {
            let seq = e
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or("event entry has no seq")?;
            let ev = FlightEvent::from_value(e.get("event").ok_or("event entry has no event")?)?;
            parsed_events.push((seq, ev));
        }
        Ok(Self {
            reason_kind: reason
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("reason kind missing")?
                .to_string(),
            reason: reason
                .get("message")
                .and_then(Value::as_str)
                .ok_or("reason message missing")?
                .to_string(),
            config: EffectiveConfig::from_value(v.get("config").ok_or("bundle has no config")?)?,
            input_hash: v
                .get("input_hash")
                .and_then(Value::as_str)
                .and_then(parse_hex),
            input_file: v
                .get("input_file")
                .and_then(Value::as_str)
                .map(str::to_string),
            outcome: v.get("outcome").map(Outcome::from_value).transpose()?,
            model: v.get("model").map(ModelTotals::from_value).transpose()?,
            job: v.get("job").map(JobCorrelation::from_value).transpose()?,
            events_recorded: events
                .get("recorded")
                .and_then(Value::as_u64)
                .ok_or("bundle events.recorded missing")?,
            events: parsed_events,
            metrics_json: v
                .get("metrics")
                .map(Value::to_json)
                .unwrap_or_else(|| "null".into()),
        })
    }

    /// Write the bundle to a fresh `bundle-<pid>-<seq>/` directory under
    /// `dir` and return the bundle directory path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let pid = std::process::id();
        let bundle_dir = loop {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let candidate = dir.join(format!("bundle-{pid}-{n}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => break candidate,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        };
        std::fs::write(bundle_dir.join("bundle.json"), self.to_json())?;
        Ok(bundle_dir)
    }

    /// Load a bundle from a bundle directory or a direct `bundle.json`
    /// path. Returns the bundle and its directory (for `input.mtx`).
    pub fn read(path: &Path) -> Result<(Self, PathBuf), String> {
        let (file, dir) = if path.is_dir() {
            (path.join("bundle.json"), path.to_path_buf())
        } else {
            (
                path.to_path_buf(),
                path.parent()
                    .map(Path::to_path_buf)
                    .unwrap_or_else(|| PathBuf::from(".")),
            )
        };
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        Ok((Self::parse(&text)?, dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bundle {
        Bundle {
            reason_kind: "audit".into(),
            reason: "invariant audit failed after stage 'factor'".into(),
            config: EffectiveConfig {
                pipeline: "forest".into(),
                fault: Some("corrupt-weight".into()),
                input: Some("gen:aniso1:1500".into()),
                charge_salt: 7,
                ..EffectiveConfig::default()
            },
            input_hash: Some(0xdead_beef_0000_00ff),
            input_file: Some(INPUT_FILE.into()),
            outcome: Some(Outcome::Error {
                kind: "audit".into(),
                message: "2 violation(s)".into(),
            }),
            model: Some(ModelTotals {
                launches: 42,
                read: 1000,
                written: 500,
                model_ns: 123_456,
            }),
            job: Some(JobCorrelation {
                trace_id: 0xdead_beef_cafe_1234,
                job_id: 4812,
                tenant: "tenant-b".into(),
                timeline_json: "{\"queue_wait_ns\":120,\"close_reason\":\"count\"}".into(),
            }),
            events_recorded: 99,
            events: vec![
                (
                    97,
                    FlightEvent::FactorIter {
                        iter: 0,
                        frontier: 10,
                        proposed: 5,
                        confirmed: 4,
                    },
                ),
                (
                    98,
                    FlightEvent::Audit {
                        stage: "factor".into(),
                        violations: 2,
                        state_hash: 0xabc,
                    },
                ),
            ],
            metrics_json: "{\"families\":[]}".into(),
        }
    }

    #[test]
    fn bundle_json_round_trips() {
        let b = sample();
        let text = b.to_json();
        lf_trace::json::validate(&text).expect("bundle JSON must be well-formed");
        let parsed = Bundle::parse(&text).unwrap();
        assert_eq!(parsed.reason_kind, b.reason_kind);
        assert_eq!(parsed.reason, b.reason);
        assert_eq!(parsed.config, b.config);
        assert_eq!(parsed.input_hash, b.input_hash);
        assert_eq!(parsed.input_file, b.input_file);
        assert_eq!(parsed.outcome, b.outcome);
        assert_eq!(parsed.model, b.model);
        let (pj, bj) = (parsed.job.unwrap(), b.job.unwrap());
        assert_eq!((pj.trace_id, pj.job_id, &pj.tenant), (bj.trace_id, bj.job_id, &bj.tenant));
        assert_eq!(
            Value::parse(&pj.timeline_json).unwrap(),
            Value::parse(&bj.timeline_json).unwrap()
        );
        assert_eq!(parsed.events_recorded, b.events_recorded);
        assert_eq!(parsed.events, b.events);
        assert_eq!(
            Value::parse(&parsed.metrics_json).unwrap(),
            Value::parse(&b.metrics_json).unwrap()
        );
    }

    #[test]
    fn forest_outcome_round_trips() {
        let o = Outcome::Forest {
            hash: u64::MAX - 3,
            num_paths: 12,
            iterations: 5,
            maximal: true,
        };
        assert_eq!(
            Outcome::from_value(&Value::parse(&o.to_json()).unwrap()).unwrap(),
            o
        );
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = sample().to_json().replace("lf-flight/1", "lf-flight/0");
        assert!(Bundle::parse(&text).is_err());
        assert!(Bundle::parse("{}").is_err());
    }

    #[test]
    fn write_read_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("lf-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = sample();
        let d1 = b.write_to(&dir).unwrap();
        let d2 = b.write_to(&dir).unwrap();
        assert_ne!(d1, d2, "each dump gets a fresh directory");
        let (read_back, read_dir) = Bundle::read(&d1).unwrap();
        assert_eq!(read_dir, d1);
        assert_eq!(read_back.reason, b.reason);
        let (from_file, _) = Bundle::read(&d1.join("bundle.json")).unwrap();
        assert_eq!(from_file.config, b.config);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
