//! Fixed-capacity ring of recent flight events.
//!
//! The ring is built for an always-on recorder: writers must never block
//! each other on a shared lock, and a reader taking a snapshot must see
//! exactly the most recent `capacity` events once concurrent writers have
//! drained. The design is a wait-free ticket counter plus one tiny mutex
//! per slot:
//!
//! * A writer claims a monotonically increasing *ticket* with one
//!   `fetch_add` — this is the only shared write, so writers never
//!   contend on a global lock.
//! * Ticket `t` maps to slot `t % capacity`. The slot mutex is contended
//!   only when the ring wraps onto a writer that claimed the same residue
//!   class `capacity` events earlier and is still mid-store — vanishingly
//!   rare in practice and bounded to a single event copy when it happens.
//! * A slot only ever moves *forward*: a writer stores its event only if
//!   its ticket exceeds the ticket already in the slot. A slow writer
//!   that was lapped by the ring therefore discards its own stale event
//!   instead of clobbering a newer one, which is what makes the
//!   "snapshot = exactly the top `capacity` tickets" property hold under
//!   arbitrary writer interleavings (see `tests/ring_retention.rs`).

use crate::event::FlightEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One recorded event tagged with the ticket (global sequence number)
/// under which it was stored.
type Slot = Option<(u64, FlightEvent)>;

/// Lossy, fixed-capacity, multi-writer ring of [`FlightEvent`]s.
pub struct FlightRing {
    /// Next ticket to hand out == number of events ever recorded.
    head: AtomicU64,
    slots: Box<[Mutex<Slot>]>,
}

impl FlightRing {
    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots (the retention window).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event, overwriting the oldest when full. Returns the
    /// ticket (global sequence number) the event was stored under.
    pub fn push(&self, event: FlightEvent) -> u64 {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.slots[(ticket % self.slots.len() as u64) as usize].lock();
        // Forward-only: never replace a newer event with an older one.
        if slot.as_ref().is_none_or(|(t, _)| *t <= ticket) {
            *slot = Some((ticket, event));
        }
        ticket
    }

    /// The retained events, oldest first, each with its sequence number.
    pub fn snapshot(&self) -> Vec<(u64, FlightEvent)> {
        let mut out: Vec<(u64, FlightEvent)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        out.sort_unstable_by_key(|(t, _)| *t);
        out
    }

    /// Drop all retained events and reset the sequence counter. Not
    /// linearizable against concurrent pushes; intended for the start of
    /// a replay run or between tests.
    pub fn clear(&self) {
        for s in self.slots.iter() {
            *s.lock() = None;
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> FlightEvent {
        FlightEvent::BatchClose {
            reason: format!("e{i}"),
        }
    }

    #[test]
    fn retains_all_events_under_capacity() {
        let r = FlightRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(
            snap.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn wraps_to_most_recent_capacity_events() {
        let r = FlightRing::new(4);
        for i in 0..11 {
            r.push(ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(r.recorded(), 11);
        assert_eq!(
            snap.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(snap[0].1, ev(7));
        assert_eq!(snap[3].1, ev(10));
    }

    #[test]
    fn clear_resets_sequence_and_contents() {
        let r = FlightRing::new(4);
        for i in 0..9 {
            r.push(ev(i));
        }
        r.clear();
        assert_eq!(r.recorded(), 0);
        assert!(r.snapshot().is_empty());
        r.push(ev(42));
        assert_eq!(r.snapshot(), vec![(0, ev(42))]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = FlightRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.snapshot(), vec![(1, ev(2))]);
    }
}
