//! lf-flight: an always-on flight recorder for the linear-forest
//! pipeline.
//!
//! The recorder is a process-wide, fixed-capacity ring of recent
//! structured events ([`FlightEvent`]): kernel launches, factor-loop
//! iterations, service job lifecycle, audit violations, and typed
//! errors. It follows the same enablement contract as `lf-trace` and
//! `lf-metrics`: the disabled path is **one relaxed atomic load** and
//! instrumentation sites construct events only behind that gate, so the
//! recorder is cheap enough to leave on unconditionally in production.
//!
//! When something goes wrong — a `PipelineError`, a `JobError`, an audit
//! violation, or a panic (see [`install_panic_hook`]) — the driver dumps
//! a [`bundle::Bundle`]: a self-contained postmortem directory holding
//! the last-N events, a metrics snapshot, the effective config, the
//! input's content hash, and (under a size cap) the raw input itself.
//! `lf postmortem <bundle>` pretty-prints a bundle and
//! `lf postmortem <bundle> --replay` re-runs it deterministically and
//! bit-compares the result against the recorded outcome.
//!
//! Layering: this crate sits between `lf-metrics` and `lf-kernel`, so it
//! knows nothing about matrices or devices — hooks construct events from
//! plain integers and strings, and the replay driver lives in the CLI
//! crate where the whole pipeline is in scope.

#![warn(missing_docs)]

pub mod bundle;
pub mod event;
pub mod ring;
pub mod value;

pub use bundle::{
    Bundle, EffectiveConfig, JobCorrelation, ModelTotals, Outcome, BUNDLE_SCHEMA, INPUT_FILE,
};
pub use event::FlightEvent;
pub use ring::FlightRing;

use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Capacity of the process-wide ring: enough to hold every launch and
/// factor iteration of several full extractions at gate scale while
/// keeping the resident footprint small.
pub const DEFAULT_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<FlightRing> = OnceLock::new();
static BUNDLE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Whether the recorder is on. This is the *only* cost instrumented code
/// pays when recording is off: one relaxed atomic load. Event
/// construction (allocation included) must stay behind this gate.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on (idempotent).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off. Already-retained events stay in the ring.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// The process-wide ring, created at [`DEFAULT_CAPACITY`] on first use.
pub fn recorder() -> &'static FlightRing {
    RING.get_or_init(|| FlightRing::new(DEFAULT_CAPACITY))
}

/// Record one event into the process-wide ring. Callers on hot paths
/// must gate on [`enabled`] *before* constructing the event:
///
/// ```ignore
/// if lf_flight::enabled() {
///     lf_flight::record(FlightEvent::BatchClose { reason: reason.into() });
/// }
/// ```
pub fn record(event: FlightEvent) {
    recorder().push(event);
}

/// Set the directory postmortem bundles are dumped into (the CLI's
/// `--flight-dir`). Also consulted by the panic hook.
pub fn set_bundle_dir(dir: PathBuf) {
    *BUNDLE_DIR.lock() = Some(dir);
}

/// The configured bundle directory, if any.
pub fn bundle_dir() -> Option<PathBuf> {
    BUNDLE_DIR.lock().clone()
}

/// Install a panic hook that dumps a postmortem bundle (reason kind
/// `panic`) into the configured bundle directory before delegating to
/// the previous hook. A no-op at panic time when no bundle directory is
/// set. `config` describes the run as far as the caller knows it at
/// install time.
pub fn install_panic_hook(config: EffectiveConfig) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(dir) = bundle_dir() {
            let bundle = Bundle::capture("panic", info.to_string(), config.clone());
            match bundle.write_to(&dir) {
                Ok(path) => eprintln!("postmortem bundle written to {}", path.display()),
                Err(e) => eprintln!("failed to write postmortem bundle: {e}"),
            }
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns all global-recorder state: unit tests in the same
    // binary must not race on the ENABLED flag or the shared ring.
    #[test]
    fn global_recorder_lifecycle() {
        assert!(!enabled(), "recorder must start disabled");
        recorder().clear();
        enable();
        assert!(enabled());
        if enabled() {
            record(FlightEvent::BatchClose {
                reason: "count".into(),
            });
        }
        let snap = recorder().snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap[0].1,
            FlightEvent::BatchClose {
                reason: "count".into()
            }
        );
        assert_eq!(recorder().capacity(), DEFAULT_CAPACITY);

        assert_eq!(bundle_dir(), None);
        set_bundle_dir(PathBuf::from("/tmp/flight"));
        assert_eq!(bundle_dir(), Some(PathBuf::from("/tmp/flight")));
        *super::BUNDLE_DIR.lock() = None;

        disable();
        assert!(!enabled());
        recorder().clear();
    }
}
