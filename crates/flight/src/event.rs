//! The flight-event taxonomy.
//!
//! One enum covers the entire pipeline because the paper's formulation
//! keeps every stage expressible through a handful of primitives: kernel
//! launches, factor-loop iterations, service job lifecycle, audit
//! violations, and typed errors. Every field is **deterministic** under
//! the simulated device — model time, traffic, counts, hashes — and wall
//! times / timestamps are deliberately excluded, so the event stream of a
//! replay run can be compared bit-for-bit against the recorded one.

use crate::value::{hex, parse_hex, Value};
use lf_trace::json::{escape, number};

/// One structured event in the flight ring.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEvent {
    /// One device kernel launch ([`Device::launch`]).
    Launch {
        /// Kernel name (post-fusion name for fused launches).
        kernel: String,
        /// Executing backend kind (`model`, `cpu`, …).
        backend: String,
        /// Whether the peephole fusion pass was enabled on the device.
        fused: bool,
        /// Modeled bytes read from global memory.
        read: u64,
        /// Modeled bytes written to global memory.
        written: u64,
        /// Bandwidth-model execution time in nanoseconds (deterministic;
        /// wall time is deliberately not recorded).
        model_ns: u64,
    },
    /// One iteration of the parallel `[0,2]`-factor loop.
    FactorIter {
        /// Iteration index (0-based).
        iter: u64,
        /// Active frontier size entering the proposal kernel.
        frontier: u64,
        /// Proposals emitted this iteration.
        proposed: u64,
        /// Total confirmed slots after conflict resolution.
        confirmed: u64,
    },
    /// A job entered the extraction service queue.
    JobSubmit {
        /// Service-assigned job id.
        id: u64,
        /// Caller-supplied job name.
        name: String,
        /// Nonzeros of the submitted matrix.
        nnz: u64,
        /// Whether the content-hash cache already held the result.
        cache_hit: bool,
        /// Request-scoped correlation id (0 = uncorrelated).
        trace: u64,
    },
    /// A batch closed and was handed to the fused pipeline.
    BatchClose {
        /// Why the batch closed (`count`, `nnz`, `deadline`, `drain`).
        reason: String,
    },
    /// A service job finished.
    JobOutcome {
        /// Service-assigned job id.
        id: u64,
        /// Batch sequence number the job ran in.
        batch: u64,
        /// Outcome class (`ok`, `pipeline`, `union`, `audit`).
        outcome: String,
        /// Request-scoped correlation id (0 = uncorrelated).
        trace: u64,
    },
    /// The serve front-end refused or evicted a job under overload.
    Shed {
        /// Ingress-assigned job id.
        id: u64,
        /// Tenant the job was submitted under.
        tenant: String,
        /// Why the job was shed (`refused`, `evicted`, `draining`).
        reason: String,
        /// Request-scoped correlation id (0 = uncorrelated).
        trace: u64,
    },
    /// A stage audit found invariant violations.
    Audit {
        /// Audited stage name (`input`, `factor`, …).
        stage: String,
        /// Number of violations found.
        violations: u64,
        /// Fingerprint of the factor state at audit time (0 when no
        /// factor is in scope yet).
        state_hash: u64,
    },
    /// A typed error crossed an API boundary.
    Error {
        /// Error class (`pipeline`, `audit`, `check`, `job`, `panic`).
        kind: String,
        /// Rendered error message.
        message: String,
    },
    /// One boundary-reconciliation round of a sharded extraction
    /// (lf-shard): proposals and confirmations over the cut edges.
    ShardRound {
        /// Round index (0-based).
        round: u64,
        /// Cut-edge proposals emitted by boundary vertices this round.
        proposals: u64,
        /// Mutual proposals confirmed into the stitched factor.
        confirmed: u64,
    },
}

impl FlightEvent {
    /// Short tag naming the variant (the JSON discriminator).
    pub fn tag(&self) -> &'static str {
        match self {
            FlightEvent::Launch { .. } => "launch",
            FlightEvent::FactorIter { .. } => "factor_iter",
            FlightEvent::JobSubmit { .. } => "job_submit",
            FlightEvent::BatchClose { .. } => "batch_close",
            FlightEvent::JobOutcome { .. } => "job_outcome",
            FlightEvent::Shed { .. } => "shed",
            FlightEvent::Audit { .. } => "audit",
            FlightEvent::Error { .. } => "error",
            FlightEvent::ShardRound { .. } => "shard_round",
        }
    }

    /// Whether the event is deterministic under replay on the same input
    /// and config. Service lifecycle events depend on queue timing
    /// (deadline-based batch closure), so they are excluded from the
    /// bit-exact event-stream comparison.
    pub fn deterministic(&self) -> bool {
        !matches!(
            self,
            FlightEvent::JobSubmit { .. }
                | FlightEvent::BatchClose { .. }
                | FlightEvent::JobOutcome { .. }
                | FlightEvent::Shed { .. }
        )
    }

    /// Serialize as one compact JSON object (`{"type":tag,…}`).
    pub fn to_json(&self) -> String {
        match self {
            FlightEvent::Launch {
                kernel,
                backend,
                fused,
                read,
                written,
                model_ns,
            } => format!(
                "{{\"type\":\"launch\",\"kernel\":\"{}\",\"backend\":\"{}\",\"fused\":{fused},\
                 \"read\":{read},\"written\":{written},\"model_ns\":{model_ns}}}",
                escape(kernel),
                escape(backend)
            ),
            FlightEvent::FactorIter {
                iter,
                frontier,
                proposed,
                confirmed,
            } => format!(
                "{{\"type\":\"factor_iter\",\"iter\":{iter},\"frontier\":{frontier},\
                 \"proposed\":{proposed},\"confirmed\":{confirmed}}}"
            ),
            FlightEvent::JobSubmit {
                id,
                name,
                nnz,
                cache_hit,
                trace,
            } => format!(
                "{{\"type\":\"job_submit\",\"id\":{id},\"name\":\"{}\",\"nnz\":{nnz},\
                 \"cache_hit\":{cache_hit},\"trace\":\"{}\"}}",
                escape(name),
                hex(*trace)
            ),
            FlightEvent::BatchClose { reason } => format!(
                "{{\"type\":\"batch_close\",\"reason\":\"{}\"}}",
                escape(reason)
            ),
            FlightEvent::JobOutcome {
                id,
                batch,
                outcome,
                trace,
            } => format!(
                "{{\"type\":\"job_outcome\",\"id\":{id},\"batch\":{batch},\"outcome\":\"{}\",\
                 \"trace\":\"{}\"}}",
                escape(outcome),
                hex(*trace)
            ),
            FlightEvent::Shed {
                id,
                tenant,
                reason,
                trace,
            } => format!(
                "{{\"type\":\"shed\",\"id\":{id},\"tenant\":\"{}\",\"reason\":\"{}\",\
                 \"trace\":\"{}\"}}",
                escape(tenant),
                escape(reason),
                hex(*trace)
            ),
            FlightEvent::Audit {
                stage,
                violations,
                state_hash,
            } => format!(
                "{{\"type\":\"audit\",\"stage\":\"{}\",\"violations\":{violations},\
                 \"state_hash\":\"{}\"}}",
                escape(stage),
                hex(*state_hash)
            ),
            FlightEvent::Error { kind, message } => format!(
                "{{\"type\":\"error\",\"kind\":\"{}\",\"message\":\"{}\"}}",
                escape(kind),
                escape(message)
            ),
            FlightEvent::ShardRound {
                round,
                proposals,
                confirmed,
            } => format!(
                "{{\"type\":\"shard_round\",\"round\":{round},\"proposals\":{proposals},\
                 \"confirmed\":{confirmed}}}"
            ),
        }
    }

    /// Deserialize from a parsed JSON object (inverse of [`to_json`]).
    pub fn from_value(v: &Value) -> Result<FlightEvent, String> {
        let tag = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("event has no type tag")?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event field {k} missing or not a string"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event field {k} missing or not an integer"))
        };
        let b = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("event field {k} missing or not a bool"))
        };
        // Correlation id; optional so pre-correlation bundles still parse.
        let trace = |v: &Value| -> u64 {
            v.get("trace")
                .and_then(Value::as_str)
                .and_then(parse_hex)
                .unwrap_or(0)
        };
        match tag {
            "launch" => Ok(FlightEvent::Launch {
                kernel: s("kernel")?,
                backend: s("backend")?,
                fused: b("fused")?,
                read: u("read")?,
                written: u("written")?,
                model_ns: u("model_ns")?,
            }),
            "factor_iter" => Ok(FlightEvent::FactorIter {
                iter: u("iter")?,
                frontier: u("frontier")?,
                proposed: u("proposed")?,
                confirmed: u("confirmed")?,
            }),
            "job_submit" => Ok(FlightEvent::JobSubmit {
                id: u("id")?,
                name: s("name")?,
                nnz: u("nnz")?,
                cache_hit: b("cache_hit")?,
                trace: trace(v),
            }),
            "batch_close" => Ok(FlightEvent::BatchClose {
                reason: s("reason")?,
            }),
            "job_outcome" => Ok(FlightEvent::JobOutcome {
                id: u("id")?,
                batch: u("batch")?,
                outcome: s("outcome")?,
                trace: trace(v),
            }),
            "shed" => Ok(FlightEvent::Shed {
                id: u("id")?,
                tenant: s("tenant")?,
                reason: s("reason")?,
                trace: trace(v),
            }),
            "audit" => Ok(FlightEvent::Audit {
                stage: s("stage")?,
                violations: u("violations")?,
                state_hash: parse_hex(&s("state_hash")?)
                    .ok_or("audit state_hash is not a hex string")?,
            }),
            "error" => Ok(FlightEvent::Error {
                kind: s("kind")?,
                message: s("message")?,
            }),
            "shard_round" => Ok(FlightEvent::ShardRound {
                round: u("round")?,
                proposals: u("proposals")?,
                confirmed: u("confirmed")?,
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }

    /// One-line human rendering for `lf postmortem`.
    pub fn pretty(&self) -> String {
        match self {
            FlightEvent::Launch {
                kernel,
                backend,
                fused,
                read,
                written,
                model_ns,
            } => format!(
                "launch      {kernel} [{backend}{}] read {read} B, wrote {written} B, model {}",
                if *fused { ", fused" } else { "" },
                fmt_ns(*model_ns)
            ),
            FlightEvent::FactorIter {
                iter,
                frontier,
                proposed,
                confirmed,
            } => format!(
                "factor_iter k={iter} frontier {frontier}, proposed {proposed}, \
                 confirmed {confirmed}"
            ),
            FlightEvent::JobSubmit {
                id,
                name,
                nnz,
                cache_hit,
                trace,
            } => format!(
                "job_submit  #{id} {name} ({nnz} nnz{}){}",
                if *cache_hit { ", cache hit" } else { "" },
                fmt_trace(*trace)
            ),
            FlightEvent::BatchClose { reason } => format!("batch_close reason={reason}"),
            FlightEvent::JobOutcome {
                id,
                batch,
                outcome,
                trace,
            } => format!(
                "job_outcome #{id} batch {batch}: {outcome}{}",
                fmt_trace(*trace)
            ),
            FlightEvent::Shed {
                id,
                tenant,
                reason,
                trace,
            } => format!(
                "shed        #{id} tenant '{tenant}': {reason}{}",
                fmt_trace(*trace)
            ),
            FlightEvent::Audit {
                stage,
                violations,
                state_hash,
            } => format!(
                "audit       stage '{stage}': {violations} violation(s), state {}",
                hex(*state_hash)
            ),
            FlightEvent::Error { kind, message } => format!("error       [{kind}] {message}"),
            FlightEvent::ShardRound {
                round,
                proposals,
                confirmed,
            } => format!(
                "shard_round r={round} proposed {proposals}, confirmed {confirmed}"
            ),
        }
    }
}

fn fmt_trace(trace: u64) -> String {
    if trace == 0 {
        String::new()
    } else {
        format!(" trace {:016x}", trace)
    }
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1e-3 {
        format!("{} ms", number(s * 1e3))
    } else {
        format!("{} us", number(s * 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<FlightEvent> {
        vec![
            FlightEvent::Launch {
                kernel: "gespmm+scan \"q\"".into(),
                backend: "model".into(),
                fused: true,
                read: 123,
                written: 45,
                model_ns: 6789,
            },
            FlightEvent::FactorIter {
                iter: 3,
                frontier: 100,
                proposed: 42,
                confirmed: 37,
            },
            FlightEvent::JobSubmit {
                id: 7,
                name: "aniso1\n".into(),
                nnz: 500,
                cache_hit: false,
                trace: 0xdead_beef,
            },
            FlightEvent::BatchClose {
                reason: "deadline".into(),
            },
            FlightEvent::JobOutcome {
                id: 7,
                batch: 2,
                outcome: "audit".into(),
                trace: 0xdead_beef,
            },
            FlightEvent::Shed {
                id: 9,
                tenant: "flood".into(),
                reason: "evicted".into(),
                trace: 0xcafe,
            },
            FlightEvent::Audit {
                stage: "factor".into(),
                violations: 2,
                state_hash: u64::MAX,
            },
            FlightEvent::Error {
                kind: "pipeline".into(),
                message: "weight w(3,4) not finite".into(),
            },
            FlightEvent::ShardRound {
                round: 1,
                proposals: 12,
                confirmed: 5,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for ev in all_variants() {
            let text = ev.to_json();
            lf_trace::json::validate(&text).expect("event JSON must be well-formed");
            let back = FlightEvent::from_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn determinism_classification() {
        let det: Vec<bool> = all_variants().iter().map(FlightEvent::deterministic).collect();
        assert_eq!(
            det,
            vec![true, true, false, false, false, false, true, true, true]
        );
    }

    #[test]
    fn pre_correlation_documents_still_parse() {
        // Bundles written before the `trace` field existed must load.
        let v = Value::parse(
            "{\"type\":\"job_submit\",\"id\":1,\"name\":\"n\",\"nnz\":9,\"cache_hit\":false}",
        )
        .unwrap();
        match FlightEvent::from_value(&v).unwrap() {
            FlightEvent::JobSubmit { trace, .. } => assert_eq!(trace, 0),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn from_value_rejects_bad_documents() {
        for bad in [
            "{}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"launch\",\"kernel\":\"k\"}",
            "{\"type\":\"audit\",\"stage\":\"s\",\"violations\":1,\"state_hash\":\"zz\"}",
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(FlightEvent::from_value(&v).is_err(), "{bad} should fail");
        }
    }
}
