//! A minimal JSON value parser for reading bundles back.
//!
//! `lf_trace::json::validate` is structural only — it never materializes
//! values — so the postmortem reader needs its own tiny tree parser. It
//! supports exactly the JSON this workspace emits (hand-rolled writers in
//! `lf-trace`, `lf-metrics`, and this crate): objects, arrays, strings
//! with the standard escapes, finite numbers, and literals. Numbers are
//! kept as `f64`; 64-bit hashes are therefore serialized as hex *strings*
//! throughout the bundle schema so they survive the round trip bit-exactly.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (lossy for integers above 2^53; see module docs).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized (BTreeMap) since no consumer
    /// relies on it.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact small integer (< 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n < 9_007_199_254_740_992.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Re-serialize to compact JSON (used to carry embedded documents —
    /// e.g. the metrics snapshot — through a bundle round trip).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&lf_trace::json::number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&lf_trace::json::escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&lf_trace::json::escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Render a `u64` as the hex-string encoding used for hashes in the
/// bundle schema (`"0x…"`), lossless under the f64 number model.
pub fn hex(v: u64) -> String {
    format!("0x{v:016x}")
}

/// Parse the [`hex`] encoding back.
pub fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in this
                            // workspace's output (escape() only emits
                            // BMP control escapes); map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(
            r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null},"h":"0x00000000000000ff"}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(
            parse_hex(v.get("h").unwrap().as_str().unwrap()),
            Some(0xff)
        );
    }

    #[test]
    fn hex_round_trips_all_64_bits() {
        for v in [0, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hex(&hex(v)), Some(v));
        }
        assert_eq!(parse_hex("ff"), None);
        assert_eq!(parse_hex("0xzz"), None);
    }

    #[test]
    fn round_trips_through_to_json() {
        let text = r#"{"families":[{"name":"x","series":[{"count":3,"le":"+Inf"}]}],"n":1.5}"#;
        let v = Value::parse(text).unwrap();
        let v2 = Value::parse(&v.to_json()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "1 2", "{'a':1}"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Value::Str("quote\" slash\\ ctrl\u{1} tab\t".into());
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }
}
