//! Disabled-path overhead contract: with the recorder off, the gated
//! instrumentation pattern performs no allocation and records no events.
//! This is what makes lf-flight safe to compile into every hot path
//! unconditionally — the off cost is one relaxed atomic load per site.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_allocates_nothing_and_records_nothing() {
    // Fresh process (integration tests run in their own binary), so the
    // recorder starts disabled and the ring is not yet materialized.
    assert!(!lf_flight::enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        // The canonical instrumentation pattern: event construction —
        // including its String allocations — stays behind the gate.
        if lf_flight::enabled() {
            lf_flight::record(lf_flight::FlightEvent::Error {
                kind: format!("k{i}"),
                message: format!("m{i}"),
            });
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled path must not allocate (gate must precede event construction)"
    );

    // Nothing was recorded either: the ring materializes here, empty.
    assert_eq!(lf_flight::recorder().recorded(), 0);
    assert!(lf_flight::recorder().snapshot().is_empty());
}
