//! Property test: under arbitrary concurrent writer interleavings, the
//! flight ring retains *exactly* the most recent `capacity` events —
//! nothing older survives a wrap, nothing newer is lost, and every
//! retained event sits under the ticket it was pushed with.

use lf_flight::{FlightEvent, FlightRing};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn marker(writer: usize, i: usize) -> FlightEvent {
    FlightEvent::JobSubmit {
        id: (writer * 1_000_000 + i) as u64,
        name: format!("w{writer}"),
        nnz: i as u64,
        cache_hit: false,
        trace: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn retains_exactly_the_most_recent_capacity_events(
        capacity in 1usize..40,
        writers in 1usize..6,
        per_writer in 0usize..80,
    ) {
        let ring = Arc::new(FlightRing::new(capacity));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    (0..per_writer)
                        .map(|i| {
                            let ev = marker(w, i);
                            (ring.push(ev.clone()), ev)
                        })
                        .collect::<Vec<(u64, FlightEvent)>>()
                })
            })
            .collect();
        let mut by_ticket: BTreeMap<u64, FlightEvent> = BTreeMap::new();
        for h in handles {
            for (ticket, ev) in h.join().unwrap() {
                prop_assert!(
                    by_ticket.insert(ticket, ev).is_none(),
                    "tickets must be unique"
                );
            }
        }

        let total = (writers * per_writer) as u64;
        prop_assert_eq!(ring.recorded(), total);

        let snap = ring.snapshot();
        let expect_len = (total as usize).min(capacity);
        prop_assert_eq!(snap.len(), expect_len, "retention window size");
        let oldest = total - expect_len as u64;
        for (i, (seq, ev)) in snap.iter().enumerate() {
            // Exactly the contiguous top-`capacity` tickets, oldest first…
            prop_assert_eq!(*seq, oldest + i as u64);
            // …and each slot holds the event pushed under that ticket.
            prop_assert_eq!(ev, &by_ticket[seq]);
        }
    }
}
