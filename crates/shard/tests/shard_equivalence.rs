//! Property tests for sharded extraction.
//!
//! * K = 1 must be bit-identical to the whole-graph pipeline on arbitrary
//!   graphs, including disconnected ones and tie-heavy quantized weights.
//! * K > 1 must always produce a valid factor that is maximal whenever
//!   the run certifies maximality, with a converged reconciliation.
//! * On seeded `random_symmetric` graphs (a supported class), the K > 1
//!   quality ratio must hold the documented bound.

use lf_core::prelude::{extract_linear_forest, prepare_undirected, weight_coverage};
use lf_core::FactorConfig;
use lf_kernel::Device;
use lf_shard::check::{differential_shard_suite, MIN_SHARD_QUALITY_RATIO};
use lf_shard::{extract_sharded, ShardConfig};
use lf_sparse::random::random_symmetric;
use lf_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Random undirected weighted graph with deliberate degenerate structure:
/// isolated vertices, disconnected components, and weights quantized to
/// one decimal (many exact ties).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..20), 0..(n * 3))
            .prop_map(|es| {
                es.into_iter()
                    .map(|(u, v, w)| (u, v, w as f64 * 0.1))
                    .collect::<Vec<_>>()
            });
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, w) in edges {
        if u != v && seen.insert((u.min(v), u.max(v))) {
            coo.push_sym(u, v, w);
        }
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn k1_shard_bit_identical_on_arbitrary_graphs(
        (n, edges) in graph_strategy(),
        salt in 0u32..u32::MAX,
    ) {
        let a = build(n, &edges);
        let ap = prepare_undirected(&a);
        // salt 0 is the identity charging of the plain pipeline; any
        // other value exercises the salted key stream.
        let cfg = FactorConfig::paper_default(2).with_charge_salt(salt);
        let dev = Device::default();
        let (whole, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();
        let (sharded, rep) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(1)).unwrap();
        prop_assert_eq!(rep.shards, 1);
        prop_assert_eq!(rep.cut_edges, 0);
        prop_assert_eq!(sharded.fingerprint(), whole.fingerprint());
    }

    #[test]
    fn sharded_factor_valid_and_maximal_on_arbitrary_graphs(
        (n, edges) in graph_strategy(),
        k in 2usize..=6,
    ) {
        let a = build(n, &edges);
        let ap = prepare_undirected(&a);
        let dev = Device::default();
        let (forest, rep) =
            extract_sharded(&dev, &ap, &FactorConfig::paper_default(2), &ShardConfig::new(k))
                .unwrap();
        prop_assert!(forest.factor.validate(&ap).is_ok());
        prop_assert!(rep.reconcile.converged);
        if rep.maximal {
            prop_assert!(forest.factor.is_maximal(&ap), "certified-maximal factor is not");
        }
    }

    #[test]
    fn quality_bound_holds_on_seeded_random_graphs(
        n in 150usize..400,
        seed in 0u64..1000,
        k in 2usize..=6,
    ) {
        let a: Csr<f64> = random_symmetric(n, 5.0, 0.1, 1.0, seed);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2);
        let dev = Device::default();
        let (whole, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();
        let (sharded, _) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(k)).unwrap();
        let (c_whole, c_sharded) =
            (weight_coverage(&whole.factor, &a), weight_coverage(&sharded.factor, &a));
        prop_assert!(
            c_sharded >= MIN_SHARD_QUALITY_RATIO * c_whole,
            "n={} seed={} K={}: c_sharded {:.4} vs c_whole {:.4}",
            n, seed, k, c_sharded, c_whole
        );
    }
}

#[test]
fn stencil_suite_meets_the_documented_bound() {
    let dev = Device::default();
    let report = differential_shard_suite(&dev, 2, 300, 4);
    assert!(report.passed(), "{report}");
}
