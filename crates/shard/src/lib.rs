//! # lf-shard — sharded linear-forest extraction
//!
//! The paper's pipeline is single-device: every kernel sees the whole
//! graph, so the largest extractable graph is bounded by one worker's
//! memory. This crate removes that bound with a dual-decomposition
//! scheme in the spirit of Strandmark & Kahl's distributed graph cuts:
//!
//! 1. **Partition** — [`Partition::bfs_bands`] splits the vertex set into
//!    K contiguous BFS bands with an explicit cut-edge set
//!    ([`Partition::cut_edges`]).
//! 2. **Per-block factor** — each block's principal submatrix runs
//!    through the unmodified Algorithm-2 factor kernel. The runs are
//!    *offset-invariant*: every block vertex is charged under its
//!    **global** id key (`salted_key(global_v, cfg.charge_salt)`), the
//!    same mechanism lf-batch uses for fused/solo bit-equality, so block
//!    decisions do not depend on where the block sits in the numbering.
//! 3. **Reconcile** — [`reconcile::reconcile`] iterates propose/confirm
//!    rounds over the shared boundary only, committing mutual cut-edge
//!    proposals until no cut edge is addable, then the stitched factor
//!    goes through the ordinary global stages (cycle breaking, path
//!    identification, permutation).
//!
//! With K = 1 the partition is the identity, the cut is empty, and the
//! result is **bit-identical** to [`lf_core::extract_linear_forest`]
//! (asserted by tests and the `repro shard` experiment). For K > 1 the
//! result is still a valid *maximal* [0,2]-factor — per-block maximality
//! covers intra-block edges, the reconciliation fixed point covers the
//! cut — and its quality ratio against the whole-graph run is bounded by
//! [`check::MIN_SHARD_QUALITY_RATIO`] on the supported graph classes.

#![warn(missing_docs)]

pub mod check;
pub mod partition;
pub mod reconcile;

pub use partition::Partition;
pub use reconcile::ReconcileReport;

use lf_core::charge::salted_key;
use lf_core::parallel::try_parallel_factor_keyed;
use lf_core::prelude::{break_cycles, forest_permutation, identify_paths};
use lf_core::{FactorConfig, LinearForest, PipelineError};
use lf_kernel::Device;
use lf_sparse::{Csr, Scalar};

/// Sharding parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of vertex blocks K (clamped to `1..=N`).
    pub shards: usize,
    /// Safety cap on boundary-reconciliation rounds. Each round commits
    /// at least one cut edge, so `2 × boundary vertices` rounds always
    /// suffice for a [0,2]-factor; the default is generous.
    pub max_rounds: usize,
}

impl ShardConfig {
    /// A configuration with `shards` blocks and the default round cap.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            max_rounds: 1 << 20,
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// Everything a sharded run reports beyond the forest itself.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Blocks actually used (after clamping).
    pub shards: usize,
    /// Prepared-graph nnz per block submatrix.
    pub block_nnz: Vec<usize>,
    /// Factor iterations per block.
    pub block_iterations: Vec<usize>,
    /// Model seconds of each block's factor stage (the per-worker cost a
    /// real multi-device run would pay in parallel).
    pub block_model_s: Vec<f64>,
    /// Model seconds of the shared stages: reconciliation bookkeeping is
    /// host-side, so this covers cycle breaking, path identification and
    /// the permutation on the stitched factor.
    pub global_model_s: f64,
    /// Edges crossing block boundaries.
    pub cut_edges: usize,
    /// Vertices incident to a cut edge.
    pub boundary_vertices: usize,
    /// Boundary-reconciliation outcome.
    pub reconcile: ReconcileReport,
    /// Whether the factor is certifiably maximal: every block converged
    /// within its iteration budget and reconciliation reached its fixed
    /// point.
    pub maximal: bool,
}

impl ShardReport {
    /// The critical-path model time: slowest block factor plus the shared
    /// stages (blocks run concurrently on independent workers).
    pub fn critical_path_model_s(&self) -> f64 {
        self.block_model_s.iter().copied().fold(0.0, f64::max) + self.global_model_s
    }
}

/// Extract a linear forest from `aprime` (the prepared undirected weight
/// matrix, see [`lf_core::prepare_undirected`]) through `shard.shards`
/// per-block factor runs plus boundary reconciliation.
///
/// # Errors
///
/// [`PipelineError::NotPathFactor`] when `cfg.n != 2`, plus anything the
/// per-block factor runs or the global stages report.
pub fn extract_sharded<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    shard: &ShardConfig,
) -> Result<(LinearForest<T>, ShardReport), PipelineError> {
    if cfg.n != 2 {
        return Err(PipelineError::NotPathFactor { n: cfg.n });
    }
    let tracer = dev.tracer().clone();
    let _span = tracer.span("shard");

    let partition = Partition::bfs_bands(aprime, shard.shards);
    let k = partition.num_blocks();
    let cut = partition.cut_edges(aprime);
    let boundary = partition.boundary_vertices(aprime);

    // Per-block factor runs. Charging under the *global* vertex ids makes
    // each run independent of the block's position in the numbering: for
    // K = 1 the key stream is exactly the whole-graph run's.
    let mut block_factors = Vec::with_capacity(k);
    let mut report = ShardReport {
        shards: k,
        block_nnz: Vec::with_capacity(k),
        block_iterations: Vec::with_capacity(k),
        block_model_s: Vec::with_capacity(k),
        global_model_s: 0.0,
        cut_edges: cut.len(),
        boundary_vertices: boundary.len(),
        reconcile: ReconcileReport::default(),
        maximal: true,
    };
    let mut max_iterations = 0usize;
    for (b, ids) in partition.blocks.iter().enumerate() {
        let _block_span = tracer.span_dyn(|| format!("block_{b}"));
        let sub = aprime.principal_submatrix(ids);
        let keys: Vec<u32> = ids.iter().map(|&g| salted_key(g, cfg.charge_salt)).collect();
        report.block_nnz.push(sub.nnz());
        let (outcome, stats) =
            dev.scoped(|| try_parallel_factor_keyed(dev, &sub, cfg, Some(&keys)));
        let outcome = outcome?;
        report.block_iterations.push(outcome.iterations);
        report.block_model_s.push(stats.model_time_s);
        report.maximal &= outcome.maximal;
        max_iterations = max_iterations.max(outcome.iterations);
        block_factors.push(outcome.factor);
    }

    // Stitch and reconcile the boundary.
    let mut factor = reconcile::stitch(aprime.nrows(), cfg.n, &partition, &block_factors);
    report.reconcile = reconcile::reconcile(&mut factor, cfg.n, &cut, shard.max_rounds, |r| {
        if lf_flight::enabled() {
            lf_flight::record(lf_flight::FlightEvent::ShardRound {
                round: r.round as u64,
                proposals: r.proposals as u64,
                confirmed: r.confirmed as u64,
            });
        }
    });
    report.maximal &= report.reconcile.converged;

    if lf_metrics::enabled() {
        use lf_metrics::Unit;
        let m = lf_metrics::global();
        m.counter(
            "lf_shard_rounds_total",
            "Boundary-reconciliation rounds across sharded extractions.",
        )
        .add(report.reconcile.rounds as u64);
        m.counter(
            "lf_shard_cut_edges_total",
            "Edges crossing block boundaries across sharded extractions.",
        )
        .add(cut.len() as u64);
        let h = m.histogram(
            "lf_shard_block_nnz",
            "Prepared nnz per block submatrix.",
            Unit::Count,
        );
        for &nnz in &report.block_nnz {
            h.record(nnz as u64);
        }
    }
    if tracer.is_active() {
        tracer.metric("shard_cut_edges", cut.len() as f64);
        tracer.metric("shard_rounds", report.reconcile.rounds as f64);
        tracer.metric("shard_boundary_vertices", boundary.len() as f64);
    }

    // The stitched factor goes through the unmodified global stages, same
    // order and spans as `extract_linear_forest`.
    let (rest, t_global) = dev.scoped(|| {
        let cycles = {
            let _s = tracer.span("identify_cycles");
            break_cycles(dev, &mut factor)
        };
        let paths = {
            let _s = tracer.span("identify_paths");
            identify_paths(dev, &factor)
        }?;
        let perm = {
            let _s = tracer.span("permutation");
            forest_permutation(dev, &paths)
        };
        Ok::<_, PipelineError>((cycles, paths, perm))
    });
    let (cycles, paths, perm) = rest?;
    report.global_model_s = t_global.model_time_s;

    Ok((
        LinearForest {
            factor,
            paths,
            perm,
            cycles,
            factor_iterations: max_iterations,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::prelude::{extract_linear_forest, prepare_undirected, weight_coverage};
    use lf_sparse::random::random_symmetric;
    use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};

    #[test]
    fn rejects_non_path_factor_config() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(4, 4, &FIVE_POINT);
        let err = extract_sharded(
            &dev,
            &prepare_undirected(&a),
            &FactorConfig::paper_default(3),
            &ShardConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::NotPathFactor { n: 3 });
    }

    #[test]
    fn k1_is_bit_identical_to_whole_graph_extraction() {
        let dev = Device::default();
        let cases: [(&str, Csr<f64>); 3] = [
            ("aniso1", grid2d(17, 17, &ANISO1)),
            ("five_point", grid2d(12, 19, &FIVE_POINT)),
            ("random", random_symmetric(300, 5.0, 0.1, 1.0, 7)),
        ];
        for (name, a) in cases {
            let ap = prepare_undirected(&a);
            let cfg = FactorConfig::paper_default(2);
            let (whole, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();
            let (sharded, rep) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(1)).unwrap();
            assert_eq!(rep.shards, 1);
            assert_eq!(rep.cut_edges, 0);
            assert_eq!(rep.reconcile.rounds, 0);
            assert_eq!(
                sharded.fingerprint(),
                whole.fingerprint(),
                "{name}: K=1 shard must bit-match the whole-graph run"
            );
        }
    }

    #[test]
    fn k1_bit_equality_survives_a_nonzero_charge_salt() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(14, 14, &ANISO2);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2).with_charge_salt(0xBEEF);
        let (whole, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();
        let (sharded, _) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(1)).unwrap();
        assert_eq!(sharded.fingerprint(), whole.fingerprint());
    }

    #[test]
    fn sharded_factors_are_valid_and_maximal() {
        let dev = Device::default();
        for k in [2, 3, 4, 8] {
            let cases: [(&str, Csr<f64>); 2] = [
                ("aniso1", grid2d(16, 16, &ANISO1)),
                ("random", random_symmetric(400, 6.0, 0.1, 1.0, k as u64)),
            ];
            for (name, a) in cases {
                let ap = prepare_undirected(&a);
                let cfg = FactorConfig::paper_default(2);
                let (forest, rep) =
                    extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(k)).unwrap();
                forest.factor.validate(&ap).unwrap_or_else(|e| {
                    panic!("{name} K={k}: invalid factor: {e}");
                });
                assert!(rep.reconcile.converged, "{name} K={k}");
                if rep.maximal {
                    assert!(forest.factor.is_maximal(&ap), "{name} K={k}");
                }
            }
        }
    }

    #[test]
    fn quality_stays_close_to_the_whole_graph_run() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(20, 20, &ANISO1);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2);
        let (whole, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();
        let c_whole = weight_coverage(&whole.factor, &a);
        for k in [2, 4, 8] {
            let (sharded, _) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(k)).unwrap();
            let c_sharded = weight_coverage(&sharded.factor, &a);
            assert!(
                c_sharded >= crate::check::MIN_SHARD_QUALITY_RATIO * c_whole,
                "K={k}: c_sharded {c_sharded:.4} vs c_whole {c_whole:.4}"
            );
        }
    }

    #[test]
    fn report_accounts_for_every_block() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(18, 18, &FIVE_POINT);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2);
        let (_, rep) = extract_sharded(&dev, &ap, &cfg, &ShardConfig::new(4)).unwrap();
        assert_eq!(rep.shards, 4);
        assert_eq!(rep.block_nnz.len(), 4);
        assert_eq!(rep.block_iterations.len(), 4);
        assert_eq!(rep.block_model_s.len(), 4);
        assert!(rep.cut_edges > 0, "a connected grid must have cut edges");
        assert!(rep.boundary_vertices > 0);
        assert!(rep.critical_path_model_s() > 0.0);
        // every block strictly smaller than the whole graph
        assert!(rep.block_nnz.iter().all(|&nnz| nnz < ap.nnz()));
    }

    #[test]
    fn shard_rounds_reach_the_flight_ring() {
        let dev = Device::default();
        // A uniform path split in two: the lone cut edge joins two
        // degree-1 boundary vertices, so reconciliation must commit it
        // in exactly one round.
        let mut coo = lf_sparse::Coo::<f64>::new(32, 32);
        for i in 0..31u32 {
            coo.push_sym(i, i + 1, 1.0);
        }
        let ap = prepare_undirected(&Csr::from_coo(coo));
        lf_flight::enable();
        let (_, rep) = extract_sharded(
            &dev,
            &ap,
            &FactorConfig::paper_default(2),
            &ShardConfig::new(2),
        )
        .unwrap();
        let events = lf_flight::recorder().snapshot();
        lf_flight::disable();
        // Other tests may run sharded extractions concurrently while the
        // global recorder is on, so only a lower bound is exact here.
        let rounds = events
            .iter()
            .filter(|(_, e)| matches!(e, lf_flight::FlightEvent::ShardRound { .. }))
            .count();
        assert!(rep.reconcile.rounds > 0, "a cut grid reconciles in rounds");
        assert!(rounds >= rep.reconcile.rounds, "{rounds} events recorded");
    }
}
