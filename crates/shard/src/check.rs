//! Differential checks for sharded extraction.
//!
//! Every case runs the same graph twice — whole-graph pipeline and
//! sharded pipeline — then audits the sharded result with the lf-check
//! stage auditors and compares quality:
//!
//! * **K = 1** must be *bit-identical* to the whole-graph run (the
//!   partition is the identity and the cut is empty, so any divergence
//!   is a bug in the index mapping or charge keys).
//! * **K > 1** must still be a valid maximal [0,2]-factor, and its
//!   coverage must stay within [`MIN_SHARD_QUALITY_RATIO`] of the
//!   whole-graph coverage.
//!
//! The quality bound is empirical, like lf-check's `MIN_COVERAGE_RATIO`:
//! weight-guided BFS bands keep the boundary small (O(√N) per block on
//! the model problems) and made of *light* edges, per-block runs are
//! optimal-in-kind on the interior, and reconciliation restores
//! maximality over the cut, so the only loss is boundary edges committed
//! in a different order than the whole-graph kernel would have. On the
//! stencil suite and seeded random graphs the measured ratio stays above
//! 0.98 — occasionally exceeding 1, since the boundary matching can
//! commit heavier edges than the whole-graph kernel's rounds did — and
//! the asserted bound leaves headroom.

use crate::{extract_sharded, ShardConfig};
use lf_check::audit::{audit_factor, audit_input, audit_paths, audit_permutation};
use lf_check::Violation;
use lf_core::prelude::{extract_linear_forest, prepare_undirected, weight_coverage};
use lf_core::FactorConfig;
use lf_kernel::Device;
use lf_sparse::random::random_symmetric;
use lf_sparse::stencil::{grid2d, ANISO1, ANISO2, FIVE_POINT};
use lf_sparse::Csr;

/// Documented lower bound on `c_π(sharded) / c_π(whole)` for K > 1 on
/// the supported graph classes (stencil model problems, collection
/// stand-ins, seeded random graphs).
pub const MIN_SHARD_QUALITY_RATIO: f64 = 0.9;

/// One sharded-vs-whole differential case.
#[derive(Clone, Debug)]
pub struct ShardCase {
    /// Case label.
    pub name: String,
    /// Vertex count.
    pub n: usize,
    /// Shards requested.
    pub shards: usize,
    /// Cut edges between blocks.
    pub cut_edges: usize,
    /// Boundary-reconciliation rounds.
    pub rounds: usize,
    /// Whole-graph coverage c_π.
    pub whole_coverage: f64,
    /// Sharded coverage c_π.
    pub sharded_coverage: f64,
    /// Whether the two forests are bit-identical (required when K = 1).
    pub bit_identical: bool,
    /// Stage-audit violations on the sharded result.
    pub violations: Vec<Violation>,
}

impl ShardCase {
    /// `c_π(sharded) / c_π(whole)` (1 when the whole-graph coverage is 0).
    pub fn quality_ratio(&self) -> f64 {
        if self.whole_coverage == 0.0 {
            1.0
        } else {
            self.sharded_coverage / self.whole_coverage
        }
    }

    /// Whether the case meets its acceptance bar: zero audit violations,
    /// bit-equality at K = 1, the quality bound at K > 1.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && if self.shards == 1 {
                self.bit_identical
            } else {
                self.quality_ratio() >= MIN_SHARD_QUALITY_RATIO
            }
    }
}

/// Run one differential case on the raw matrix `a`.
pub fn differential_shard_case(
    dev: &Device,
    name: impl Into<String>,
    a: &Csr<f64>,
    cfg: &FactorConfig,
    shards: usize,
) -> ShardCase {
    let ap = prepare_undirected(a);
    let (whole, _) = extract_linear_forest(dev, &ap, cfg).expect("whole-graph extraction");
    let (sharded, rep) =
        extract_sharded(dev, &ap, cfg, &ShardConfig::new(shards)).expect("sharded extraction");
    let mut violations = audit_input(&ap);
    violations.extend(audit_factor(&sharded.factor, &ap, cfg.n, rep.maximal));
    violations.extend(audit_paths(&sharded.factor, &sharded.paths));
    violations.extend(audit_permutation(&sharded.factor, &sharded.paths, &sharded.perm));
    ShardCase {
        name: name.into(),
        n: ap.nrows(),
        shards: rep.shards,
        cut_edges: rep.cut_edges,
        rounds: rep.reconcile.rounds,
        whole_coverage: weight_coverage(&whole.factor, a),
        sharded_coverage: weight_coverage(&sharded.factor, a),
        bit_identical: sharded.fingerprint() == whole.fingerprint(),
        violations,
    }
}

/// Aggregate report of [`differential_shard_suite`].
#[derive(Clone, Debug, Default)]
pub struct ShardSuiteReport {
    /// All executed cases.
    pub cases: Vec<ShardCase>,
}

impl ShardSuiteReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(ShardCase::passed)
    }

    /// Number of failing cases.
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| !c.passed()).count()
    }
}

impl std::fmt::Display for ShardSuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.cases {
            writeln!(
                f,
                "  [{}] {} (N = {}, K = {}): cut {}, rounds {}, ratio {:.4}{}{}",
                if c.passed() { "ok" } else { "FAIL" },
                c.name,
                c.n,
                c.shards,
                c.cut_edges,
                c.rounds,
                c.quality_ratio(),
                if c.shards == 1 {
                    if c.bit_identical { ", bit-identical" } else { ", DIVERGED" }
                } else {
                    ""
                },
                if c.violations.is_empty() {
                    String::new()
                } else {
                    format!(", {} violation(s)", c.violations.len())
                },
            )?;
            for v in &c.violations {
                writeln!(f, "      {v}")?;
            }
        }
        writeln!(
            f,
            "shard suite: {}/{} cases passed (quality bound {MIN_SHARD_QUALITY_RATIO})",
            self.cases.len() - self.failures(),
            self.cases.len()
        )
    }
}

/// Run the sharded differential suite: the three model-problem stencils
/// plus `cases` seeded random graphs of ~`size` vertices, each at K = 1
/// (bit-equality) and at `shards` (validity + quality bound).
pub fn differential_shard_suite(
    dev: &Device,
    cases: usize,
    size: usize,
    shards: usize,
) -> ShardSuiteReport {
    let cfg = FactorConfig::paper_default(2);
    let mut report = ShardSuiteReport::default();
    let nx = (size as f64).sqrt().round().max(4.0) as usize;
    let stencils: Vec<(String, Csr<f64>)> = vec![
        (format!("aniso1_{nx}x{nx}"), grid2d(nx, nx, &ANISO1)),
        (format!("aniso2_{nx}x{nx}"), grid2d(nx, nx, &ANISO2)),
        (format!("five_point_{nx}x{nx}"), grid2d(nx, nx, &FIVE_POINT)),
    ];
    for (name, a) in &stencils {
        for k in [1, shards] {
            report
                .cases
                .push(differential_shard_case(dev, format!("{name}/K{k}"), a, &cfg, k));
        }
    }
    for seed in 0..cases as u64 {
        let a = random_symmetric(size, 5.0, 0.1, 1.0, seed);
        for k in [1, shards] {
            report.cases.push(differential_shard_case(
                dev,
                format!("random_{seed}/K{k}"),
                &a,
                &cfg,
                k,
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_passes_on_supported_classes() {
        let dev = Device::default();
        let report = differential_shard_suite(&dev, 4, 250, 4);
        assert!(report.passed(), "{report}");
        // K=1 cases must all be bit-identical, not merely high-ratio.
        assert!(report
            .cases
            .iter()
            .filter(|c| c.shards == 1)
            .all(|c| c.bit_identical));
        // Display renders every case line.
        let text = report.to_string();
        assert!(text.contains("shard suite:"));
        assert!(text.contains("bit-identical"));
    }

    #[test]
    fn case_fails_on_violations_or_divergence() {
        let ok = ShardCase {
            name: "x".into(),
            n: 10,
            shards: 2,
            cut_edges: 3,
            rounds: 1,
            whole_coverage: 1.0,
            sharded_coverage: 0.99,
            bit_identical: false,
            violations: vec![],
        };
        assert!(ok.passed());
        let low = ShardCase {
            sharded_coverage: 0.5,
            ..ok.clone()
        };
        assert!(!low.passed());
        let diverged_k1 = ShardCase {
            shards: 1,
            bit_identical: false,
            ..ok.clone()
        };
        assert!(!diverged_k1.passed());
        let zero_whole = ShardCase {
            whole_coverage: 0.0,
            sharded_coverage: 0.0,
            ..ok
        };
        assert!((zero_whole.quality_ratio() - 1.0).abs() < 1e-12);
    }
}
