//! Boundary reconciliation: stitching block factors and closing the cut.
//!
//! Per-block factor runs never see the cut edges, so the stitched factor
//! is maximal on every intra-block edge but may leave cut edges addable.
//! Reconciliation iterates a propose/confirm protocol — the same
//! mutuality shape as the paper's Algorithm 2, restricted to the shared
//! boundary: each unsaturated boundary vertex proposes its best eligible
//! cut edge under a global total order on edges (weight by `total_cmp`,
//! ties toward the smaller partner id), and mutual proposals are
//! committed. The globally best eligible edge is always mutual under a
//! consistent order, so every round commits at least one edge while any
//! remains eligible; when the proposal set is empty the factor is maximal
//! over the cut, and — combined with per-block maximality — globally
//! maximal.

use crate::partition::Partition;
use lf_core::{Factor, INVALID};
use lf_sparse::Scalar;

/// What boundary reconciliation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Propose/confirm rounds executed (0 when the cut is empty).
    pub rounds: usize,
    /// Total proposals emitted across rounds.
    pub proposals: usize,
    /// Cut edges committed into the stitched factor.
    pub committed: usize,
    /// Whether the loop reached the no-eligible-edges fixed point (false
    /// only when the `max_rounds` safety cap was hit first).
    pub converged: bool,
}

/// Merge per-block factors (in block-local vertex numbering) into one
/// factor over the global vertex space.
///
/// Slots are copied *positionally*, not re-inserted: the factor kernel's
/// slot layout is part of the bit-exact contract (fingerprints hash the
/// raw slot arrays), so for K = 1 the stitched factor must be
/// byte-for-byte the block factor with columns renamed by the identity.
pub fn stitch<T: Scalar>(
    nv: usize,
    n: usize,
    partition: &Partition,
    block_factors: &[Factor<T>],
) -> Factor<T> {
    let mut cols = vec![INVALID; nv * n];
    let mut ws = vec![T::ZERO; nv * n];
    for (ids, bf) in partition.blocks.iter().zip(block_factors) {
        let (bcols, bws) = (bf.slot_cols(), bf.slot_weights());
        for (lu, &g) in ids.iter().enumerate() {
            for s in 0..n {
                let c = bcols[lu * n + s];
                let gbase = g as usize * n + s;
                cols[gbase] = if c == INVALID { INVALID } else { ids[c as usize] };
                ws[gbase] = bws[lu * n + s];
            }
        }
    }
    Factor::from_slots(nv, n, cols, ws)
}

/// One reconciliation round's outcome, passed to the caller's observer
/// (flight events, metrics) after the round is applied.
#[derive(Clone, Copy, Debug)]
pub struct Round {
    /// 0-based round index.
    pub round: usize,
    /// Proposals emitted this round.
    pub proposals: usize,
    /// Mutual proposals committed this round.
    pub confirmed: usize,
}

/// Run the boundary-reconciliation loop over `cut` (edges `(u, v, w)`
/// with `u < v`), mutating `factor` in place. `observe` is called once
/// per executed round.
pub fn reconcile<T: Scalar>(
    factor: &mut Factor<T>,
    n: usize,
    cut: &[(u32, u32, T)],
    max_rounds: usize,
    mut observe: impl FnMut(Round),
) -> ReconcileReport {
    let mut report = ReconcileReport {
        converged: true,
        ..ReconcileReport::default()
    };
    if cut.is_empty() {
        return report;
    }
    // Cut adjacency, boundary vertices only (dense maps over the global
    // id space would waste O(N) per shard on large graphs).
    let mut adj: std::collections::HashMap<u32, Vec<(u32, T)>> = std::collections::HashMap::new();
    for &(u, v, w) in cut {
        adj.entry(u).or_default().push((v, w));
        adj.entry(v).or_default().push((u, w));
    }
    let mut boundary: Vec<u32> = adj.keys().copied().collect();
    boundary.sort_unstable();

    report.converged = false;
    for round in 0..max_rounds {
        // Propose: every unsaturated boundary vertex picks its best
        // eligible partner — heaviest |w| under total_cmp, ties toward
        // the smaller id. The order is a restriction of one global total
        // order on edges, which guarantees a mutual pair exists whenever
        // any edge is eligible.
        let mut proposal: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &v in &boundary {
            if factor.degree(v as usize) >= n {
                continue;
            }
            let mut best: Option<(T, u32)> = None;
            for &(u, w) in &adj[&v] {
                if factor.degree(u as usize) >= n || factor.contains(v as usize, u) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bw, bu)) => match w.abs().total_cmp(bw.abs()) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => u < bu,
                    },
                };
                if better {
                    best = Some((w, u));
                }
            }
            if let Some((_, u)) = best {
                proposal.insert(v, u);
            }
        }
        if proposal.is_empty() {
            report.converged = true;
            break;
        }
        // Confirm mutual proposals and commit them in ascending (u, v)
        // order. Mutual pairs are vertex-disjoint (one proposal per
        // vertex), so no commit invalidates another within the round.
        let mut confirmed: Vec<(u32, u32, T)> = Vec::new();
        for &v in &boundary {
            if let Some(&u) = proposal.get(&v) {
                if v < u && proposal.get(&u) == Some(&v) {
                    let w = adj[&v].iter().find(|&&(x, _)| x == u).unwrap().1;
                    confirmed.push((v, u, w));
                }
            }
        }
        for &(u, v, w) in &confirmed {
            factor.insert(u as usize, v, w);
            factor.insert(v as usize, u, w);
        }
        report.rounds += 1;
        report.proposals += proposal.len();
        report.committed += confirmed.len();
        observe(Round {
            round,
            proposals: proposal.len(),
            confirmed: confirmed.len(),
        });
        debug_assert!(
            !confirmed.is_empty(),
            "a non-empty proposal set must confirm at least one edge"
        );
        if confirmed.is_empty() {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::{Coo, Csr};

    fn path_graph(weights: &[f64]) -> Csr<f64> {
        let n = weights.len() + 1;
        let mut coo = Coo::<f64>::new(n, n);
        for (i, &w) in weights.iter().enumerate() {
            coo.push_sym(i as u32, i as u32 + 1, w);
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn empty_cut_is_a_noop() {
        let mut f = Factor::<f64>::new(4, 2);
        let r = reconcile(&mut f, 2, &[], 8, |_| panic!("no rounds expected"));
        assert_eq!(r, ReconcileReport { converged: true, ..Default::default() });
    }

    #[test]
    fn reconciliation_saturates_the_cut() {
        // Path 0-1-2-3-4-5 split as {0,1,2} | {3,4,5}: the only cut edge
        // (2,3) must be committed, making the stitched factor the whole
        // path.
        let a = path_graph(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        let mut f = Factor::<f64>::new(6, 2);
        for (u, v, w) in [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 2.0), (4, 5, 1.0)] {
            f.insert(u, v, w);
            f.insert(v as usize, u as u32, w);
        }
        let cut = [(2u32, 3u32, 3.0f64)];
        let mut rounds_seen = 0;
        let r = reconcile(&mut f, 2, &cut, 16, |_| rounds_seen += 1);
        assert!(r.converged);
        assert_eq!(r.committed, 1);
        assert_eq!(rounds_seen, r.rounds);
        assert!(f.contains(2, 3));
        assert!(f.is_maximal(&a));
        f.validate(&a).unwrap();
    }

    #[test]
    fn saturated_endpoints_block_cut_edges() {
        // Vertex 1 already has degree 2; the cut edge (1,2) is not
        // eligible and reconciliation converges without adding it.
        let mut f = Factor::<f64>::new(4, 2);
        for (u, v) in [(0, 1), (1, 3)] {
            f.insert(u, v, 1.0);
            f.insert(v as usize, u as u32, 1.0);
        }
        let cut = [(1u32, 2u32, 9.0f64)];
        let r = reconcile(&mut f, 2, &cut, 16, |_| {});
        assert!(r.converged);
        assert_eq!(r.committed, 0);
        assert!(!f.contains(1, 2));
    }

    #[test]
    fn heaviest_mutual_edge_wins_ties_deterministically() {
        // Star cut: 0 connects to 1, 2, 3 with equal weights; degree
        // bound 2 admits exactly two, and the smaller-id tie-break picks
        // 1 then 2.
        let cut = [(0u32, 1u32, 1.0f64), (0, 2, 1.0), (0, 3, 1.0)];
        let mut f = Factor::<f64>::new(4, 2);
        let r = reconcile(&mut f, 2, &cut, 16, |_| {});
        assert!(r.converged);
        assert_eq!(r.committed, 2);
        assert!(f.contains(0, 1) && f.contains(0, 2) && !f.contains(0, 3));
    }

    #[test]
    fn max_rounds_cap_reports_non_convergence() {
        let cut = [(0u32, 1u32, 1.0f64), (2, 3, 1.0)];
        let mut f = Factor::<f64>::new(4, 2);
        let r = reconcile(&mut f, 2, &cut, 0, |_| {});
        assert!(!r.converged);
        assert_eq!(r.rounds, 0);
    }
}
