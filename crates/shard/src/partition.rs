//! Weight-guided BFS-band graph partitioning.
//!
//! The partitioner splits the vertex set into K contiguous ranges of a
//! *weight-guided* breadth-first visit order: the frontier vertex whose
//! discovery edge is heaviest (by `total_cmp` on |w|, ties toward the
//! smaller id) is expanded first, so the traversal walks along heavy
//! chains before hopping across light edges. On the model-problem
//! stencils the resulting bands are slabs aligned with the anisotropy —
//! the cut stays O(√N) per block on a 2-D grid *and* consists mostly of
//! light transverse edges, which is what keeps the sharded factor's
//! weight coverage close to the whole-graph run. Forests and disconnected
//! graphs are handled by restarting the traversal from the smallest
//! unvisited vertex, which also makes the order (and therefore the
//! partition) fully deterministic.

use lf_sparse::{Csr, Scalar};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A K-way vertex partition of a graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Block id per vertex.
    pub block_of: Vec<u32>,
    /// Global vertex ids per block, each sorted ascending (the form
    /// [`Csr::principal_submatrix`] expects).
    pub blocks: Vec<Vec<u32>>,
}

impl Partition {
    /// Partition `a`'s vertices into (at most) `k` BFS-band blocks of
    /// near-equal size (sizes differ by at most one). `k` is clamped to
    /// `1..=max(1, N)`, so every returned block is non-empty.
    pub fn bfs_bands<T: Scalar>(a: &Csr<T>, k: usize) -> Partition {
        let n = a.nrows();
        let k = k.clamp(1, n.max(1));
        // Deterministic weight-guided visit order (lazy best-first): the
        // frontier vertex with the heaviest discovery edge pops first,
        // ties toward the smaller id; restart at the smallest unvisited
        // vertex. |w| is non-negative, so its f64 bit pattern orders the
        // heap exactly like `total_cmp`.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
        for seed in 0..n {
            if seen[seed] {
                continue;
            }
            heap.push((u64::MAX, Reverse(seed as u32)));
            while let Some((_, Reverse(v))) = heap.pop() {
                if seen[v as usize] {
                    continue;
                }
                seen[v as usize] = true;
                order.push(v);
                for (c, w) in a.row(v as usize) {
                    if c as usize != v as usize && !seen[c as usize] {
                        heap.push((w.abs().to_f64().to_bits(), Reverse(c)));
                    }
                }
            }
        }
        // Chop the visit order into k contiguous chunks; the first
        // `n % k` chunks take one extra vertex.
        let (base, rem) = (n / k, n % k);
        let mut block_of = vec![0u32; n];
        let mut blocks = Vec::with_capacity(k);
        let mut at = 0usize;
        for b in 0..k {
            let len = base + usize::from(b < rem);
            let mut ids: Vec<u32> = order[at..at + len].to_vec();
            ids.sort_unstable();
            for &v in &ids {
                block_of[v as usize] = b as u32;
            }
            blocks.push(ids);
            at += len;
        }
        Partition { block_of, blocks }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The undirected edges of `a` crossing block boundaries, as
    /// `(u, v, w)` with `u < v`, in ascending `(u, v)` order (CSR order).
    /// The diagonal and explicit zeros are skipped.
    pub fn cut_edges<T: Scalar>(&self, a: &Csr<T>) -> Vec<(u32, u32, T)> {
        a.iter()
            .filter(|&(r, c, v)| {
                r < c && v != T::ZERO && self.block_of[r as usize] != self.block_of[c as usize]
            })
            .collect()
    }

    /// Vertices incident to at least one cut edge, sorted ascending.
    pub fn boundary_vertices<T: Scalar>(&self, a: &Csr<T>) -> Vec<u32> {
        let mut on_boundary = vec![false; self.block_of.len()];
        for (u, v, _) in self.cut_edges(a) {
            on_boundary[u as usize] = true;
            on_boundary[v as usize] = true;
        }
        (0..self.block_of.len() as u32)
            .filter(|&v| on_boundary[v as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::stencil::{grid2d, FIVE_POINT};

    #[test]
    fn single_block_is_identity() {
        let a: Csr<f64> = grid2d(6, 6, &FIVE_POINT);
        let p = Partition::bfs_bands(&a, 1);
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.blocks[0], (0..36).collect::<Vec<u32>>());
        assert!(p.cut_edges(&a).is_empty());
    }

    #[test]
    fn blocks_are_balanced_sorted_and_cover() {
        let a: Csr<f64> = grid2d(10, 10, &FIVE_POINT);
        for k in [2, 3, 4, 7] {
            let p = Partition::bfs_bands(&a, k);
            assert_eq!(p.num_blocks(), k);
            let sizes: Vec<usize> = p.blocks.iter().map(Vec::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "k={k}: sizes {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), 100);
            let mut all: Vec<u32> = p.blocks.concat();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<u32>>());
            for (b, ids) in p.blocks.iter().enumerate() {
                assert!(ids.windows(2).all(|w| w[0] < w[1]), "block {b} sorted");
                assert!(ids.iter().all(|&v| p.block_of[v as usize] == b as u32));
            }
        }
    }

    #[test]
    fn bfs_bands_cut_grid_in_slabs() {
        // On a w×h grid, a 4-way BFS-band cut crosses O(w) edges per
        // boundary — far below the ~2wh total.
        let a: Csr<f64> = grid2d(20, 20, &FIVE_POINT);
        let p = Partition::bfs_bands(&a, 4);
        let cut = p.cut_edges(&a);
        let total_edges = a.iter().filter(|&(r, c, _)| r < c).count();
        assert!(
            cut.len() * 4 < total_edges,
            "cut {} of {total_edges} edges",
            cut.len()
        );
        for &(u, v, _) in &cut {
            assert_ne!(p.block_of[u as usize], p.block_of[v as usize]);
        }
    }

    #[test]
    fn disconnected_graphs_partition_every_component() {
        // two disjoint paths 0-1-2 and 3-4
        let mut coo = lf_sparse::Coo::<f64>::new(5, 5);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 1.0);
        coo.push_sym(3, 4, 1.0);
        let a = Csr::from_coo(coo);
        let p = Partition::bfs_bands(&a, 2);
        assert_eq!(p.blocks[0].len() + p.blocks[1].len(), 5);
    }

    #[test]
    fn oversized_k_clamps_to_n() {
        let a: Csr<f64> = grid2d(2, 2, &FIVE_POINT);
        let p = Partition::bfs_bands(&a, 64);
        assert_eq!(p.num_blocks(), 4);
        assert!(p.blocks.iter().all(|b| b.len() == 1));
    }
}
