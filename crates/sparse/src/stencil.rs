//! Stencil-based matrix assembly on regular grids.
//!
//! The paper's ANISO1/2/3 matrices are 9-point stencils on an equidistant
//! 2D grid (Sec. 5); the ATMOSMOD family is structurally a 7-point 3D
//! stencil. This module assembles such matrices (plus generalizations used
//! by the collection stand-ins).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::scalar::Scalar;

/// A 3×3 stencil; `w[dy + 1][dx + 1]` is the coefficient of neighbor
/// `(x + dx, y + dy)`, `w[1][1]` the diagonal.
pub type Stencil3x3 = [[f64; 3]; 3];

/// The paper's ANISO1 stencil: strong `-1.0` coupling along the x axis.
pub const ANISO1: Stencil3x3 = [
    [-0.2, -0.1, -0.2],
    [-1.0, 3.0, -1.0],
    [-0.2, -0.1, -0.2],
];

/// The paper's ANISO2 stencil: strong `-1.0` coupling along the grid
/// anti-diagonal (top-right / bottom-left corners).
pub const ANISO2: Stencil3x3 = [
    [-0.1, -0.2, -1.0],
    [-0.2, 3.0, -0.2],
    [-1.0, -0.2, -0.1],
];

/// Classic isotropic 5-point Laplacian.
pub const FIVE_POINT: Stencil3x3 = [
    [0.0, -1.0, 0.0],
    [-1.0, 4.0, -1.0],
    [0.0, -1.0, 0.0],
];

/// Assemble a 9-point stencil matrix on an `nx × ny` grid with natural
/// (row-major: `id = y·nx + x`) vertex ordering.
pub fn grid2d<T: Scalar>(nx: usize, ny: usize, stencil: &Stencil3x3) -> Csr<T> {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    for y in 0..ny {
        for x in 0..nx {
            let v = (y * nx + x) as u32;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let w = stencil[(dy + 1) as usize][(dx + 1) as usize];
                    if w == 0.0 {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    let u = (yy as usize * nx + xx as usize) as u32;
                    coo.push(v, u, T::from_f64(w));
                }
            }
        }
    }
    Csr::from_coo(coo)
}

/// The anti-diagonal vertex ordering that turns ANISO2 into ANISO3:
/// vertices are enumerated by anti-diagonals `s = x + y` and, within each
/// anti-diagonal, by ascending `x`. Under this ordering, the strong `-1.0`
/// neighbors `(x+1, y−1)` / `(x−1, y+1)` of ANISO2 become the sub- and
/// superdiagonal. Returns `perm` with `perm[new] = old_id`.
pub fn antidiagonal_permutation(nx: usize, ny: usize) -> Vec<u32> {
    let mut perm = Vec::with_capacity(nx * ny);
    for s in 0..(nx + ny - 1) {
        let x_lo = s.saturating_sub(ny - 1);
        let x_hi = s.min(nx - 1);
        for x in x_lo..=x_hi {
            let y = s - x;
            perm.push((y * nx + x) as u32);
        }
    }
    perm
}

/// The paper's ANISO3: ANISO2 permuted so the `-1.0` coefficients lie on
/// the sub-/superdiagonal.
pub fn aniso3<T: Scalar>(nx: usize, ny: usize) -> Csr<T> {
    grid2d::<T>(nx, ny, &ANISO2).permute_sym(&antidiagonal_permutation(nx, ny))
}

/// Per-axis coefficients of a 7-point 3D stencil. `diag` is the center;
/// `x/y/z` apply to the ∓1 neighbors in the respective axis. `lo`/`hi`
/// distinguish the backward/forward neighbor so mild nonsymmetry (upwind
/// discretizations like ATMOSMOD or TRANSPORT) can be expressed.
#[derive(Clone, Copy, Debug)]
pub struct Stencil7 {
    /// Center coefficient.
    pub diag: f64,
    /// (backward, forward) coefficient along x.
    pub x: (f64, f64),
    /// (backward, forward) coefficient along y.
    pub y: (f64, f64),
    /// (backward, forward) coefficient along z.
    pub z: (f64, f64),
}

impl Stencil7 {
    /// Symmetric 7-point stencil with one coefficient per axis.
    pub fn symmetric(diag: f64, wx: f64, wy: f64, wz: f64) -> Self {
        Self {
            diag,
            x: (wx, wx),
            y: (wy, wy),
            z: (wz, wz),
        }
    }
}

/// Assemble a 7-point stencil matrix on an `nx × ny × nz` grid
/// (`id = (z·ny + y)·nx + x`).
pub fn grid3d<T: Scalar>(nx: usize, ny: usize, nz: usize, s: &Stencil7) -> Csr<T> {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                coo.push(v, v, T::from_f64(s.diag));
                if x > 0 {
                    coo.push(v, id(x - 1, y, z), T::from_f64(s.x.0));
                }
                if x + 1 < nx {
                    coo.push(v, id(x + 1, y, z), T::from_f64(s.x.1));
                }
                if y > 0 {
                    coo.push(v, id(x, y - 1, z), T::from_f64(s.y.0));
                }
                if y + 1 < ny {
                    coo.push(v, id(x, y + 1, z), T::from_f64(s.y.1));
                }
                if z > 0 {
                    coo.push(v, id(x, y, z - 1), T::from_f64(s.z.0));
                }
                if z + 1 < nz {
                    coo.push(v, id(x, y, z + 1), T::from_f64(s.z.1));
                }
            }
        }
    }
    Csr::from_coo(coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_five_point_interior_degree() {
        let m: Csr<f64> = grid2d(4, 4, &FIVE_POINT);
        assert_eq!(m.nrows(), 16);
        // interior vertex 5 = (1,1): 4 neighbors + diagonal
        assert_eq!(m.row_len(5), 5);
        // corner vertex 0: 2 neighbors + diagonal
        assert_eq!(m.row_len(0), 3);
        assert!(m.is_symmetric());
        assert_eq!(m.get(5, 6), -1.0);
        assert_eq!(m.get(5, 5), 4.0);
    }

    #[test]
    fn aniso_stencils_match_paper() {
        let m: Csr<f64> = grid2d(5, 5, &ANISO1);
        // interior (2,2) = id 12: strong x neighbors
        assert_eq!(m.get(12, 11), -1.0);
        assert_eq!(m.get(12, 13), -1.0);
        assert_eq!(m.get(12, 7), -0.1); // (2,1): dy=-1, dx=0
        assert_eq!(m.get(12, 6), -0.2); // (1,1) corner
        assert!(m.is_symmetric());

        let m2: Csr<f64> = grid2d(5, 5, &ANISO2);
        // strong anti-diagonal: (3,1) = id 8 from (2,2)=12: dx=+1, dy=-1
        assert_eq!(m2.get(12, 8), -1.0);
        assert_eq!(m2.get(12, 16), -1.0); // dx=-1, dy=+1
        assert_eq!(m2.get(12, 13), -0.2);
        assert!(m2.is_symmetric());
    }

    #[test]
    fn antidiag_perm_is_bijection() {
        let p = antidiagonal_permutation(4, 3);
        assert_eq!(p.len(), 12);
        let mut seen = [false; 12];
        for &v in &p {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn aniso3_strong_entries_on_tridiagonal() {
        let m: Csr<f64> = aniso3(6, 6);
        // every -1.0 entry must sit on the sub-/superdiagonal
        for (r, c, v) in m.iter() {
            if v == -1.0 {
                assert_eq!((r as i64 - c as i64).abs(), 1, "strong entry off tridiagonal");
            }
        }
        assert!(m.is_symmetric());
        // total weight preserved by permutation
        let m2: Csr<f64> = grid2d(6, 6, &ANISO2);
        let s1: f64 = m.vals().iter().sum();
        let s2: f64 = m2.vals().iter().sum();
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn grid3d_seven_point() {
        let s = Stencil7::symmetric(6.0, -1.0, -2.0, -3.0);
        let m: Csr<f64> = grid3d(3, 3, 3, &s);
        assert_eq!(m.nrows(), 27);
        // center vertex 13 = (1,1,1)
        assert_eq!(m.row_len(13), 7);
        assert_eq!(m.get(13, 12), -1.0);
        assert_eq!(m.get(13, 10), -2.0);
        assert_eq!(m.get(13, 4), -3.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn grid3d_nonsymmetric_upwind() {
        let s = Stencil7 {
            diag: 6.0,
            x: (-1.0, -0.5),
            y: (-1.0, -1.0),
            z: (-1.0, -1.0),
        };
        let m: Csr<f64> = grid3d(4, 2, 2, &s);
        assert!(!m.is_symmetric());
        assert!(m.is_pattern_symmetric());
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(1, 2), -0.5);
    }
}
