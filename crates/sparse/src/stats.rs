//! Matrix/graph statistics — degree and weight distributions used by the
//! `lf stats` CLI, the Table-3 harness, and when characterizing new
//! inputs against the collection classes.

use crate::csr::Csr;
use crate::scalar::Scalar;

/// Summary statistics of a weighted graph/matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Order N.
    pub n: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Minimum row length (including diagonal entries).
    pub min_degree: usize,
    /// Maximum row length.
    pub max_degree: usize,
    /// Mean row length (= nnz / N).
    pub mean_degree: f64,
    /// Numerically symmetric?
    pub symmetric: bool,
    /// Pattern-symmetric?
    pub pattern_symmetric: bool,
    /// Smallest |off-diagonal weight| (0 if none).
    pub min_weight: f64,
    /// Largest |off-diagonal weight|.
    pub max_weight: f64,
    /// Fraction of total |off-diagonal| weight carried by the heaviest
    /// 2N directed entries — an upper bound on any [0,2]-factor coverage
    /// and a cheap predictor of how well a linear forest can do.
    pub top_2n_weight_fraction: f64,
    /// Number of distinct |off-diagonal weight| values, capped at 1000 —
    /// small counts signal the tied-weight classes that need charging.
    pub distinct_weights: usize,
    /// Off-diagonal entries whose weight is NaN. These are excluded from
    /// every weight statistic above; a non-zero count means the input
    /// needs cleaning before extraction (the pipeline's input audit
    /// rejects non-finite weights).
    pub nan_weights: usize,
}

/// Compute [`GraphStats`] (O(nnz log nnz) for the top-2N fraction).
pub fn graph_stats<T: Scalar>(a: &Csr<T>) -> GraphStats {
    let n = a.nrows();
    let mut min_degree = usize::MAX;
    let mut max_degree = 0usize;
    for i in 0..n {
        let d = a.row_len(i);
        min_degree = min_degree.min(d);
        max_degree = max_degree.max(d);
    }
    if n == 0 {
        min_degree = 0;
    }
    let mut nan_weights = 0usize;
    let mut weights: Vec<f64> = a
        .iter()
        .filter(|&(r, c, _)| r != c)
        .map(|(_, _, v)| v.to_f64().abs())
        .filter(|w| {
            let ok = !w.is_nan();
            nan_weights += usize::from(!ok);
            ok
        })
        .collect();
    // total_cmp, not partial_cmp: NaNs are filtered above, but a panicking
    // comparator on a CLI stats path turned bad inputs into aborts instead
    // of reports.
    weights.sort_unstable_by(|x, y| y.total_cmp(x));
    let total: f64 = weights.iter().sum();
    let top: f64 = weights.iter().take(2 * n).sum();
    let mut distinct = 0usize;
    let mut last = f64::NAN;
    for &w in &weights {
        if w != last {
            distinct += 1;
            last = w;
            if distinct >= 1000 {
                break;
            }
        }
    }
    GraphStats {
        n,
        nnz: a.nnz(),
        min_degree,
        max_degree,
        mean_degree: a.mean_degree(),
        symmetric: a.is_symmetric(),
        pattern_symmetric: a.is_pattern_symmetric(),
        min_weight: weights.last().copied().unwrap_or(0.0),
        max_weight: weights.first().copied().unwrap_or(0.0),
        top_2n_weight_fraction: if total == 0.0 { 0.0 } else { top / total },
        distinct_weights: distinct,
        nan_weights,
    }
}

/// Histogram of row lengths as (degree, count), ascending.
pub fn degree_histogram<T: Scalar>(a: &Csr<T>) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..a.nrows() {
        *counts.entry(a.row_len(i)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::stencil::{grid2d, FIVE_POINT};

    #[test]
    fn laplacian_stats() {
        let a: Csr<f64> = grid2d(5, 5, &FIVE_POINT);
        let s = graph_stats(&a);
        assert_eq!(s.n, 25);
        assert_eq!(s.min_degree, 3); // corner: diag + 2 neighbors
        assert_eq!(s.max_degree, 5);
        assert!(s.symmetric && s.pattern_symmetric);
        assert_eq!(s.min_weight, 1.0);
        assert_eq!(s.max_weight, 1.0);
        assert_eq!(s.distinct_weights, 1, "all off-diagonals tie");
        // 2N = 50 entries of 80 off-diagonals → 50/80
        assert!((s.top_2n_weight_fraction - 50.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let a: Csr<f64> = grid2d(6, 4, &FIVE_POINT);
        let h = degree_histogram(&a);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 24);
        assert_eq!(h.first().unwrap().0, 3);
    }

    #[test]
    fn tied_weight_classes_have_few_distinct_weights() {
        let eco = Collection::Ecology1.generate(500);
        let s = graph_stats(&eco);
        assert!(s.distinct_weights <= 2, "{}", s.distinct_weights);
        let g3 = Collection::G3Circuit.generate(500);
        let s2 = graph_stats(&g3);
        assert!(s2.distinct_weights > 100);
    }

    #[test]
    fn top2n_fraction_predicts_coverage_class() {
        // ATMOSMODM's top-2N fraction is near 1 (dominant axis);
        // CUBE_COUP's is small (uniform high degree)
        let hi = graph_stats(&Collection::Atmosmodm.generate(800));
        let lo = graph_stats(&Collection::CubeCoupDt0.generate(800));
        assert!(hi.top_2n_weight_fraction > 0.9);
        assert!(lo.top_2n_weight_fraction < 0.45);
        assert!(!hi.symmetric && hi.pattern_symmetric);
    }

    #[test]
    fn nan_weights_are_counted_not_fatal() {
        // Regression: `graph_stats` used to sort with `partial_cmp(..)
        // .expect("finite weights")`, so one NaN entry aborted the whole
        // stats path. NaNs are now excluded from the weight statistics
        // and surfaced as a count instead.
        let mut coo = crate::Coo::<f64>::new(4, 4);
        coo.push_sym(0, 1, f64::NAN);
        coo.push_sym(1, 2, 3.0);
        coo.push_sym(2, 3, 0.5);
        let a = Csr::from_coo(coo);
        let s = graph_stats(&a);
        assert_eq!(s.nan_weights, 2, "both directed NaN entries counted");
        assert_eq!(s.max_weight, 3.0);
        assert_eq!(s.min_weight, 0.5);
        assert_eq!(s.distinct_weights, 2);
        assert!(s.top_2n_weight_fraction.is_finite());
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<f64>::zeros(0, 0);
        let s = graph_stats(&a);
        assert_eq!(s.n, 0);
        assert_eq!(s.max_weight, 0.0);
        assert_eq!(s.top_2n_weight_fraction, 0.0);
    }
}
